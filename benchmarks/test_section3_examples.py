"""Benchmark reproducing the Section 3 example families (Figures 1-5).

For each parametric family the exact optimum is computed per policy and the
paper's claimed gaps are checked:

* Figure 1: the feasibility matrix of the three policies;
* Figure 2: Upwards needs 3 replicas, Closest ``n + 2``;
* Figure 3: Multiple needs ``n + 1`` replicas, Upwards ``2n``;
* Figure 4: heterogeneous gap growing with ``K``;
* Figure 5: optimal cost ``n + 1`` against the ``ceil(sum r / W) = 2`` bound.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import run_once
from repro.core.costs import request_lower_bound
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem, replica_counting_problem
from repro.experiments.reporting import ascii_table
from repro.lp.exact import exact_cost
from repro.workloads import reference_trees as rt


def _cost(problem, policy):
    try:
        return exact_cost(problem, policy)
    except InfeasibleError:
        return math.inf


def section3_sweep(n: int = 4, big_factor: float = 20.0):
    """Exact per-policy costs of every Section 3 family."""
    rows = []
    for variant in ("a", "b", "c"):
        problem = replica_counting_problem(rt.figure1_tree(variant))
        rows.append(
            (f"Figure 1({variant})",)
            + tuple(_cost(problem, p) for p in Policy.ordered())
        )
    fig2 = replica_counting_problem(rt.figure2_tree(n))
    fig3 = replica_counting_problem(rt.figure3_tree(n))
    fig4 = replica_cost_problem(rt.figure4_tree(n, big_factor))
    fig5 = replica_counting_problem(rt.figure5_tree(n, 4.0 * n))
    for label, problem in (
        ("Figure 2", fig2),
        ("Figure 3", fig3),
        ("Figure 4", fig4),
        ("Figure 5", fig5),
    ):
        rows.append((label,) + tuple(_cost(problem, p) for p in Policy.ordered()))
    return rows


@pytest.mark.benchmark(group="section3")
def test_section3_example_gaps(benchmark):
    n, big_factor = 4, 20.0
    rows = run_once(benchmark, section3_sweep, n, big_factor)
    print("\n=== Section 3 examples: exact cost per policy ===")
    print(ascii_table(["instance", "closest", "upwards", "multiple"], rows))

    by_label = {row[0]: row[1:] for row in rows}
    # Figure 1 feasibility matrix.
    assert by_label["Figure 1(a)"] == (1, 1, 1)
    assert math.isinf(by_label["Figure 1(b)"][0]) and by_label["Figure 1(b)"][1:] == (2, 2)
    assert math.isinf(by_label["Figure 1(c)"][0])
    assert math.isinf(by_label["Figure 1(c)"][1])
    assert by_label["Figure 1(c)"][2] == 2
    # Figure 2: Upwards 3 vs Closest n + 2.
    assert by_label["Figure 2"][1] == 3 and by_label["Figure 2"][0] == n + 2
    # Figure 3: Multiple n + 1 vs Upwards 2n.
    assert by_label["Figure 3"][2] == n + 1 and by_label["Figure 3"][1] == 2 * n
    # Figure 4: heterogeneous gap at least K/2.
    assert by_label["Figure 4"][1] / by_label["Figure 4"][2] >= big_factor / 2
    # Figure 5: every policy needs n + 1 replicas, far above the bound of 2.
    fig5_tree = rt.figure5_tree(n, 4.0 * n)
    assert request_lower_bound(fig5_tree) == 2
    assert set(by_label["Figure 5"]) == {n + 1}
    benchmark.extra_info["rows"] = [list(map(str, row)) for row in rows]
