"""Perf smoke benchmark: the compiled native engine vs fast vs dict.

Two workloads, all three engines, identical results asserted:

* ``campaign_500`` -- the 500-node QoS campaign slice of
  ``test_engine_speed.py`` (16 heterogeneous trees, hop-count QoS, Upwards
  policy), solved on warm per-tree index caches so the timing isolates the
  solve path the engines actually differ on (the index build is shared by
  all three and dominated by it otherwise);
* ``big_20k`` -- one heterogeneous tree with ~20k clients under the
  Multiple policy, the scale where per-client Python loops stop being
  noise.

Every run appends an entry to ``BENCH_engine.json`` at the repository root
so future PRs have a performance trajectory.  The acceptance floor of the
native engine is **2x over the fast engine** on the 500-node solve path
(the observed ratio on an idle host is ~2.5x vs fast and ~6x vs the seed
dict engine); the 20k-client ratio is recorded for the trajectory with a
strict-improvement floor.  When the kernels cannot be compiled the native
engine *is* the fast engine, so the floors would measure noise; the entry
records the fallback instead and the assertions are skipped.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.api import solve, solve_many
from repro.algorithms.common import use_engine
from repro.algorithms.native_state import native_kernels_available
from repro.core.constraints import ConstraintSet
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.workloads.generator import GeneratorConfig, TreeGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

ENGINES = ("dict", "fast", "native")

CAMPAIGN_TREE_SIZE = 500
CAMPAIGN_INSTANCES = 16
CAMPAIGN_LOADS = (0.2, 0.4, 0.6, 0.8)
CAMPAIGN_QOS_HOPS = (4, 8)
CAMPAIGN_POLICY = "upwards"

BIG_TREE_SIZE = 28600  # ~20k clients + ~8.6k nodes with leaves attachment
BIG_POLICY = "multiple"

#: best-of-N wall times on warm caches; repetitions bound noisy neighbours.
CAMPAIGN_REPS = 5
BIG_REPS = 3


def campaign_problems():
    problems = []
    seed = 0
    per_load = CAMPAIGN_INSTANCES // len(CAMPAIGN_LOADS)
    for load in CAMPAIGN_LOADS:
        for _ in range(per_load):
            tree = TreeGenerator(seed).generate(
                GeneratorConfig(
                    size=CAMPAIGN_TREE_SIZE,
                    target_load=load,
                    homogeneous=False,
                    client_attachment="uniform",
                    max_children=2,
                    qos_hops=CAMPAIGN_QOS_HOPS,
                )
            )
            problems.append(
                ReplicaPlacementProblem(
                    tree=tree,
                    constraints=ConstraintSet.qos_distance(),
                    kind=ProblemKind.REPLICA_COST,
                )
            )
            seed += 1
    return problems


def big_problem():
    tree = TreeGenerator(42).generate(
        GeneratorConfig(
            size=BIG_TREE_SIZE,
            target_load=0.3,
            homogeneous=False,
            client_attachment="leaves",
            max_children=3,
        )
    )
    return ReplicaPlacementProblem(tree=tree, constraints=ConstraintSet.none())


def costs(problems, solutions):
    return [
        None if solution is None else solution.cost(problem)
        for problem, solution in zip(problems, solutions)
    ]


def timed_campaign(problems, engine):
    """Best warm wall time of the 500-node campaign slice under ``engine``.

    The first (untimed) run builds the per-tree indexes and, for the native
    engine, the flat kernel arrays; the timed repetitions then measure the
    solve path alone, the regime a resident session or server lives in.
    """
    solutions = solve_many(problems, policy=CAMPAIGN_POLICY, engine=engine)
    best = float("inf")
    for _ in range(CAMPAIGN_REPS):
        start = time.perf_counter()
        solutions = solve_many(problems, policy=CAMPAIGN_POLICY, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, costs(problems, solutions)


def timed_big(problem, engine):
    with use_engine(engine):
        solution = solve(problem, policy=BIG_POLICY)
        best = float("inf")
        for _ in range(BIG_REPS):
            start = time.perf_counter()
            solution = solve(problem, policy=BIG_POLICY)
            best = min(best, time.perf_counter() - start)
    return best, solution.cost(problem)


@pytest.mark.bench
def test_native_kernel_speed():
    native_compiled = native_kernels_available()

    problems = campaign_problems()
    campaign_times = {}
    campaign_costs = {}
    for engine in ENGINES:
        campaign_times[engine], campaign_costs[engine] = timed_campaign(
            problems, engine
        )
    assert campaign_costs["dict"] == campaign_costs["fast"] == campaign_costs["native"]

    big = big_problem()
    big_times = {}
    big_costs = {}
    for engine in ENGINES:
        big_times[engine], big_costs[engine] = timed_big(big, engine)
    assert big_costs["dict"] == big_costs["fast"] == big_costs["native"]

    speedups = {
        "campaign_500_native_vs_fast": round(
            campaign_times["fast"] / campaign_times["native"], 3
        ),
        "campaign_500_native_vs_dict": round(
            campaign_times["dict"] / campaign_times["native"], 3
        ),
        "big_20k_native_vs_fast": round(big_times["fast"] / big_times["native"], 3),
        "big_20k_native_vs_dict": round(big_times["dict"] / big_times["native"], 3),
    }
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "bench": "native_kernels",
        "native_kernels_compiled": native_compiled,
        "workloads": {
            "campaign_500": {
                "instances": CAMPAIGN_INSTANCES,
                "tree_size": CAMPAIGN_TREE_SIZE,
                "loads": list(CAMPAIGN_LOADS),
                "qos_hops": list(CAMPAIGN_QOS_HOPS),
                "policy": CAMPAIGN_POLICY,
            },
            "big_20k": {
                "tree_size": BIG_TREE_SIZE,
                "clients": len(big.tree.client_ids),
                "policy": BIG_POLICY,
            },
        },
        "seconds": {
            "campaign_500": {
                engine: round(campaign_times[engine], 4) for engine in ENGINES
            },
            "big_20k": {engine: round(big_times[engine], 4) for engine in ENGINES},
        },
        "speedup": speedups,
    }
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")

    if not native_compiled:
        pytest.skip(
            "native kernels unavailable (fallback to fast); timings recorded, "
            "speedup floors not applicable"
        )

    assert speedups["campaign_500_native_vs_fast"] >= 2.0, (
        f"native engine is only "
        f"{speedups['campaign_500_native_vs_fast']:.2f}x faster than fast on "
        f"the 500-node campaign (required 2x); times: {entry['seconds']}"
    )
    assert speedups["big_20k_native_vs_fast"] >= 1.3, (
        f"native engine is only {speedups['big_20k_native_vs_fast']:.2f}x "
        f"faster than fast on the 20k-client instance (required 1.3x); "
        f"times: {entry['seconds']}"
    )
