"""Perf smoke benchmark: parallel churn-campaign trajectories.

``run_churn_campaign(workers=N)`` fans the independent (churn level, base
tree) trajectories of a dynamic-workload sweep over the shared
``chunked_pool_map`` process pool.  As in ``test_engine_speed.py``, the
wall-clock assertion is gated on ``cpus >= 2``: N workers time-slicing a
single CPU cannot beat that CPU's sequential throughput, so on 1-CPU hosts
the benchmark only pins record-for-record equality and leaves the measured
ratio in ``BENCH_engine.json`` as trajectory data.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.experiments.harness import ChurnCampaignConfig, run_churn_campaign

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

WORKERS = 4
#: best-of-N wall times, bounding noisy-neighbour spikes on shared hosts.
REPS = 2
REQUIRED_SPEEDUP = 1.5

CONFIG = ChurnCampaignConfig(
    churn_levels=(0.05, 0.1, 0.2, 0.4),
    epochs=10,
    trees_per_level=2,
    size=60,
)


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def timed_campaign(workers):
    best = math.inf
    result = None
    for _ in range(REPS):
        start = time.perf_counter()
        result = run_churn_campaign(CONFIG, workers=workers)
        best = min(best, time.perf_counter() - start)
    return best, result


def comparable(record):
    fields = asdict(record)
    fields.pop("runtime")  # wall times differ between runs, outcomes must not
    return {
        key: None if isinstance(value, float) and math.isnan(value) else value
        for key, value in fields.items()
    }


@pytest.mark.bench
def test_parallel_churn_campaign_speed():
    t_sequential, sequential = timed_campaign(None)
    t_parallel, parallel = timed_campaign(WORKERS)

    # Identical records in identical order, whatever the worker count.
    assert [comparable(r) for r in sequential.records] == [
        comparable(r) for r in parallel.records
    ]

    cpus = available_cpus()
    speedup = t_sequential / t_parallel
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": {
            "kind": "churn_campaign_parallel",
            "churn_levels": list(CONFIG.churn_levels),
            "epochs": CONFIG.epochs,
            "trees_per_level": CONFIG.trees_per_level,
            "tree_size": CONFIG.size,
            "workers": WORKERS,
        },
        "cpus": cpus,
        "seconds": {
            "sequential": round(t_sequential, 4),
            f"workers{WORKERS}": round(t_parallel, 4),
        },
        "speedup": {"parallel_vs_sequential": round(speedup, 3)},
    }
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")

    if cpus >= 2:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"run_churn_campaign(workers={WORKERS}) is only {speedup:.2f}x "
            f"faster than the sequential sweep (required {REQUIRED_SPEEDUP}x "
            f"on a {cpus}-CPU host); times: {entry['seconds']}"
        )
