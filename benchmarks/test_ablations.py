"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each benchmark runs one ablation of :mod:`repro.experiments.ablations` and
prints the comparison table: the drain order used by MBU, the second pass of
UTD, the refinement of the LP lower bound, and the benefit of the MixedBest
combiner over MultipleGreedy alone.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    ablate_drain_order,
    ablate_lower_bound,
    ablate_mixed_best,
    ablate_second_pass,
)


@pytest.mark.benchmark(group="ablation")
def test_ablation_mbu_drain_order(benchmark):
    result = run_once(benchmark, ablate_drain_order, count=10, seed=11)
    print("\n=== Ablation: MBU drain order ===")
    print(result.table)
    assert set(result.metrics) == {"MBU (smallest first)", "MBU (largest first)"}


@pytest.mark.benchmark(group="ablation")
def test_ablation_utd_second_pass(benchmark):
    result = run_once(benchmark, ablate_second_pass, count=10, seed=12)
    print("\n=== Ablation: UTD second pass ===")
    print(result.table)
    with_pass = result.metrics["UTD (two passes)"]["success"]
    without_pass = result.metrics["UTD (first pass only)"]["success"]
    assert with_pass >= without_pass


@pytest.mark.benchmark(group="ablation")
def test_ablation_lower_bound_refinement(benchmark):
    result = run_once(benchmark, ablate_lower_bound, count=6, seed=13)
    print("\n=== Ablation: LP lower-bound refinement ===")
    print(result.table)
    # The mixed bound is by construction at least as tight as the relaxation.
    assert result.metrics["mixed"]["mean_bound_ratio"] >= 1.0 - 1e-9


@pytest.mark.benchmark(group="ablation")
def test_ablation_mixed_best_vs_mg(benchmark):
    result = run_once(benchmark, ablate_mixed_best, count=10, seed=14)
    print("\n=== Ablation: MixedBest vs MultipleGreedy ===")
    print(result.table)
    assert (
        result.metrics["MixedBest"]["relative_cost"]
        >= result.metrics["MG alone"]["relative_cost"] - 1e-9
    )
