"""Perf smoke benchmark: sharded vs whole-tree solving at the 20k scale.

The workload is a 20k-client heterogeneous tree from
:func:`~repro.workloads.generator.large_tree` -- the regime the PR-7
sharding layer targets.  Two comparisons run on identical trees:

* **peak memory** -- ``tracemalloc`` peak of one whole-tree
  ``portfolio_solve`` vs one ``solve_sharded`` on a pre-built
  :class:`~repro.core.partition.ShardPlan`.  The sharded path streams:
  one sliced index is built, used and released per shard, and the region
  solutions are consumed while stitching, so its recurring per-solve peak
  must come in **under** the whole-tree solve's.  The one-time partition
  cost (session/pool state, amortised over every subsequent epoch) is
  reported in the JSON entry but not part of the asserted solve peak.
* **incremental re-solve latency** -- after a single-client rate change,
  a sharded :class:`~repro.session.PlacementSession` re-solves exactly one
  shard (asserted via the per-region resolver strategies) and must be
  >= 1.5x faster than the whole-tree session's re-solve of the same change.

Every run appends an entry to ``BENCH_engine.json`` for the performance
trajectory.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.algorithms.portfolio import portfolio_solve
from repro.algorithms.sharded import solve_sharded
from repro.core.constraints import ConstraintSet
from repro.core.partition import partition_problem
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.session import PlacementSession
from repro.workloads.generator import large_tree

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

N_CLIENTS = 20_000
SHARDS = 8
SEED = 77
LOAD = 0.5
#: best-of-N wall times, bounding noisy-neighbour spikes on shared hosts.
REPS = 3
REQUIRED_SPEEDUP = 1.5


def build_problem():
    """A fresh 20k-client heterogeneous instance (no caches shared)."""
    tree = large_tree(N_CLIENTS, target_load=LOAD, seed=SEED, homogeneous=False)
    return ReplicaPlacementProblem(
        tree=tree, kind=ProblemKind.REPLICA_COST, constraints=ConstraintSet.none()
    )


def traced_peak(fn):
    """(peak_bytes, result) of ``fn()`` under tracemalloc."""
    tracemalloc.start()
    result = fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, result


def timed_update(session, client_id, reps=REPS):
    """Best wall time of a single-client rate bump re-solve."""
    best = float("inf")
    result = None
    for _ in range(reps):
        old = session.problem.tree.client(client_id).requests
        start = time.perf_counter()
        result = session.update(requests={client_id: old + 1.0})
        best = min(best, time.perf_counter() - start)
    return best, result


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.mark.bench
def test_shard_scaling():
    # ---- peak memory: one whole-tree solve vs one streamed sharded solve.
    whole_problem = build_problem()
    peak_whole, whole = traced_peak(lambda: portfolio_solve(whole_problem))

    sharded_problem = build_problem()
    partition_peak, plan = traced_peak(
        lambda: partition_problem(sharded_problem, shards=SHARDS)
    )
    peak_sharded, stitched = traced_peak(
        lambda: solve_sharded(sharded_problem, plan=plan)
    )
    # the sharded path never materialises the whole-tree index
    assert sharded_problem.tree._index_cache is None
    cost_whole = whole.cost(whole_problem)
    cost_sharded = stitched.cost(sharded_problem)
    assert cost_sharded <= 2.0 * cost_whole

    # ---- incremental re-solve: one rate change -> one shard re-solved.
    whole_session = PlacementSession(build_problem())
    whole_session.solve()
    sharded_session = PlacementSession(build_problem(), shards=SHARDS)
    sharded_session.solve()
    client_id = sharded_session.shard_plan.shards[0].clients[0]

    t_whole, _ = timed_update(whole_session, client_id)
    t_sharded, sharded_result = timed_update(sharded_session, client_id)
    strategies = sharded_result.solution.metadata["shard_strategies"]
    resolved = [s for s in strategies if s not in ("reused", "empty")]
    assert len(resolved) == 1, strategies

    speedup = t_whole / t_sharded
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": {
            "kind": "shard_scaling",
            "clients": N_CLIENTS,
            "shards": SHARDS,
            "load": LOAD,
            "policy": "multiple",
        },
        "cpus": available_cpus(),
        "peak_bytes": {
            "whole": peak_whole,
            "sharded": peak_sharded,
            "partition": partition_peak,
        },
        "seconds": {
            "update_whole": round(t_whole, 4),
            "update_sharded": round(t_sharded, 4),
        },
        "speedup": {"sharded_update_vs_whole": round(speedup, 3)},
        "cost_gap": round(cost_sharded / cost_whole, 4),
    }
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")

    # The streamed sharded solve must beat the whole-tree solve on peak
    # memory: its working set is one shard at a time, not the whole tree.
    assert peak_sharded < peak_whole, (
        f"sharded solve peaked at {peak_sharded / 1e6:.1f} MB, whole-tree at "
        f"{peak_whole / 1e6:.1f} MB"
    )
    # The per-shard incremental re-solve touches one region out of
    # {SHARDS}+1, so the win must show even on a single CPU.
    assert speedup >= REQUIRED_SPEEDUP, (
        f"sharded incremental re-solve is only {speedup:.2f}x faster than the "
        f"whole-tree session (required {REQUIRED_SPEEDUP}x); "
        f"times: {entry['seconds']}"
    )
