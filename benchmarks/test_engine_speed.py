"""Perf smoke benchmark: indexed engine + batch solving vs the seed loop.

The workload is a QoS campaign slice in the spirit of paper Section 7: 32
heterogeneous 500-node trees (uniform client attachment, binary internal
fan-out, hop-count QoS bounds) swept over four load values, solved under
the Upwards policy.  Three configurations are timed:

* ``seed_sequential`` -- the pre-batch way of running a campaign: a plain
  sequential loop of :func:`repro.api.solve` on the seed dict engine;
* ``fast_sequential`` -- the same loop on the indexed fast engine;
* ``batch_workers4`` -- ``solve_many(..., workers=4)`` on the fast engine.

All three produce identical results (asserted).  Every run appends an entry
to ``BENCH_engine.json`` at the repository root so future PRs have a
performance trajectory.

Speedup accounting: on multi-core hosts the batch run must beat the seed
sequential loop by >= 2x (engine gain x process-pool parallelism).  On a
single-CPU host -- as used by some CI containers -- four workers
time-slicing one core cannot beat that core's sequential throughput, so
only the engine gain (minus ~45 ms of pool overhead; the fork-inherited
batch keeps it that low) remains observable; there the assertion enforces a
strict-improvement floor and the JSON entry records the measured ratio for
the trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import solve_many
from repro.algorithms.common import use_engine
from repro.core.constraints import ConstraintSet
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.workloads.generator import GeneratorConfig, TreeGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

TREE_SIZE = 500
INSTANCES = 32
LOADS = (0.2, 0.4, 0.6, 0.8)
QOS_HOPS = (4, 8)
POLICY = "upwards"
#: best-of-N wall times; three repetitions bound noisy-neighbour spikes on
#: shared CI hosts without making the smoke run slow.
REPS = 3


def campaign_problems():
    """Fresh problems every call: index caches must not leak between runs."""
    problems = []
    seed = 0
    per_load = INSTANCES // len(LOADS)
    for load in LOADS:
        for _ in range(per_load):
            tree = TreeGenerator(seed).generate(
                GeneratorConfig(
                    size=TREE_SIZE,
                    target_load=load,
                    homogeneous=False,
                    client_attachment="uniform",
                    max_children=2,
                    qos_hops=QOS_HOPS,
                )
            )
            problems.append(
                ReplicaPlacementProblem(
                    tree=tree,
                    constraints=ConstraintSet.qos_distance(),
                    kind=ProblemKind.REPLICA_COST,
                )
            )
            seed += 1
    return problems


def timed_solve(engine, workers):
    """Best solve wall time over REPS runs on freshly generated problems.

    Trees are regenerated (outside the timed region) for every repetition so
    the fast engine's per-tree index cache never carries over between runs.
    """
    best = float("inf")
    result = None
    for _ in range(REPS):
        problems = campaign_problems()
        start = time.perf_counter()
        solutions = solve_many(problems, policy=POLICY, workers=workers, engine=engine)
        best = min(best, time.perf_counter() - start)
        result = costs(problems, solutions)
    return best, result


def costs(problems, solutions):
    return [
        None if solution is None else solution.cost(problem)
        for problem, solution in zip(problems, solutions)
    ]


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.mark.bench
def test_engine_and_batch_speed():
    t_seed, seed_costs = timed_solve("dict", None)
    t_fast, fast_costs = timed_solve("fast", None)
    t_batch, batch_costs = timed_solve("fast", 4)

    # Identical outcomes whatever the engine or worker count.
    assert seed_costs == fast_costs == batch_costs

    cpus = available_cpus()
    speedup_engine = t_seed / t_fast
    speedup_batch = t_seed / t_batch
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": {
            "instances": INSTANCES,
            "tree_size": TREE_SIZE,
            "loads": list(LOADS),
            "qos_hops": list(QOS_HOPS),
            "policy": POLICY,
            "heterogeneous": True,
        },
        "cpus": cpus,
        "seconds": {
            "seed_sequential": round(t_seed, 4),
            "fast_sequential": round(t_fast, 4),
            "batch_workers4": round(t_batch, 4),
        },
        "speedup": {
            "engine": round(speedup_engine, 3),
            "batch_vs_seed": round(speedup_batch, 3),
        },
        "solved": sum(cost is not None for cost in seed_costs),
    }
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")

    if cpus >= 2:
        assert speedup_batch >= 2.0, (
            f"solve_many(workers=4) is only {speedup_batch:.2f}x faster than "
            f"the seed sequential loop (required 2x on a {cpus}-CPU host); "
            f"times: {entry['seconds']}"
        )
    else:
        # Four workers time-slicing a single CPU cannot beat that CPU's
        # sequential throughput, and the cost of forking the pool varies
        # with the parent process image, so neither the parallel factor nor
        # the pool overhead is a stable signal here.  Pin the engine factor
        # (the measurable half of the speedup) and leave the recorded batch
        # timing in BENCH_engine.json as trajectory data.
        assert speedup_engine >= 1.3, (
            f"indexed engine is only {speedup_engine:.2f}x faster than the "
            f"seed engine (required 1.3x); times: {entry['seconds']}"
        )
