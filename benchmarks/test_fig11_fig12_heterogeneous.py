"""Benchmarks regenerating paper Figures 11 and 12 (heterogeneous platforms).

Same quantities as Figures 9/10 but with mixed server classes and the
Replica Cost objective (cost = capacity of the chosen servers).  The paper's
observation is that the heterogeneous results closely mirror the homogeneous
ones -- the heuristics are "not much sensitive to the heterogeneity of the
platform".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import (
    figure11_heterogeneous_success,
    figure12_heterogeneous_cost,
)


@pytest.mark.benchmark(group="figure11")
def test_figure11_heterogeneous_success(benchmark, heterogeneous_campaign):
    figure = run_once(
        benchmark, figure11_heterogeneous_success, campaign=heterogeneous_campaign
    )
    print("\n=== Figure 11: percentage of success (heterogeneous) ===")
    print(figure.table())

    series = figure.series
    lambdas = sorted(series["LP"])
    low, high = lambdas[0], lambdas[-1]
    assert series["MG"] == series["LP"]
    assert series["MixedBest"] == series["LP"]
    assert series["LP"][low] >= 0.8
    assert series["CTDA"][high] <= series["CTDA"][low]
    benchmark.extra_info["lp_success"] = series["LP"]


@pytest.mark.benchmark(group="figure12")
def test_figure12_heterogeneous_relative_cost(benchmark, heterogeneous_campaign):
    figure = run_once(
        benchmark, figure12_heterogeneous_cost, campaign=heterogeneous_campaign
    )
    print("\n=== Figure 12: relative cost vs LP bound (heterogeneous) ===")
    print(figure.table())

    series = figure.series
    solvable = [
        load
        for load, value in figure.campaign.success_series()["LP"].items()
        if value > 0
    ]
    for load in solvable:
        mixed = series["MixedBest"][load]
        for name in ("CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MG", "MTD", "MBU"):
            assert mixed >= series[name][load] - 1e-9
    mixed_values = [series["MixedBest"][load] for load in solvable]
    assert sum(mixed_values) / len(mixed_values) >= 0.7
    benchmark.extra_info["mixed_best_relative_cost"] = series["MixedBest"]
