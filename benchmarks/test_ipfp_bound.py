"""Perf smoke benchmark: the IPFP fractional bound vs the exact LP bounds.

The IPFP subsystem exists so per-epoch lower bounds stop paying a simplex
(or worse, a branch-and-bound for the mixed bound) on every epoch of a
churning trajectory.  Two floors are asserted:

* ``cold`` -- on a 500-node heterogeneous Replica Cost instance with
  finite link bandwidths, one cold IPFP solve must run at least 5x
  faster than the cold mixed LP bound, while staying within 10% of the
  mixed LP value (the sandwich ``ipfp <= mixed`` is also re-checked).
* ``churn`` -- over a rate-churn trajectory, re-targeting the resident
  IPFP program epoch by epoch (``with_requests``: shared structure, zero
  re-assembly) must beat re-assembling and re-solving the rational LP
  from scratch every epoch, wall-clock, while every epoch's re-targeted
  value stays bit-identical to its cold IPFP run.

Every run appends an entry to ``BENCH_engine.json`` for the performance
trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.constraints import ConstraintSet
from repro.core.problem import ReplicaPlacementProblem, replica_cost_problem
from repro.lp.bounds import lp_lower_bound, rational_relaxation_bound
from repro.lp.ipfp import ipfp_bound, ipfp_program
from repro.workloads.dynamic import rate_churn
from repro.workloads.generator import GeneratorConfig, TreeGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

TREE_SIZE = 500
LOAD = 0.4
SEED = 4242
LINK_BANDWIDTH = 500.0
CHURN_EPOCHS = 8
#: best-of-N wall times, bounding noisy-neighbour spikes on shared hosts.
REPS = 3
REQUIRED_COLD_SPEEDUP = 5.0
MAX_GAP_TO_LP = 0.10


def build_problem() -> ReplicaPlacementProblem:
    tree = TreeGenerator(SEED).generate(
        GeneratorConfig(
            size=TREE_SIZE,
            target_load=LOAD,
            homogeneous=False,
            link_bandwidth=LINK_BANDWIDTH,
        )
    )
    return replica_cost_problem(
        tree, constraints=ConstraintSet(enforce_bandwidth=True)
    )


def best_of(reps, fn):
    """Best wall time over ``reps`` runs; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.mark.bench
def test_ipfp_bound_speed_and_gap():
    problem = build_problem()

    t_ipfp, cold_ipfp = best_of(REPS, lambda: ipfp_bound(problem))
    # One cold mixed solve is seconds of branch-and-bound at this size;
    # a single rep keeps the benchmark honest *and* finishing.
    t_mixed, mixed = best_of(1, lambda: lp_lower_bound(problem))
    assert cold_ipfp.feasible and mixed.feasible
    assert cold_ipfp.value <= mixed.value + 1e-9
    gap = 1.0 - cold_ipfp.value / mixed.value
    speedup = t_mixed / t_ipfp

    # Churn: re-target the resident IPFP program per epoch vs re-assembling
    # and re-solving the rational LP from scratch every epoch.
    epochs = rate_churn(
        problem, CHURN_EPOCHS, churn=0.2, quiet_probability=0.0, seed=SEED
    )

    def ipfp_trajectory():
        program = ipfp_program(problem)
        return [program.with_requests(epoch).solve().value for epoch in epochs]

    def lp_rebuild_trajectory():
        return [rational_relaxation_bound(epoch).value for epoch in epochs]

    t_retarget, retargeted = best_of(REPS, ipfp_trajectory)
    t_rebuild, rebuilt = best_of(REPS, lp_rebuild_trajectory)

    # Retarget contract: every epoch's warm value == its cold run.
    cold_values = [ipfp_bound(epoch).value for epoch in epochs]
    assert retargeted == cold_values

    # Sandwich per epoch: ipfp never exceeds the rational LP value.
    for warm, exact in zip(retargeted, rebuilt):
        assert warm <= exact + 1e-9

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": {
            "kind": "ipfp_bound",
            "tree_size": TREE_SIZE,
            "target_load": LOAD,
            "link_bandwidth": LINK_BANDWIDTH,
            "churn_epochs": CHURN_EPOCHS,
        },
        "cpus": available_cpus(),
        "seconds": {
            "ipfp_cold": round(t_ipfp, 5),
            "mixed_cold": round(t_mixed, 4),
            "ipfp_retarget_trajectory": round(t_retarget, 4),
            "lp_rebuild_trajectory": round(t_rebuild, 4),
        },
        "values": {
            "ipfp": cold_ipfp.value,
            "mixed": mixed.value,
            "gap_to_mixed": round(gap, 4),
        },
        "cold_speedup": round(speedup, 1),
        "churn_speedup": round(t_rebuild / t_retarget, 2),
    }
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")

    assert speedup >= REQUIRED_COLD_SPEEDUP, (
        f"cold IPFP ran only {speedup:.1f}x faster than the mixed LP "
        f"(required {REQUIRED_COLD_SPEEDUP}x); times: {entry['seconds']}"
    )
    assert gap <= MAX_GAP_TO_LP, (
        f"IPFP bound {cold_ipfp.value:g} is {gap:.1%} below the mixed LP "
        f"{mixed.value:g} (allowed {MAX_GAP_TO_LP:.0%})"
    )
    assert t_retarget < t_rebuild, (
        f"re-targeted IPFP trajectory ({t_retarget:.3f}s) did not beat the "
        f"rebuild-per-epoch LP trajectory ({t_rebuild:.3f}s)"
    )
