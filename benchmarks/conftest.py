"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
default plan is a reduced version of the paper's campaign (fewer trees per
load value, smaller trees) so the whole suite finishes in a couple of
minutes on a laptop; set the environment variable ``REPRO_BENCH_FULL=1`` to
run the paper-scale plan (30 trees per lambda, sizes 15-400).

The campaign behind Figures 9/10 (and 11/12) is computed once per session
and shared by the success-rate and relative-cost benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import CampaignConfig, run_campaign

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: perf smoke benchmarks that record trajectory entries in BENCH_*.json",
    )


def campaign_config(homogeneous: bool) -> CampaignConfig:
    """The campaign plan used by the figure benchmarks."""
    if FULL_SCALE:
        return CampaignConfig(homogeneous=homogeneous)
    return CampaignConfig(
        homogeneous=homogeneous,
        trees_per_lambda=5,
        size_range=(15, 80),
        seed=2007,
    )


@pytest.fixture(scope="session")
def homogeneous_campaign():
    """Campaign shared by the Figure 9 and Figure 10 benchmarks."""
    return run_campaign(campaign_config(homogeneous=True))


@pytest.fixture(scope="session")
def heterogeneous_campaign():
    """Campaign shared by the Figure 11 and Figure 12 benchmarks."""
    return run_campaign(campaign_config(homogeneous=False))


def run_once(benchmark, function, *args, **kwargs):
    """Run a (possibly slow) experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
