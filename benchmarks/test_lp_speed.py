"""Perf smoke benchmarks: the LP fast path (PR 3 acceptance criteria).

Two workloads, both appending trajectory entries to ``BENCH_engine.json``:

* **Program assembly** -- a 500-node heterogeneous, QoS-bounded,
  bandwidth-constrained instance (the most row-heavy non-Closest
  formulation).  The vectorised :func:`repro.lp.build_program` must
  assemble the Multiple program >= 2x faster than the row-by-row
  :func:`repro.lp.build_program_reference` oracle, on programs asserted
  bit-identical (the wide real margin is ~5-10x; the floor keeps the
  assertion robust against the +-20-30% wall-time noise of shared hosts).
* **Epoch re-bounding** -- a 30-epoch low-churn trajectory (8% of clients
  drift per active epoch, 60% of epochs quiet) on a 120-node tree.
  ``bound_sequence`` -- which reuses identical epochs and re-targets the
  cached program via ``LinearProgramData.with_requests`` for rate-only
  epochs -- must be >= 1.5x faster than per-epoch from-scratch
  ``lower_bound`` calls while producing identical bounds on every epoch.

Both wins come from skipped work (bulk assembly, shared programs, reused
solves), not parallelism, so they must show even on this 1-CPU container.
Times are best-of-3 to bound noisy-neighbour spikes.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.api import bound_sequence, lower_bound
from repro.core.constraints import ConstraintSet
from repro.core.problem import ProblemKind, ReplicaPlacementProblem, replica_counting_problem
from repro.lp import build_program, build_program_reference
from repro.workloads.dynamic import rate_churn
from repro.workloads.generator import GeneratorConfig, TreeGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: best-of-N wall times, bounding noisy-neighbour spikes on shared hosts.
REPS = 3

# --- program assembly workload ------------------------------------------- #
BUILD_TREE_SIZE = 500
BUILD_SEED = 3
BUILD_REPS = 5
REQUIRED_BUILD_SPEEDUP = 2.0

# --- epoch re-bounding workload ------------------------------------------ #
REBOUND_TREE_SIZE = 120
REBOUND_EPOCHS = 30
REBOUND_CHURN = 0.08
REBOUND_QUIET = 0.6
REBOUND_SEED = 777
REQUIRED_REBOUND_SPEEDUP = 1.5


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def append_bench_entry(entry) -> None:
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")


def bandwidth_problem() -> ReplicaPlacementProblem:
    """The row-heavy instance: heterogeneous, QoS hops, finite bandwidths."""
    tree = TreeGenerator(BUILD_SEED).generate(
        GeneratorConfig(
            size=BUILD_TREE_SIZE,
            target_load=0.5,
            homogeneous=False,
            client_attachment="uniform",
            max_children=2,
            qos_hops=(4, 8),
            link_bandwidth=1e6,  # finite: every link contributes a bandwidth row
        )
    )
    return ReplicaPlacementProblem(
        tree=tree,
        constraints=ConstraintSet.qos_distance(enforce_bandwidth=True),
        kind=ProblemKind.REPLICA_COST,
    )


def best_time(function, reps=REPS):
    best = math.inf
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.bench
def test_lp_build_speed():
    problem = bandwidth_problem()
    # Warm the shared per-tree/per-problem caches (TreeIndex, eligibility
    # memo) once so both builders are measured on identical footing.
    build_program(problem, "multiple")
    build_program_reference(problem, "multiple")

    t_fast, fast = best_time(lambda: build_program(problem, "multiple"), BUILD_REPS)
    t_reference, reference = best_time(
        lambda: build_program_reference(problem, "multiple"), BUILD_REPS
    )

    # Same program bit for bit (the full contract lives in the tier-1
    # equivalence suite; this is the benchmark's sanity belt).
    left = fast.constraint_matrix.tocsr().copy()
    right = reference.constraint_matrix.tocsr().copy()
    for matrix in (left, right):
        matrix.sum_duplicates()
        matrix.sort_indices()
    assert (left != right).nnz == 0
    assert list(fast.lower) == list(reference.lower)
    assert list(fast.upper) == list(reference.upper)

    speedup = t_reference / t_fast
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": {
            "kind": "lp_build",
            "tree_size": BUILD_TREE_SIZE,
            "policy": "multiple",
            "qos": "distance",
            "bandwidth": True,
            "rows": int(fast.num_constraints),
            "variables": int(fast.num_variables),
        },
        "cpus": available_cpus(),
        "seconds": {
            "vectorised": round(t_fast, 5),
            "reference": round(t_reference, 5),
        },
        "speedup": {"build_vs_reference": round(speedup, 3)},
    }
    append_bench_entry(entry)

    assert speedup >= REQUIRED_BUILD_SPEEDUP, (
        f"vectorised assembly is only {speedup:.2f}x faster than the "
        f"reference builder (required {REQUIRED_BUILD_SPEEDUP}x on a "
        f"{BUILD_TREE_SIZE}-node bandwidth-constrained instance); "
        f"times: {entry['seconds']}"
    )


def rebound_epochs():
    """Fresh trees every call so index/program caches never leak."""
    tree = TreeGenerator(REBOUND_SEED).generate(
        GeneratorConfig(size=REBOUND_TREE_SIZE, target_load=0.5, homogeneous=True)
    )
    base = replica_counting_problem(tree)
    return rate_churn(
        base,
        REBOUND_EPOCHS,
        churn=REBOUND_CHURN,
        magnitude=0.5,
        quiet_probability=REBOUND_QUIET,
        seed=REBOUND_SEED,
    )


@pytest.mark.bench
def test_lp_rebound_speed():
    def incremental():
        return bound_sequence(rebound_epochs())

    def scratch():
        return [lower_bound(problem) for problem in rebound_epochs()]

    t_incremental, bounded = best_time(incremental)
    t_scratch, scratch_values = best_time(scratch)

    # Identical bounds on every epoch (acceptance criterion).
    assert bounded.values == scratch_values

    speedup = t_scratch / t_incremental
    strategies = bounded.strategy_counts()
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": {
            "kind": "lp_rebound",
            "tree_size": REBOUND_TREE_SIZE,
            "epochs": REBOUND_EPOCHS,
            "churn": REBOUND_CHURN,
            "quiet_probability": REBOUND_QUIET,
            "method": "mixed",
        },
        "cpus": available_cpus(),
        "seconds": {
            "scratch": round(t_scratch, 4),
            "incremental": round(t_incremental, 4),
        },
        "speedup": {"rebound_vs_scratch": round(speedup, 3)},
        "strategies": strategies,
    }
    append_bench_entry(entry)

    # The win is skipped work (reused bounds, patched programs), so it must
    # show even on a single CPU.
    assert speedup >= REQUIRED_REBOUND_SPEEDUP, (
        f"incremental re-bounding is only {speedup:.2f}x faster than "
        f"rebuild-per-epoch (required {REQUIRED_REBOUND_SPEEDUP}x on this "
        f"low-churn sequence); times: {entry['seconds']}, "
        f"strategies: {strategies}"
    )
