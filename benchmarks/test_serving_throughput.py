"""Perf smoke benchmark: serving-edge throughput (PR 6 acceptance criteria).

Two assertions, both appending trajectory entries to ``BENCH_engine.json``:

* **batching wins** -- shipping a warm same-session workload as one
  batched envelope over the TCP loop server must sustain ``>= 2x`` the
  request rate of the same workload sent one envelope per round trip on
  the same connection.  Both paths pay the full serving edge (socket,
  JSON framing, dispatch, the op itself); the batch amortises what the
  tentpole says it amortises -- one wire round trip, one parse/reply
  cycle and one pool checkout for the whole run.  (This measurement is
  what exposed the missing ``TCP_NODELAY``: without it, Nagle held every
  multi-segment line for the peer's delayed ACK and batches *lost*.)
* **open-loop latency under IPPP load** -- the ``repro loadtest`` harness
  drives an inhomogeneous-Poisson arrival schedule (sinusoidal intensity,
  open loop: latency includes queueing delay behind late replies) against
  an in-process server and must answer every scheduled request.  The same
  schedule is replayed unbatched and batched; p50/p99 and req/s for both
  are recorded so the trajectory shows what coalescing buys at the edge.

Both properties are about skipped per-request work, not parallelism, so
they must show on this 1-CPU container.  Times are best-of-N to bound
noisy-neighbour spikes.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.serialization import problem_to_dict
from repro.serving import (
    LoadgenConfig,
    LoopServer,
    ReproServer,
    SessionPool,
    run_loadtest,
)
from repro.serving.client import TcpTransport
from repro.workloads.generator import GeneratorConfig, TreeGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

TREE_SIZE = 120
SEED = 42
REQUESTS = 400
REPS = 5
REQUIRED_BATCH_SPEEDUP = 2.0

LOAD_RATE = 120.0
LOAD_HORIZON = 1.5
LOAD_TENANTS = 3
LOAD_BATCH = 8


def append_bench_entry(entry) -> None:
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")


def make_problem(seed: int = SEED, size: int = TREE_SIZE) -> ReplicaPlacementProblem:
    tree = TreeGenerator(seed).generate(
        GeneratorConfig(size=size, target_load=0.5)
    )
    return ReplicaPlacementProblem(tree=tree, kind=ProblemKind.REPLICA_COUNTING)


def best_rate(reps: int, count: int, fn) -> float:
    """Highest requests/sec over ``reps`` runs of ``fn`` serving ``count``."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return count / best


@pytest.mark.bench
def test_batched_envelopes_double_the_request_rate():
    loop = LoopServer(ReproServer(SessionPool(4)))
    host, port = loop.listen()
    thread = threading.Thread(target=loop.serve, daemon=True)
    thread.start()
    try:
        transport = TcpTransport(host, port)
        first = transport.send(
            {"op": "solve", "problem": problem_to_dict(make_problem())}
        )
        assert first["type"] == "solve_result"

        # The same REQUESTS-item warm workload, framed both ways.
        item = {"op": "bound", "fingerprint": first["fingerprint"]}
        batch = {"op": "batch", "requests": [item] * REQUESTS}
        assert transport.send(item)["type"] == "bound_result"  # warm caches

        def per_envelope():
            for _ in range(REQUESTS):
                assert transport.send(item)["type"] == "bound_result"

        def batched():
            reply = transport.send(batch)
            assert len(reply["results"]) == REQUESTS
            assert reply["results"][-1]["type"] == "bound_result"

        single_rate = best_rate(REPS, REQUESTS, per_envelope)
        batch_rate = best_rate(REPS, REQUESTS, batched)
        transport.close()
    finally:
        loop.shutdown()
        thread.join(timeout=10)
    speedup = batch_rate / single_rate

    append_bench_entry(
        {
            "benchmark": "serving_batch_throughput",
            "tree_size": TREE_SIZE,
            "requests": REQUESTS,
            "per_envelope_req_per_s": round(single_rate, 1),
            "batched_req_per_s": round(batch_rate, 1),
            "batch_speedup": round(speedup, 2),
            "required_speedup": REQUIRED_BATCH_SPEEDUP,
        }
    )
    assert speedup >= REQUIRED_BATCH_SPEEDUP, (
        f"batched envelopes only {speedup:.2f}x the per-envelope rate "
        f"({batch_rate:.0f} vs {single_rate:.0f} req/s); required "
        f">= {REQUIRED_BATCH_SPEEDUP}x"
    )


@pytest.mark.bench
def test_open_loop_ippp_loadtest_records_latency():
    reports = {}
    for batch in (1, LOAD_BATCH):
        config = LoadgenConfig(
            tenants=LOAD_TENANTS,
            size=40,
            horizon=LOAD_HORIZON,
            rate=LOAD_RATE,
            batch=batch,
            seed=SEED,
        )
        report = run_loadtest(
            ReproServer(SessionPool(LOAD_TENANTS + 1)), config
        )
        assert report.scheduled > 0
        assert report.served == report.scheduled
        assert report.errors == 0
        assert report.latency["p50"] <= report.latency["p99"]
        reports[batch] = report

    unbatched, batched = reports[1], reports[LOAD_BATCH]
    # Coalescing due arrivals can only cut the wire round-trips needed to
    # answer the same schedule.
    assert batched.envelopes <= unbatched.envelopes

    append_bench_entry(
        {
            "benchmark": "serving_loadtest",
            "tenants": LOAD_TENANTS,
            "offered_rate_req_per_s": LOAD_RATE,
            "horizon_s": LOAD_HORIZON,
            "scheduled": unbatched.scheduled,
            "unbatched": {
                "req_per_s": round(unbatched.requests_per_sec, 1),
                "p50_ms": round(unbatched.latency["p50"] * 1000, 3),
                "p99_ms": round(unbatched.latency["p99"] * 1000, 3),
                "envelopes": unbatched.envelopes,
            },
            "batched": {
                "batch": LOAD_BATCH,
                "req_per_s": round(batched.requests_per_sec, 1),
                "p50_ms": round(batched.latency["p50"] * 1000, 3),
                "p99_ms": round(batched.latency["p99"] * 1000, 3),
                "envelopes": batched.envelopes,
            },
        }
    )
