"""Perf smoke benchmark: trace ingest + epoch detection at log scale.

The trace pipeline exists to digest *real* request logs, so its smoke
benchmark measures the two things a log pipeline must do fast:

* ``ingest`` -- parse a ~100k-event CSV log into a validated ``Trace``
  (stdlib csv + one vectorised assembly pass).  Floor: 50k events/s even
  on this 1-CPU container, i.e. a day-long 10M-event log ingests in
  a few minutes.
* ``detect`` -- bin the trace and run the greedy changepoint pass plus
  per-client rate estimation.  No floor (it is O(bins) after binning and
  measured for the trajectory only), but it must land the planted
  regime boundaries.

Correctness rides along: the planted three-regime log must come back as
three detected epochs, and replaying the detected epochs through
``solve_sequence`` must give bit-identical per-epoch costs in incremental
and scratch modes -- the trace path feeds the same resolver machinery as
the synthetic trajectories, epoch for epoch.  Every run appends an entry
to ``BENCH_engine.json`` for the performance trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import solve_sequence
from repro.core.problem import replica_counting_problem
from repro.workloads.dynamic import as_base_problem
from repro.workloads.generator import GeneratorConfig, TreeGenerator
from repro.workloads.traces import detect_epochs, load_trace, sample_trace

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

TREE_SIZE = 60
LOAD = 0.4
SEED = 4242
#: per-regime surge factors planted in the synthetic log
REGIME_FACTORS = (1.0, 2.0, 0.6)
EPOCH_DURATION = 40.0
#: rates pass through unscaled: three 40-unit regimes on this tree
#: yield a ~100k-event log
RATE_SCALE = 1.0
#: best-of-N wall times, bounding noisy-neighbour spikes on shared hosts.
REPS = 3
REQUIRED_INGEST_RATE = 50_000.0  # events/s


def build_log(path: Path):
    """Write a three-regime CSV log sampled from planted epoch problems."""
    tree = TreeGenerator(SEED).generate(
        GeneratorConfig(size=TREE_SIZE, target_load=LOAD, homogeneous=True)
    )
    base = replica_counting_problem(tree)
    trajectory = [
        as_base_problem(
            tree.with_requests(
                {c: tree.client(c).requests * factor for c in tree.client_ids}
            )
        )
        for factor in REGIME_FACTORS
    ]
    trace = sample_trace(
        trajectory,
        np.random.default_rng(SEED),
        epoch_duration=EPOCH_DURATION,
        rate_scale=RATE_SCALE,
        name="bench-log",
    )
    trace.to_csv(path)
    return base


def best_of(reps, fn):
    """Best wall time over ``reps`` runs; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.mark.bench
def test_trace_ingest_and_replay_speed(tmp_path):
    log = tmp_path / "requests.csv"
    base = build_log(log)

    t_ingest, trace = best_of(REPS, lambda: load_trace(log))
    ingest_rate = trace.events / t_ingest

    t_detect, model = best_of(
        REPS, lambda: detect_epochs(trace, max_epochs=len(REGIME_FACTORS) + 2)
    )

    # The planted regimes must come back out of the detector.
    assert model.epoch_count == len(REGIME_FACTORS), (
        f"expected {len(REGIME_FACTORS)} epochs, detected {model.epoch_count} "
        f"at boundaries {model.boundaries.tolist()}"
    )

    # Replaying the detected epochs feeds the same machinery as synthetic
    # trajectories: incremental and scratch must agree epoch for epoch.
    epochs = model.problems(base, rate_scale=1.0 / RATE_SCALE)
    incremental = solve_sequence(epochs, policy="multiple", mode="incremental")
    scratch = solve_sequence(epochs, policy="multiple", mode="scratch")
    assert incremental.costs == scratch.costs
    assert incremental.solved_epochs == len(REGIME_FACTORS)

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": {
            "kind": "trace_ingest_replay",
            "tree_size": TREE_SIZE,
            "events": trace.events,
            "clients": len(trace.client_ids),
            "regimes": len(REGIME_FACTORS),
            "format": "csv",
        },
        "cpus": available_cpus(),
        "seconds": {
            "ingest": round(t_ingest, 4),
            "detect": round(t_detect, 4),
        },
        "events_per_second": {
            "ingest": round(ingest_rate, 1),
            "detect": round(trace.events / t_detect, 1),
        },
        "detected_epochs": model.epoch_count,
        "replay_costs": incremental.costs,
    }
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")

    assert ingest_rate >= REQUIRED_INGEST_RATE, (
        f"CSV ingest ran at {ingest_rate:.0f} events/s on {trace.events} events "
        f"(required {REQUIRED_INGEST_RATE:.0f}); times: {entry['seconds']}"
    )
