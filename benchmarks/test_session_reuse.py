"""Perf smoke benchmark: session cache reuse (PR 4 acceptance criteria).

One workload on a 500-node heterogeneous, QoS-bounded,
bandwidth-constrained instance, appending a trajectory entry to
``BENCH_engine.json``:

* a :class:`~repro.session.PlacementSession` solves the instance once, then
  serves a rate-only epoch stream (``update(requests=...)`` + ``bound()``);
* the baseline re-answers the same queries statelessly: every epoch gets a
  cache-free tree clone and a from-scratch :func:`repro.api.lower_bound`
  (full index DFS + variable layout + program assembly + LP solve).

The reuse is verified twice over:

* **structurally** -- the session's resident program must share its
  sparsity arrays with the pre-update program
  (:meth:`~repro.lp.formulation.LinearProgramData.shares_structure_with`),
  every post-update bound must report strategy ``patched`` (exactly one
  ``built``), the program's variable space must sit on the session's own
  :class:`~repro.core.index.TreeIndex`, and the bounds must equal the
  from-scratch values bit for bit;
* **by wall clock** -- the patched per-epoch bound must beat the
  from-scratch rebuild by ``>= 1.15x`` (real margin on this host is
  ~1.4x: the rational LP solve itself is shared by both paths, so the
  floor is intentionally conservative for 1-CPU container noise), and a
  repeated same-epoch ``bound()`` -- a per-epoch cache hit -- must beat it
  by ``>= 20x`` (real margin is ~1000x).

Both wins come from skipped work (no re-indexing, no re-assembly), not
parallelism, so they must show even on this 1-CPU container.  Times are
best-of-N to bound noisy-neighbour spikes.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import pytest

from repro.api import lower_bound
from repro.core.constraints import ConstraintSet
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.serialization import tree_from_dict, tree_to_dict
from repro.session import PlacementSession
from repro.workloads.generator import GeneratorConfig, TreeGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

TREE_SIZE = 500
SEED = 42
EPOCHS = 6
#: best-of-N wall times, bounding noisy-neighbour spikes on shared hosts.
REPS = 5
REQUIRED_PATCH_SPEEDUP = 1.15
REQUIRED_CACHE_SPEEDUP = 20.0


def append_bench_entry(entry) -> None:
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")


def make_tree():
    return TreeGenerator(SEED).generate(
        GeneratorConfig(
            size=TREE_SIZE,
            target_load=0.5,
            homogeneous=False,
            max_children=2,
            qos_hops=(4, 8),
            link_bandwidth=1e6,  # finite: every link contributes a bandwidth row
        )
    )


CONSTRAINTS = ConstraintSet.qos_distance(enforce_bandwidth=True)


def make_problem(tree) -> ReplicaPlacementProblem:
    return ReplicaPlacementProblem(
        tree=tree, constraints=CONSTRAINTS, kind=ProblemKind.REPLICA_COST
    )


@pytest.mark.bench
def test_session_reuse_speed():
    tree = make_tree()
    problem = make_problem(tree)
    # One throwaway solve pays scipy's lazy-import / first-call costs so
    # neither measured path carries them.
    lower_bound(make_problem(tree_from_dict(tree_to_dict(tree))), method="rational")

    # ------------------------------------------------------------------ #
    # the session path: solve once, then serve rate-only epochs
    # ------------------------------------------------------------------ #
    session = PlacementSession(problem)
    solved = session.solve()
    assert solved.feasible
    first_bound = session.bound(method="rational")
    program_before = session.program(method="rational")
    assert program_before is not None
    # solve-then-bound shares the session's TreeIndex: same object, no DFS.
    assert program_before.space.index is session.index

    clients = tree.client_ids
    t_patched = math.inf
    for k in range(EPOCHS):
        client = clients[k]
        new_rate = problem.requests(client) + 1.0 + k
        session.update(requests={client: new_rate}, resolve=False)
        start = time.perf_counter()
        bound = session.bound(method="rational")
        t_patched = min(t_patched, time.perf_counter() - start)
        assert bound.stats.strategy == "patched"
        # The resident program was re-targeted, never re-assembled.
        assert session.program(method="rational").shares_structure_with(
            program_before
        )

    assert session.stats.bound_strategies.get("built") == 1
    assert session.stats.bound_strategies.get("patched") == EPOCHS

    # A repeated same-epoch bound is a pure cache hit.
    t_cached = math.inf
    for _ in range(REPS):
        start = time.perf_counter()
        session.bound(method="rational")
        t_cached = min(t_cached, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # the stateless baseline: cache-free clone + from-scratch bound
    # ------------------------------------------------------------------ #
    final_tree = session.tree
    t_fresh = math.inf
    fresh_value = None
    for _ in range(REPS):
        clone = make_problem(tree_from_dict(tree_to_dict(final_tree)))
        start = time.perf_counter()
        fresh_value = lower_bound(clone, method="rational")
        t_fresh = min(t_fresh, time.perf_counter() - start)

    # Patched bounds are the from-scratch bounds, bit for bit.
    assert session.bound(method="rational").value == fresh_value
    assert first_bound.value == lower_bound(
        make_problem(tree_from_dict(tree_to_dict(tree))), method="rational"
    )

    patch_speedup = t_fresh / t_patched
    cache_speedup = t_fresh / t_cached
    append_bench_entry(
        {
            "suite": "session_reuse",
            "tree_size": TREE_SIZE,
            "epochs": EPOCHS,
            "fresh_bound_s": t_fresh,
            "patched_bound_s": t_patched,
            "cached_bound_s": t_cached,
            "patch_speedup": patch_speedup,
            "cache_speedup": cache_speedup,
            "session_stats": {
                "solves": session.stats.solves,
                "bounds": session.stats.bounds,
                "bound_strategies": dict(session.stats.bound_strategies),
            },
        }
    )

    assert patch_speedup >= REQUIRED_PATCH_SPEEDUP, (
        f"patched session bound only {patch_speedup:.2f}x faster than a "
        f"from-scratch rebuild (required {REQUIRED_PATCH_SPEEDUP}x)"
    )
    assert cache_speedup >= REQUIRED_CACHE_SPEEDUP, (
        f"cached same-epoch bound only {cache_speedup:.2f}x faster than a "
        f"from-scratch rebuild (required {REQUIRED_CACHE_SPEEDUP}x)"
    )
