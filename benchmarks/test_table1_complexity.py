"""Benchmark regenerating the evidence behind paper Table 1.

Table 1 classifies the complexity of the Replica Cost problem per access
policy and platform type.  The benchmark runs the computational checks that
back each cell (optimal greedy == ILP for Multiple/homogeneous, reduction
instances solvable exactly at the target cost iff the underlying partition
instance is a yes-instance) and prints them as a table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.tables import table1_evidence, table1_table


@pytest.mark.benchmark(group="table1")
def test_table1_complexity_evidence(benchmark):
    rows = run_once(benchmark, table1_evidence, instances=4, seed=2007)
    print("\n=== Table 1: complexity evidence ===")
    print(table1_table(rows))

    assert len(rows) == 6
    for row in rows:
        assert row.consistent, f"inconsistent evidence for {row.policy} / {row.platform}"
    benchmark.extra_info["cells_checked"] = len(rows)
