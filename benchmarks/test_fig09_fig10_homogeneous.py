"""Benchmarks regenerating paper Figures 9 and 10 (homogeneous platforms).

Figure 9 plots, for every load value lambda, the fraction of random trees on
which each heuristic finds a valid solution (the ``LP`` row counts the trees
that admit any solution); Figure 10 plots the relative cost of each
heuristic against the LP-based lower bound on the solvable trees.

Expected shape (the paper's qualitative findings, asserted below):

* MG and MixedBest succeed exactly on the solvable trees (same curve as LP);
* the Closest heuristics collapse as lambda grows;
* MixedBest's relative cost stays high (>= 0.75 on this reduced plan).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import (
    figure9_homogeneous_success,
    figure10_homogeneous_cost,
)


@pytest.mark.benchmark(group="figure9")
def test_figure9_homogeneous_success(benchmark, homogeneous_campaign):
    figure = run_once(
        benchmark, figure9_homogeneous_success, campaign=homogeneous_campaign
    )
    print("\n=== Figure 9: percentage of success (homogeneous) ===")
    print(figure.table())

    series = figure.series
    lambdas = sorted(series["LP"])
    low, high = lambdas[0], lambdas[-1]
    # MG / MixedBest find a solution whenever one exists.
    assert series["MG"] == series["LP"]
    assert series["MixedBest"] == series["LP"]
    # Closest collapses at high load while the LP still finds solutions at low load.
    assert series["LP"][low] >= 0.8
    assert series["CTDA"][high] <= series["LP"][high]
    assert series["CTDA"][high] <= series["CTDA"][low]
    # Closest heuristics share the same success curve (paper observation).
    assert series["CTDA"] == series["CTDLF"] == series["CBU"]
    benchmark.extra_info["lp_success"] = series["LP"]


@pytest.mark.benchmark(group="figure10")
def test_figure10_homogeneous_relative_cost(benchmark, homogeneous_campaign):
    figure = run_once(
        benchmark, figure10_homogeneous_cost, campaign=homogeneous_campaign
    )
    print("\n=== Figure 10: relative cost vs LP bound (homogeneous) ===")
    print(figure.table())

    series = figure.series
    solvable = [
        load
        for load, value in figure.campaign.success_series()["LP"].items()
        if value > 0
    ]
    for load in solvable:
        mixed = series["MixedBest"][load]
        # MixedBest picks the best component, hence dominates each of them.
        for name in ("CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MG", "MTD", "MBU"):
            assert mixed >= series[name][load] - 1e-9
        assert 0.0 <= mixed <= 1.0 + 1e-9
    # Aggregate quality: MixedBest stays close to the lower bound on solvable loads.
    mixed_values = [series["MixedBest"][load] for load in solvable]
    assert sum(mixed_values) / len(mixed_values) >= 0.75
    benchmark.extra_info["mixed_best_relative_cost"] = series["MixedBest"]
