"""Perf smoke benchmark: incremental re-solve vs from-scratch on low churn.

The workload is a low-churn dynamic sequence in the operating regime the
incremental resolver is built for: a 240-node homogeneous tree whose
request rates drift mildly (8% of clients per active epoch) with most
epochs quiet (60%), re-solved over 30 epochs under the Multiple policy.

Two runs are timed on identical epochs:

* ``scratch`` -- ``solve_sequence(..., mode="scratch")``: one full solve
  per epoch (the pre-PR-2 way of following a trajectory);
* ``incremental`` -- the default mode: unchanged epochs are reused, the
  rest re-solved on patched tree indexes.

Both produce bit-identical per-epoch costs (asserted -- the acceptance
criterion of PR 2); the incremental run must be >= 1.5x faster even on this
1-CPU container, since its win is skipped work, not parallelism.  Every run
appends an entry to ``BENCH_engine.json`` for the performance trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import solve_sequence
from repro.core.problem import replica_counting_problem
from repro.workloads.dynamic import rate_churn
from repro.workloads.generator import GeneratorConfig, TreeGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

TREE_SIZE = 240
EPOCHS = 30
CHURN = 0.08
QUIET = 0.6
LOAD = 0.5
POLICY = "multiple"
SEED = 777
#: best-of-N wall times, bounding noisy-neighbour spikes on shared hosts.
REPS = 3
REQUIRED_SPEEDUP = 1.5


def build_epochs():
    """Fresh trees every call so index caches never leak between runs."""
    tree = TreeGenerator(SEED).generate(
        GeneratorConfig(size=TREE_SIZE, target_load=LOAD, homogeneous=True)
    )
    base = replica_counting_problem(tree)
    return rate_churn(
        base, EPOCHS, churn=CHURN, magnitude=0.5, quiet_probability=QUIET, seed=SEED
    )


def timed_sequence(mode):
    """Best wall time over REPS runs on freshly generated epochs."""
    best = float("inf")
    result = None
    for _ in range(REPS):
        epochs = build_epochs()
        start = time.perf_counter()
        result = solve_sequence(epochs, policy=POLICY, mode=mode)
        best = min(best, time.perf_counter() - start)
    return best, result


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.mark.bench
def test_incremental_resolve_speed():
    t_scratch, scratch = timed_sequence("scratch")
    t_incremental, incremental = timed_sequence("incremental")

    # Cost-identical on every epoch, whatever the mode (acceptance criterion).
    assert incremental.costs == scratch.costs

    speedup = t_scratch / t_incremental
    strategies = incremental.strategy_counts()
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": {
            "kind": "incremental_resolve",
            "tree_size": TREE_SIZE,
            "epochs": EPOCHS,
            "churn": CHURN,
            "quiet_probability": QUIET,
            "load": LOAD,
            "policy": POLICY,
        },
        "cpus": available_cpus(),
        "seconds": {
            "scratch": round(t_scratch, 4),
            "incremental": round(t_incremental, 4),
        },
        "speedup": {"incremental_vs_scratch": round(speedup, 3)},
        "strategies": strategies,
        "solved": incremental.solved_epochs,
    }
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")

    # The win comes from skipped work (epoch reuse + patched indexes), so it
    # must show even on a single CPU.
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental re-solve is only {speedup:.2f}x faster than from-scratch "
        f"(required {REQUIRED_SPEEDUP}x on this low-churn sequence); "
        f"times: {entry['seconds']}, strategies: {strategies}"
    )
