"""Micro-benchmarks: runtime of the heuristics and of the LP lower bound.

The paper argues the eight heuristics are worst-case quadratic in the
problem size ``s = |C| + |N|`` and that the mixed lower bound is solvable
"within ten seconds" for trees of several hundred elements.  These
benchmarks time the individual building blocks on a mid-size tree so
regressions in the algorithmic complexity show up as timing regressions.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import get_heuristic
from repro.core.problem import replica_counting_problem
from repro.lp.bounds import lp_lower_bound
from repro.workloads.generator import GeneratorConfig, TreeGenerator

SIZE = 200
LOAD = 0.4


@pytest.fixture(scope="module")
def scaling_problem():
    tree = TreeGenerator(4242).generate(
        GeneratorConfig(size=SIZE, target_load=LOAD, homogeneous=True)
    )
    return replica_counting_problem(tree)


@pytest.mark.benchmark(group="heuristic-runtime")
@pytest.mark.parametrize(
    "name", ["CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MTD", "MBU", "MG", "MixedBest"]
)
def test_heuristic_runtime(benchmark, scaling_problem, name):
    heuristic = get_heuristic(name)
    solution = benchmark(heuristic.try_solve, scaling_problem)
    benchmark.extra_info["solved"] = solution is not None
    benchmark.extra_info["size"] = SIZE


@pytest.mark.benchmark(group="optimal-runtime")
def test_optimal_multiple_homogeneous_runtime(benchmark, scaling_problem):
    heuristic = get_heuristic("MultipleOptimalHomogeneous")
    solution = benchmark(heuristic.try_solve, scaling_problem)
    assert solution is not None
    benchmark.extra_info["replicas"] = solution.replica_count()


@pytest.mark.benchmark(group="lower-bound-runtime")
def test_lp_lower_bound_runtime(benchmark, scaling_problem):
    bound = benchmark.pedantic(
        lp_lower_bound, args=(scaling_problem,), rounds=1, iterations=1
    )
    assert bound.feasible
    benchmark.extra_info["bound"] = bound.value
