"""Perf smoke benchmark: the serving pool (PR 5 acceptance criteria).

Two assertions on the 500-node heterogeneous, QoS-bounded,
bandwidth-constrained instance the session benchmarks use, appending a
trajectory entry to ``BENCH_engine.json``:

* **warm vs cold** -- answering a repeat ``solve`` envelope on a resident
  session (fingerprint-addressed pool hit, per-epoch cache) must beat a
  cold one-shot (fresh server: decode the shipped problem, build the
  session, index the tree, run the portfolio) by ``>= 5x``.  The real
  margin on this 1-CPU container is orders of magnitude -- the floor is
  conservative because the warm path still pays JSON envelope handling.
* **bounded residency** -- pushing ``2 x capacity`` distinct tenants
  through a pool must never leave more than ``capacity`` sessions
  resident, and the survivors must be exactly the most recently used ones.

Both properties are about skipped work and bookkeeping, not parallelism,
so they must show on this 1-CPU container.  Times are best-of-N to bound
noisy-neighbour spikes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.constraints import ConstraintSet
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.serialization import problem_to_dict
from repro.serving.fingerprint import problem_fingerprint
from repro.serving.pool import SessionPool
from repro.serving.server import ReproServer
from repro.workloads.generator import GeneratorConfig, TreeGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

TREE_SIZE = 500
SEED = 42
COLD_REPS = 3
WARM_REPS = 20
REQUIRED_WARM_SPEEDUP = 5.0
POOL_CAPACITY = 4
TENANTS = 2 * POOL_CAPACITY


def append_bench_entry(entry) -> None:
    entries = []
    if BENCH_FILE.exists():
        try:
            entries = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")


def make_problem(seed: int = SEED, size: int = TREE_SIZE) -> ReplicaPlacementProblem:
    tree = TreeGenerator(seed).generate(
        GeneratorConfig(
            size=size,
            target_load=0.5,
            homogeneous=False,
            max_children=2,
            qos_hops=(4, 8),
            link_bandwidth=1e6,
        )
    )
    return ReplicaPlacementProblem(
        tree=tree,
        constraints=ConstraintSet.qos_distance(enforce_bandwidth=True),
        kind=ProblemKind.REPLICA_COST,
    )


def best_of(reps: int, fn) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.bench
def test_warm_pool_beats_cold_one_shot():
    problem = make_problem()
    payload = problem_to_dict(problem)
    envelope = {"op": "solve", "problem": payload}

    def cold():
        reply = ReproServer(capacity=2).handle(envelope)
        assert reply["type"] == "solve_result" and reply["feasible"]

    cold_time = best_of(COLD_REPS, cold)

    warm_server = ReproServer(capacity=2)
    first = warm_server.handle(envelope)
    assert first["feasible"]
    warm_envelope = {"op": "solve", "fingerprint": first["fingerprint"]}

    def warm():
        reply = warm_server.handle(warm_envelope)
        assert reply["feasible"]

    warm_time = best_of(WARM_REPS, warm)
    # identical payloads: the warm path re-serves the cached result
    assert warm_server.handle(warm_envelope) == first

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    append_bench_entry(
        {
            "benchmark": "serving_pool",
            "tree_size": TREE_SIZE,
            "cold_solve_s": round(cold_time, 6),
            "warm_solve_s": round(warm_time, 6),
            "warm_speedup": round(speedup, 2),
            "required_speedup": REQUIRED_WARM_SPEEDUP,
        }
    )
    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"warm pool solve only {speedup:.1f}x faster than cold one-shot "
        f"({warm_time:.4f}s vs {cold_time:.4f}s); required "
        f">= {REQUIRED_WARM_SPEEDUP}x"
    )


@pytest.mark.bench
def test_eviction_keeps_residency_bounded():
    pool = SessionPool(capacity=POOL_CAPACITY)
    problems = [make_problem(seed=100 + i, size=60) for i in range(TENANTS)]
    fingerprints = []
    for problem in problems:
        with pool.checkout(problem) as entry:
            # infeasible tenants still occupy (and rotate through) the pool
            entry.session.solve(on_error="none")
            fingerprints.append(entry.fingerprint)
        assert len(pool) <= POOL_CAPACITY
    assert len(pool) == POOL_CAPACITY
    # the survivors are exactly the most recently used tenants, in order
    assert pool.resident_fingerprints() == tuple(fingerprints[-POOL_CAPACITY:])
    stats = pool.stats()
    assert stats.evictions == TENANTS - POOL_CAPACITY
    # lifetime counters remember the evicted tenants' work
    assert stats.solves == TENANTS
    # a returning evicted tenant is a miss (and a fresh solve), not a crash
    with pool.checkout(problems[0]) as entry:
        assert entry.fingerprint == problem_fingerprint(problems[0])
