"""Video-on-demand distribution tree: policy comparison at increasing load.

The paper motivates replica placement with electronic/ISP/VOD service
delivery: a root server holds the original content and a fixed distribution
tree provides hierarchical access to replicas.  This example generates a
mid-size VOD-like tree, sweeps the request load and shows how the three
access policies behave:

* how often each policy still admits a solution,
* how many replicas (servers) it needs,
* how far from the LP lower bound it lands,
* what the clients experience (mean service distance), using the
  request-flow simulation.

Run with::

    python examples/vod_distribution.py
"""

from __future__ import annotations

import math

from repro import Policy, lower_bound, replica_counting_problem, solve
from repro.core.exceptions import InfeasibleError
from repro.experiments.reporting import ascii_table
from repro.simulation import simulate_solution
from repro.workloads import generate_tree

LOADS = (0.2, 0.4, 0.6, 0.8)
SIZE = 90
SEED = 2007


def evaluate(load: float):
    """Solve one VOD tree at the given load under the three policies."""
    tree = generate_tree(size=SIZE, target_load=load, homogeneous=True, seed=SEED)
    problem = replica_counting_problem(tree)
    bound = lower_bound(problem)
    row = [f"{load:.1f}", f"{bound:g}" if math.isfinite(bound) else "infeasible"]
    for policy in Policy.ordered():
        try:
            solution = solve(problem, policy=policy)
        except InfeasibleError:
            row.append("-")
            continue
        simulation = simulate_solution(problem, solution)
        row.append(
            f"{solution.replica_count()} replicas / dist {simulation.mean_latency:.1f}"
        )
    return row


def main() -> None:
    print(f"VOD distribution tree, {SIZE} elements, homogeneous edge servers (W = 100)")
    print("For each load: replicas used and mean client-to-server distance (hops).")
    print()
    rows = [evaluate(load) for load in LOADS]
    print(
        ascii_table(
            ["lambda", "LP bound", "closest", "upwards", "multiple"],
            rows,
        )
    )
    print()
    print("Reading the table:")
    print(" * Closest keeps requests near the clients but stops finding solutions")
    print("   once the per-subtree demand exceeds a single server's capacity.")
    print(" * Upwards and Multiple keep working at higher load; Multiple matches")
    print("   the LP bound most closely, at the price of serving farther away.")


if __name__ == "__main__":
    main()
