"""Storage vs read vs update cost: ranking policies under richer objectives.

Paper Section 8.2 sketches objective functions beyond the storage cost: the
read (communication) cost of routing requests to their servers, and the
write (update) cost of propagating modifications over the subtree connecting
the replicas.  This example solves the same heterogeneous tree under the
three access policies and ranks the solutions under several weightings of

    alpha * storage  +  beta * read  +  gamma * write

showing how the preferred policy flips as reads or writes get more
expensive.

Run with::

    python examples/policy_tradeoff_study.py
"""

from __future__ import annotations

from repro import Policy, replica_cost_problem, solve
from repro.core.exceptions import InfeasibleError
from repro.experiments.reporting import ascii_table
from repro.objectives import CombinedObjective
from repro.workloads import generate_tree

WEIGHTINGS = (
    ("storage only", CombinedObjective(alpha=1.0, beta=0.0, gamma=0.0)),
    ("storage + reads", CombinedObjective(alpha=1.0, beta=0.5, gamma=0.0)),
    ("read heavy", CombinedObjective(alpha=0.2, beta=2.0, gamma=0.0)),
    ("update heavy", CombinedObjective(alpha=1.0, beta=0.2, gamma=5.0)),
)


def main() -> None:
    tree = generate_tree(size=70, target_load=0.35, homogeneous=False, seed=11)
    problem = replica_cost_problem(tree)
    print(f"Heterogeneous platform: {tree}")

    solutions = []
    for policy in Policy.ordered():
        try:
            solutions.append((policy.value, solve(problem, policy=policy)))
        except InfeasibleError:
            print(f"  ({policy.value}: no solution on this instance)")

    # Per-solution cost components.
    component_rows = []
    reference = CombinedObjective()
    for label, solution in solutions:
        parts = reference.components(problem, solution)
        component_rows.append(
            (
                label,
                solution.replica_count(),
                parts["storage"],
                parts["read"],
                parts["write"],
            )
        )
    print()
    print(
        ascii_table(
            ["policy", "replicas", "storage cost", "read cost", "write cost"],
            component_rows,
        )
    )

    # Ranking under each weighting.
    ranking_rows = []
    for label, objective in WEIGHTINGS:
        ranking = objective.rank(problem, solutions)
        ordered = " > ".join(f"{name} ({value:.0f})" for name, value in ranking)
        ranking_rows.append((label, ordered))
    print()
    print(ascii_table(["objective weighting", "best to worst"], ranking_rows))
    print()
    print("The ranking flips with the weighting: pure storage cost favours the")
    print("placement with the cheapest servers, a read-heavy objective favours the")
    print("policy that keeps requests closest to the clients on this instance, and")
    print("a high update weight penalises placements with many scattered replicas.")


if __name__ == "__main__":
    main()
