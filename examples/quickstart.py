"""Quickstart: build a tree, place replicas under the three access policies.

Run with::

    python examples/quickstart.py

The script builds a small content-distribution tree by hand, solves it under
the Closest, Upwards and Multiple access policies, compares the costs with
the LP-based lower bound and prints where the replicas end up.
"""

from __future__ import annotations

from repro import Policy, TreeBuilder, compare_policies, lower_bound, replica_counting_problem


def build_tree():
    """A tiny two-level distribution tree (homogeneous, W = 10)."""
    return (
        TreeBuilder()
        .add_node("root", capacity=10)
        .add_node("east", capacity=10, parent="root")
        .add_node("west", capacity=10, parent="root")
        .add_client("c_east_1", requests=6, parent="east")
        .add_client("c_east_2", requests=7, parent="east")
        .add_client("c_west_1", requests=4, parent="west")
        .add_client("c_root", requests=3, parent="root")
        .build()
    )


def main() -> None:
    tree = build_tree()
    problem = replica_counting_problem(tree)

    print(f"Platform: {tree}")
    print(f"Total requests: {tree.total_requests():g}, "
          f"total capacity: {tree.total_capacity():g}, "
          f"load factor lambda = {tree.load_factor():.2f}")
    print(f"LP lower bound on the number of replicas: {lower_bound(problem):g}")
    print()

    results = compare_policies(problem)
    for policy in Policy.ordered():
        solution = results[policy]
        if solution is None:
            print(f"{policy.value:>9}: no valid solution (the policy is too restrictive here)")
            continue
        placement = ", ".join(str(node) for node in solution.placement.sorted())
        print(
            f"{policy.value:>9}: {solution.replica_count()} replicas "
            f"({placement}) found by {solution.algorithm}"
        )
        for node_id in solution.placement.sorted():
            load = solution.assignment.server_load(node_id)
            print(f"{'':>11}- {node_id}: serving {load:g}/{problem.capacity(node_id):g} requests")
    print()
    print("The Multiple policy needs the fewest replicas: splitting a client's")
    print("requests over several ancestors makes every unit of capacity usable.")


if __name__ == "__main__":
    main()
