"""Quickstart: build a tree, place replicas under the three access policies.

Run with::

    python examples/quickstart.py

The script builds a small content-distribution tree by hand, solves it under
the Closest, Upwards and Multiple access policies, compares the costs with
the LP-based lower bound and prints where the replicas end up.  A "session
API" section walks the stateful ``PlacementSession`` (one object owning the
tree index, the LP program and the incremental solver state across epochs),
a "scaling up" section shows the batch API solving a whole sweep of random
instances in one call, an "engines" section tours the three interchangeable
request-state engines (dict / fast / compiled native) behind the factory,
a "dynamic workloads" section revises a placement
across a churning request-rate trajectory with the incremental re-solver,
a "traces" section ingests a timestamped request log, detects its epochs
and replays it through the same machinery,
an "LP bounds on sequences" section tracks the cost-vs-bound gap of
that revision epoch by epoch, and a "serving" section runs the multi-tenant
serving endpoint in-process -- start a server, connect a client, step
epochs with the SLA-aware re-solve, and read the pool statistics.
"""

from __future__ import annotations

from repro import (
    PlacementSession,
    Policy,
    TreeBuilder,
    bound_sequence,
    compare_policies,
    lower_bound,
    replica_counting_problem,
    solve_many,
    solve_sequence,
)


def build_tree():
    """A tiny two-level distribution tree (homogeneous, W = 10)."""
    return (
        TreeBuilder()
        .add_node("root", capacity=10)
        .add_node("east", capacity=10, parent="root")
        .add_node("west", capacity=10, parent="root")
        .add_client("c_east_1", requests=6, parent="east")
        .add_client("c_east_2", requests=7, parent="east")
        .add_client("c_west_1", requests=4, parent="west")
        .add_client("c_root", requests=3, parent="root")
        .build()
    )


def main() -> None:
    tree = build_tree()
    problem = replica_counting_problem(tree)

    print(f"Platform: {tree}")
    print(f"Total requests: {tree.total_requests():g}, "
          f"total capacity: {tree.total_capacity():g}, "
          f"load factor lambda = {tree.load_factor():.2f}")
    print(f"LP lower bound on the number of replicas: {lower_bound(problem):g}")
    print()

    results = compare_policies(problem)
    for policy in Policy.ordered():
        solution = results[policy]
        if solution is None:
            print(f"{policy.value:>9}: no valid solution (the policy is too restrictive here)")
            continue
        placement = ", ".join(str(node) for node in solution.placement.sorted())
        print(
            f"{policy.value:>9}: {solution.replica_count()} replicas "
            f"({placement}) found by {solution.algorithm}"
        )
        for node_id in solution.placement.sorted():
            load = solution.assignment.server_load(node_id)
            print(f"{'':>11}- {node_id}: serving {load:g}/{problem.capacity(node_id):g} requests")
    print()
    print("The Multiple policy needs the fewest replicas: splitting a client's")
    print("requests over several ancestors makes every unit of capacity usable.")
    print()
    session_api()
    print()
    scaling_up()
    print()
    engines()
    print()
    sharded_solving()
    print()
    dynamic_workloads()
    print()
    traces()
    print()
    lp_bounds_on_sequences()
    print()
    qos_classes()
    print()
    serving()


def session_api() -> None:
    """Session API: one stateful object, every cache warm across queries.

    ``PlacementSession`` is what a long-running service keeps per tree: the
    tree index, the LP bound program and the incremental solver state all
    live on the session, so a solve-then-bound never re-indexes or
    re-assembles anything, and ``update(requests=...)`` steps to the next
    epoch by *patching* the cached structures.  Every result implements the
    unified ``describe()`` / ``to_dict()`` / ``to_json()`` protocol (the
    CLI's ``--json`` output).
    """
    print("Session API: cache-owning solves on one stateful object")
    session = PlacementSession(replica_counting_problem(build_tree()))

    placed = session.solve()                  # portfolio solve (caches warm now)
    bound = session.bound()                   # same index, program now resident
    print(f"  solve: {placed.describe()}")
    print(f"  bound: {bound.describe()}  -> gap {placed.cost / bound.value:.3f}")

    comparison = session.compare(bounds=True)  # rides the warm caches
    print(f"  compare: {comparison.describe()}")

    # An epoch step: one client's demand surges.  The resolver re-solves
    # incrementally and the next bound() patches the resident LP program
    # (strategy 'patched') instead of re-assembling it.
    session.update(requests={"c_east_1": 9.0})
    rebound = session.bound()
    print(f"  after update(requests=...): {rebound.describe()}")
    print(f"  cache reuse: {session.stats.describe()}")
    print(f"  machine-readable: result.to_json() -> {len(placed.to_json())} bytes")


def scaling_up() -> None:
    """Scaling up: solve a whole load sweep in one batch call.

    ``solve_many`` is the campaign workhorse: it accepts any iterable of
    trees or problems, preserves input order, maps infeasible instances to
    ``None`` (the paper's success-rate accounting) and, with ``workers=N``,
    fans the batch out over a process pool with per-worker chunking.  Every
    solve runs on the indexed flat-tree engine, which is cross-validated
    bit-for-bit against the paper-faithful implementation.
    """
    from repro.workloads.generator import generate_tree

    print("Scaling up: a miniature campaign through the batch API")
    loads = (0.2, 0.4, 0.6, 0.8)
    trees = [
        generate_tree(size=60, target_load=load, homogeneous=True, seed=seed)
        for seed in range(2)
        for load in loads
    ]
    problems = [replica_counting_problem(tree) for tree in trees]
    # workers=2 forks a small process pool; workers=None solves in-process.
    solutions = solve_many(problems, policy=Policy.MULTIPLE, workers=2)
    for (tree, problem), solution in zip(zip(trees, problems), solutions):
        label = f"lambda={tree.load_factor():.1f} size={len(tree)}"
        if solution is None:
            print(f"  {label}: no solution under Multiple")
        else:
            print(f"  {label}: {solution.summary(problem)}")


def engines() -> None:
    """Engines: three interchangeable state implementations, one factory.

    Every solve mutates a request-affectation state behind
    ``make_state``: the paper-faithful ``dict`` engine, the indexed
    ``fast`` engine (the default) and the compiled ``native`` engine,
    whose hot loops run in a small C kernel library built on first use
    with the system compiler (~2.5x over ``fast``, ~6x over ``dict`` on
    500-node trees).  Pick one per process with ``REPRO_ENGINE=native``,
    per call with ``engine="native"``, or per block with
    ``use_engine("native")``; all three engines are cross-validated
    bit-for-bit, and ``native`` quietly degrades to ``fast`` on hosts
    without a C compiler, so the selection is always safe.  ``repro
    doctor`` prints this report from the command line.
    """
    from repro.algorithms.common import available_engines, make_state, use_engine
    from repro.algorithms.native_state import native_kernels_available

    print("Engines: dict (paper-faithful), fast (indexed), native (compiled)")
    print(f"  available_engines() -> {available_engines()}")
    problem = replica_counting_problem(build_tree())
    for engine in available_engines():
        with use_engine(engine):
            state = make_state(problem)
        print(f"  engine={engine!r}: state is a {type(state).__name__}")
    if native_kernels_available():
        print("  native kernels: compiled (REPRO_ENGINE=native gets the C path)")
    else:
        print("  native kernels: unavailable here; engine='native' runs as fast")


def sharded_solving() -> None:
    """Sharded solving: partition, per-shard solve, cut reconciliation.

    Past ~10^4 clients the whole-tree pass is the wall.  ``shards=N`` cuts
    the tree at an antichain of high-level nodes, solves each subtree as an
    independent problem on an index *sliced* from its contiguous DFS span
    (the whole-tree index is never built), reconciles any overflow at the
    cut, and stitches a globally validated solution.  Inside a session the
    partition persists: a rate change confined to one shard re-solves only
    that shard, which is what ``repro dynamic --trajectory regional
    --shards N`` exploits on whole-subtree surges.
    """
    from repro import ReplicaPlacementProblem
    from repro.core.partition import partition_problem
    from repro.workloads.generator import large_tree

    print("Sharded solving: partition -> per-shard solve -> stitch")
    # large_tree() scales the generator to 10^5-client instances; a modest
    # size keeps this walkthrough quick.
    tree = large_tree(2_000, seed=7, target_load=0.4, homogeneous=False)
    problem = ReplicaPlacementProblem(tree=tree)
    plan = partition_problem(problem, shards=4)
    print(f"  {plan.describe()}")

    session = PlacementSession(problem, shards=4)
    first = session.solve()
    print(f"  first solve: {first.solution.algorithm} cost={first.cost:g}")

    # A single-client rate change inside shard 0 re-solves only shard 0;
    # every other region reports "reused".
    client_id = plan.shards[0].clients[0]
    old_rate = problem.tree.client(client_id).requests
    update = session.update(requests={client_id: old_rate + 2.0})
    strategies = update.solution.metadata["shard_strategies"]
    print(f"  after one rate change: regions {strategies}")
    print(f"  (the whole-tree index was never built: "
          f"{problem.tree._index_cache is None})")


def dynamic_workloads() -> None:
    """Dynamic workloads: revise a placement across shifting request rates.

    ``solve_sequence`` consumes a trajectory of epochs (here: random rate
    churn from :mod:`repro.workloads.dynamic`) and warm-starts each epoch
    from the previous one: unchanged epochs are reused outright, everything
    else is re-solved on patched tree indexes.  The default ``incremental``
    mode is cost-identical to solving every epoch from scratch; ``patch``
    mode keeps the placement frozen and re-routes only the changed clients,
    minimising migrations at a possible cost premium.
    """
    from repro.workloads.dynamic import rate_churn
    from repro.workloads.generator import generate_tree

    print("Dynamic workloads: incremental re-solving under rate churn")
    tree = generate_tree(size=60, target_load=0.5, homogeneous=True, seed=7)
    base = replica_counting_problem(tree)
    epochs = rate_churn(base, 10, churn=0.15, quiet_probability=0.3, seed=7)

    for mode in ("incremental", "patch"):
        result = solve_sequence(epochs, policy=Policy.MULTIPLE, mode=mode)
        print(f"  {mode:>11}: {result.describe()}")
    print("  (incremental = cheapest cost-identical revision; patch = fewest migrations)")


def traces() -> None:
    """Trace-driven workloads: ingest a request log, detect epochs, replay.

    The synthetic trajectories above fabricate epoch rates; this closes
    the loop with **real request logs**.  A CSV/JSONL log (gzip welcome)
    ingests into a ``Trace``; ``detect_epochs`` places epoch boundaries
    where the traffic actually shifts and estimates per-client rates; the
    resulting ``TraceEpochs`` model emits the same structure-shared
    problem sequence ``solve_sequence`` already consumes, and its
    estimated intensity drives the open-loop load harness.  From the
    shell: ``repro trace info LOG``, ``repro dynamic TREE --trace LOG``
    and ``repro loadtest --trace LOG``.
    """
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.serving.server import ReproServer
    from repro.serving.loadgen import LoadgenConfig, run_loadtest
    from repro.workloads.dynamic import as_base_problem
    from repro.workloads.traces import detect_epochs, load_trace, sample_trace

    print("Trace-driven workloads: ingest -> detect -> replay -> loadtest")
    tree = build_tree()
    base = as_base_problem(replica_counting_problem(tree))
    # Fake a production log: calm traffic, then a surge -- in real use this
    # is your access log, one `timestamp,client[,weight]` row per request.
    surge = base.tree.with_requests(
        {c: base.tree.client(c).requests * 18 for c in base.tree.client_ids}
    )
    calm = base.tree.with_requests(
        {c: base.tree.client(c).requests * 15 for c in base.tree.client_ids}
    )
    log = sample_trace(
        [as_base_problem(calm), as_base_problem(surge)],
        np.random.default_rng(7),
        epoch_duration=30.0,
    )
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "requests.jsonl.gz"
        log.to_jsonl(path)  # gzip-transparent on both ends

        trace = load_trace(path)  # repro trace info requests.jsonl.gz
        model = detect_epochs(trace)
        print(f"  ingest: {trace!r}")
        print(f"  epochs: {model.summary(path=path.name).describe()}")

        # repro dynamic TREE --trace requests.jsonl.gz
        epochs = model.problems(base, rate_scale=1.0 / 15.0)
        replayed = solve_sequence(epochs, policy=Policy.MULTIPLE)
        print(f"  replay: {replayed.describe()}")

        # repro loadtest --trace requests.jsonl.gz: the trace's detected
        # intensity (rescaled to the configured horizon and mean rate)
        # replaces the sinusoid as the arrival schedule.
        config = LoadgenConfig(tenants=2, size=16, horizon=0.5, rate=40.0)
        arrivals = model.arrival_schedule(
            np.random.default_rng(config.seed),
            horizon=config.horizon,
            mean_rate=config.rate,
        )
        report = run_loadtest(ReproServer(capacity=4), config, arrivals=arrivals)
        print(f"  loadtest: {report.describe()}")


def lp_bounds_on_sequences() -> None:
    """LP bounds on sequences: track cost-vs-bound gaps across epochs.

    ``bound_sequence`` is the LP-side companion of ``solve_sequence``: it
    computes the paper's refined lower bound (integer placement, rational
    assignment) for every epoch of a trajectory, reusing the bound of
    unchanged epochs outright and re-targeting the cached constraint matrix
    via ``LinearProgramData.with_requests`` when only request rates moved --
    the program is never re-assembled for rate-only churn.  Pairing the two
    results turns the optimality gap into a per-epoch series, cheap enough
    to monitor on every trajectory instead of a sampled few.
    """
    from repro.workloads.dynamic import rate_churn
    from repro.workloads.generator import generate_tree

    print("LP bounds on sequences: per-epoch cost-vs-bound gaps under churn")
    tree = generate_tree(size=60, target_load=0.5, homogeneous=True, seed=7)
    base = replica_counting_problem(tree)
    epochs = rate_churn(base, 10, churn=0.15, quiet_probability=0.3, seed=7)

    solved = solve_sequence(epochs, policy=Policy.MULTIPLE)
    bounds = bound_sequence(epochs, policy=Policy.MULTIPLE)
    print(f"  solve: {solved.describe()}")
    print(f"  bound: {bounds.describe()}")
    for epoch, gap in enumerate(bounds.gaps(solved.costs)):
        cost = solved.costs[epoch]
        bound = bounds.values[epoch]
        label = f"gap {gap:.3f}" if gap is not None else "no gap"
        print(f"    epoch {epoch}: cost {cost:g} vs bound {bound:g} ({label})")
    print("  (a gap of 1.000 means the heuristic provably matched the optimum)")


def qos_classes() -> None:
    """QoS classes: multi-metric links, tenant classes, the IPFP bound.

    Links can carry a full ``QoSMetrics`` annotation (latency, jitter,
    loss, bandwidth); ``ClassedConstraintSet`` groups clients into
    gold/silver/bronze service classes whose weighted **path score**
    replaces the single-metric QoS bound (monotone classes ride the same
    memoised threshold machinery as distance/latency QoS, on all three
    engines).  ``bound(method="ipfp")`` is the matching fast fractional
    lower bound -- iterative proportional fitting over the client x
    server pair arrays, re-targetable across epochs without touching a
    simplex.  From the shell: ``repro generate --metrics`` and ``repro
    solve --bounds --bound-method ipfp``.
    """
    from dataclasses import replace

    from repro.core.constraints import ClassedConstraintSet
    from repro.core.problem import replica_cost_problem
    from repro.core.tree import TreeNetwork
    from repro.qos.metrics import annotate_tree, split_by_class
    from repro.workloads.generator import generate_tree

    print("QoS classes: multi-metric links, service classes, the IPFP bound")
    tree = annotate_tree(
        generate_tree(size=60, target_load=0.3, homogeneous=False, seed=11),
        seed=11,
    )
    constraints = ClassedConstraintSet.standard(tree, seed=11)
    mix = ", ".join(
        f"{name}: {sum(1 for _, n in constraints.assignments if n == name)}"
        for name in (cls.name for cls in constraints.classes)
    )
    print(f"  classes: {mix} (assigned by {type(constraints).__name__}.standard)")

    # Give every client a score budget of 90% of its own root-path score:
    # nearby servers stay eligible, the farthest ancestors drop out.
    budgets = {
        client.id: 0.9
        * max(s for _, s in constraints.iter_ancestor_scores(tree, client.id))
        for client in tree.clients()
    }
    clients = [
        replace(c, qos=budgets[c.id]) if budgets[c.id] > 0 else c
        for c in tree.clients()
    ]
    tree = TreeNetwork(list(tree.nodes()), clients, list(tree.links()))
    # Replica Cost keeps the heterogeneous capacities (s_j = W_j).
    problem = replica_cost_problem(tree, constraints=constraints)

    session = PlacementSession(problem)
    placed = session.solve()
    ipfp = session.bound(method="ipfp")
    mixed = session.bound(method="mixed")
    print(f"  joint solve: {placed.describe()}")
    print(
        f"  bounds: ipfp {ipfp.result.value:g} <= mixed {mixed.result.value:g}"
        f" <= cost {placed.cost:g}"
        f" (ipfp gap {placed.cost / ipfp.result.value:.3f})"
    )

    # Carving each class into its own sub-problem (reserved bandwidth
    # share, provisioned gold headroom) prices per-class isolation: the
    # summed per-class costs over-provision relative to the joint solve.
    carved = split_by_class(
        problem, dict(constraints.assignments), constraints.classes
    )
    total = 0.0
    for name, sub in carved.items():
        solution = PlacementSession(sub).solve()
        total += solution.cost
        print(f"    class {name}: cost {solution.cost:g}")
    print(
        f"  isolation price: sum {total:g} vs joint {placed.cost:g} "
        f"({total / placed.cost:.2f}x)"
    )


def serving() -> None:
    """Serving: resident sessions behind the JSON protocol.

    ``repro serve`` runs this over stdio, HTTP or a selectors loop
    (``--loop`` / ``--tcp HOST:PORT``) for real deployments; the
    walkthrough drives the identical protocol stack in-process.  Every
    reply is a standard result payload, so ``connect()`` hands back the
    same ``SolveResult``/``BoundResult`` objects a local session returns --
    bit-identical, in fact, which is what the serving test suite pins.
    """
    import tempfile

    from repro import connect
    from repro.serving import render_prometheus
    from repro.serving.server import ReproServer

    print("Serving: a multi-tenant session pool behind the JSON protocol")
    with tempfile.TemporaryDirectory() as snapshots:
        # repro serve --stdio --pool-capacity 8 --snapshot-dir <dir>
        server = ReproServer(capacity=8, snapshot_dir=snapshots)
        client = connect(server)  # or connect("http://host:port")

        session = client.open(replica_counting_problem(build_tree()))
        placed = session.solve()
        bound = session.bound()
        print(f"  solve: {placed.describe()}")
        print(f"  bound: {bound.describe()}")

        # Epoch steps run server-side; "on_saturation" keeps the placement
        # frozen while the replayed epoch stays clean (SLA-aware re-solve).
        drifted = session.update(
            requests={"c_east_1": 5.0}, resolve="on_saturation"
        )
        print(f"  drift epoch: {drifted.describe()}")

        surged = session.update(
            requests={"c_east_1": 8.0, "c_east_2": 8.0},
            resolve="on_saturation",
        )
        print(f"  surge epoch: {surged.describe()}")

        # A batch envelope ships a whole trajectory in one round trip:
        # the first item addresses the session, later items inherit it
        # (one pool checkout for the run), and per-item errors come back
        # in place without poisoning their neighbours.
        trajectory = client.batch(
            [
                {"op": "solve", "fingerprint": session.fingerprint},
                {"op": "update", "params": {"requests": {"c_west_1": 6.0}}},
                {"op": "bound"},
            ]
        )
        print(f"  batch: {len(trajectory)} replies in one envelope")

        print(f"  pool: {client.stats().describe()}")
        # The same counters back GET /metrics (Prometheus 0.0.4 text);
        # `repro loadtest` drives open-loop Poisson arrivals against any
        # endpoint and reports p50/p99 latency and requests/sec.
        exposition = render_prometheus(server.pool.stats())
        served = [
            line for line in exposition.splitlines()
            if line.startswith("repro_requests_total")
        ]
        print("  metrics: " + "; ".join(served))

        # With --snapshot-dir, sessions persist across restarts: a reborn
        # server answers the same queries warm from the snapshot files.
        server.snapshot_all()
        reborn = ReproServer(capacity=8, snapshot_dir=snapshots)
        print(f"  after restart: restored {reborn.restored} warm session(s)")


if __name__ == "__main__":
    main()
