"""Heterogeneous ISP hierarchy with QoS bounds.

An ISP-style hierarchy mixes machine generations: a powerful core router, a
few regional points of presence (PoPs) and many small edge servers.  End
users (clients) come with a QoS requirement expressed as a maximum number of
hops to their serving replica.

The example shows how the package handles heterogeneity and QoS together:

1. a QoS feasibility pre-check (is any client impossible to serve at all?),
2. placements under the three policies, with and without QoS,
3. the QoS statistics of the resulting placements.

Run with::

    python examples/isp_hierarchy.py
"""

from __future__ import annotations

from repro import Policy, TreeBuilder, replica_cost_problem, solve
from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.experiments.reporting import ascii_table
from repro.qos import qos_feasibility_report, qos_statistics


def build_isp_tree():
    """Core (W=400) -> 3 PoPs (W=120) -> 6 edges (W=40), QoS-bounded users."""
    builder = TreeBuilder().add_node("core", capacity=400)
    edge_index = 0
    for pop in range(3):
        pop_name = f"pop{pop}"
        builder.add_node(pop_name, capacity=120, parent="core")
        for _ in range(2):
            edge_name = f"edge{edge_index}"
            builder.add_node(edge_name, capacity=40, parent=pop_name)
            # Two user aggregates per edge server: one latency-sensitive
            # (must be served by the edge server itself, 1 hop), one relaxed.
            builder.add_client(
                f"gamers{edge_index}", requests=30, parent=edge_name, qos=1
            )
            builder.add_client(
                f"browsers{edge_index}", requests=25, parent=edge_name, qos=3
            )
            edge_index += 1
    return builder.build()


def solve_all(problem, label):
    rows = []
    for policy in Policy.ordered():
        try:
            solution = solve(problem, policy=policy)
        except InfeasibleError:
            rows.append((label, policy.value, "infeasible", "-", "-"))
            continue
        stats = qos_statistics(problem, solution)
        rows.append(
            (
                label,
                policy.value,
                f"{solution.cost(problem):g}",
                f"{solution.replica_count()}",
                f"{stats['mean_metric']:.2f} (max {stats['max_metric']:.0f})",
            )
        )
    return rows


def main() -> None:
    tree = build_isp_tree()
    print(f"ISP hierarchy: {tree}")

    relaxed = replica_cost_problem(tree)
    qos_aware = replica_cost_problem(tree, constraints=ConstraintSet.qos_distance())

    report = qos_feasibility_report(qos_aware)
    print(
        "QoS pre-check: "
        + ("feasible" if report.feasible else f"unreachable clients {report.unreachable_clients}")
        + (f"; tight clients: {report.tight_clients}" if report.tight_clients else "")
    )
    print()

    rows = solve_all(relaxed, "no QoS") + solve_all(qos_aware, "QoS <= q_i hops")
    print(
        ascii_table(
            ["constraints", "policy", "storage cost", "replicas", "mean hops to server"],
            rows,
        )
    )
    print()
    print("Without QoS, cheap placements on the PoPs are enough.  Enforcing the")
    print("1-hop bound of the latency-sensitive users pins replicas onto the edge")
    print("servers; the Closest policy then overloads them (edge demand exceeds an")
    print("edge server's capacity) and stops admitting a solution, while Upwards")
    print("and Multiple keep the gamers on the edge and push the browsers upwards.")


if __name__ == "__main__":
    main()
