"""Session-oriented public API: :class:`PlacementSession`.

The free functions of :mod:`repro.api` are stateless: every call rebuilds
the tree index, the LP variable layout and the constraint program from
scratch.  A :class:`PlacementSession` is the stateful counterpart a
long-running service wants: construct it **once** from a tree or problem
and it owns every cache the fast layers provide --

* the :class:`~repro.core.index.TreeIndex` of the tree (built on first use,
  shared by every subsequent solve, bound and simulation);
* one :class:`~repro.algorithms.incremental.IncrementalResolver` per
  ``(policy, algorithm)`` pair, so epoch updates re-solve incrementally;
* one :class:`~repro.algorithms.incremental.IncrementalBounder` per
  ``(policy, method, time_limit)`` triple, keeping the assembled
  :class:`~repro.lp.formulation.LinearProgramData` resident across epochs
  and re-targeting it via
  :meth:`~repro.lp.formulation.LinearProgramData.with_requests` when only
  request rates moved;
* the per-epoch results themselves, so repeating a query within an epoch
  costs a dictionary lookup.

A solve-then-bound on the same session never re-indexes the tree or
re-assembles the program; a rate-only :meth:`~PlacementSession.update`
patches the cached structures instead of rebuilding them
(``benchmarks/test_session_reuse.py`` pins both with identity checks and a
wall-clock floor).  The free functions of :mod:`repro.api` are thin shims
over a throwaway session and remain bit-identical to direct session calls
(``tests/test_session_api.py``).

Usage
-----

>>> from repro import PlacementSession                      # doctest: +SKIP
>>> session = PlacementSession(tree, policy="multiple")     # doctest: +SKIP
>>> placed = session.solve()          # portfolio solve, caches warm now
>>> bound = session.bound()           # same index, fresh program, cached
>>> gap = placed.cost / bound.value   # cost-vs-LP-bound gap
>>> session.update(requests={"c1": 9.0})  # epoch step, incremental re-solve
>>> session.bound()                   # program *patched*, not rebuilt
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.results import ResultBase, decode_float, encode_float, register_result
from repro.core.solution import Solution
from repro.core.tree import NodeId, TreeNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.incremental import (
        BoundStats,
        IncrementalBounder,
        IncrementalResolver,
        ResolveStats,
    )
    from repro.lp.bounds import LowerBoundResult
    from repro.lp.formulation import LinearProgramData
    from repro.simulation.request_flow import FlowSimulation

__all__ = [
    "PlacementSession",
    "SessionStats",
    "SolveResult",
    "BoundResult",
    "CompareResult",
    "as_problem",
]

#: session mode -> IncrementalResolver mode.
SESSION_MODES = {"incremental": "exact", "patch": "patch", "scratch": "scratch"}

#: accepted ``resolve=`` values of :meth:`PlacementSession.update`
#: (booleans keep the historical always/never semantics).
RESOLVE_MODES = (True, False, "always", "on_saturation")

#: lower-bound methods the session accepts (``"trivial"`` needs no LP;
#: ``"ipfp"`` is the scaling-based Lagrangian bound of :mod:`repro.lp.ipfp`).
BOUND_METHODS = ("mixed", "rational", "trivial", "ipfp")


def as_problem(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
) -> ReplicaPlacementProblem:
    """Coerce a tree or problem into a :class:`ReplicaPlacementProblem`."""
    if isinstance(instance, ReplicaPlacementProblem):
        problem = instance
        if constraints is not None:
            problem = problem.with_constraints(constraints)
        if kind is not None:
            problem = problem.with_kind(kind)
        return problem
    return ReplicaPlacementProblem(
        tree=instance,
        constraints=constraints or ConstraintSet.none(),
        kind=kind or ProblemKind.REPLICA_COST,
    )


# --------------------------------------------------------------------------- #
# result wrappers
# --------------------------------------------------------------------------- #
@register_result
@dataclass
class SolveResult(ResultBase):
    """One epoch solve of a session (the :class:`Solution` wrapper).

    ``solution`` is ``None`` when the epoch is infeasible and the call was
    made with ``on_error="none"`` (session updates and sequence shims);
    ``stats`` carries the resolver's strategy and migration bookkeeping.
    """

    payload_type = "solve_result"

    epoch: int
    policy: Policy
    solution: Optional[Solution]
    cost: Optional[float]
    stats: "ResolveStats"
    #: the problem the solve ran on; not serialised (trees round-trip
    #: separately through :mod:`repro.core.serialization`).
    problem: Optional[ReplicaPlacementProblem] = field(
        default=None, repr=False, compare=False
    )

    @property
    def feasible(self) -> bool:
        """Whether the epoch admitted a valid solution."""
        return self.solution is not None

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        if self.solution is None:
            return (
                f"epoch {self.epoch}: no valid solution under the "
                f"{self.policy.value} policy"
            )
        return (
            f"epoch {self.epoch}: [{self.solution.algorithm}] "
            f"policy={self.policy.value} "
            f"replicas={self.solution.replica_count()} cost={self.cost:g} "
            f"[{self.stats.strategy}]"
        )

    def to_dict(self) -> Dict[str, Any]:
        from repro.core.serialization import solution_to_dict

        return self._tagged(
            {
                "epoch": self.epoch,
                "policy": self.policy.value,
                "feasible": self.feasible,
                "cost": encode_float(self.cost),
                "solution": (
                    solution_to_dict(self.solution) if self.solution else None
                ),
                "stats": self.stats.to_dict(),
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveResult":
        from repro.algorithms.incremental import ResolveStats
        from repro.core.serialization import solution_from_dict

        solution = payload.get("solution")
        return cls(
            epoch=int(payload["epoch"]),
            policy=Policy.parse(payload["policy"]),
            solution=solution_from_dict(solution) if solution else None,
            cost=decode_float(payload.get("cost")),
            stats=ResolveStats.from_dict(payload["stats"]),
        )


@register_result
@dataclass
class BoundResult(ResultBase):
    """One epoch LP lower bound of a session."""

    payload_type = "bound_result"

    epoch: int
    policy: Policy
    method: str
    result: "LowerBoundResult"
    stats: "BoundStats"

    @property
    def value(self) -> float:
        """The bound (``math.inf`` when the formulation is infeasible)."""
        return self.result.value

    @property
    def feasible(self) -> bool:
        """Whether the relaxed formulation admits a solution."""
        return self.result.feasible

    def gap(self, cost: Optional[float]) -> Optional[float]:
        """Relative cost-vs-bound gap ``cost / value`` (``None`` if undefined)."""
        if cost is None or not self.feasible or self.value <= 0:
            return None
        return cost / self.value

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        value = "infeasible" if not self.feasible else f"{self.value:g}"
        return (
            f"epoch {self.epoch}: bound {value} "
            f"(method={self.method}, policy={self.policy.value}) "
            f"[{self.stats.strategy}]"
        )

    def to_dict(self) -> Dict[str, Any]:
        return self._tagged(
            {
                "epoch": self.epoch,
                "policy": self.policy.value,
                "method": self.method,
                "result": self.result.to_dict(),
                "stats": self.stats.to_dict(),
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BoundResult":
        from repro.algorithms.incremental import BoundStats
        from repro.lp.bounds import LowerBoundResult

        return cls(
            epoch=int(payload["epoch"]),
            policy=Policy.parse(payload["policy"]),
            method=str(payload["method"]),
            result=LowerBoundResult.from_dict(payload["result"]),
            stats=BoundStats.from_dict(payload["stats"]),
        )


@register_result
class CompareResult(ResultBase, Mapping):
    """Side-by-side solves of one instance under several policies.

    Behaves as the mapping ``policy -> Optional[Solution]`` the legacy
    :func:`repro.api.compare_policies` returned (indexing, iteration and
    ``items()`` all work, and string policy names are accepted as keys), and
    additionally carries per-policy costs plus -- when requested with
    ``bounds=True`` -- the LP lower bound and per-policy cost-vs-bound gaps.
    """

    payload_type = "compare_result"

    def __init__(
        self,
        *,
        epoch: int,
        solutions: Dict[Policy, Optional[Solution]],
        costs: Dict[Policy, Optional[float]],
        bound: Optional["LowerBoundResult"] = None,
    ) -> None:
        self.epoch = epoch
        self.solutions = solutions
        self.costs = costs
        self.bound = bound

    # ------------------------------------------------------------------ #
    # mapping protocol (legacy compare_policies compatibility)
    # ------------------------------------------------------------------ #
    def __getitem__(self, policy: Union[Policy, str]) -> Optional[Solution]:
        try:
            key = Policy.parse(policy)
        except ValueError:
            # Mapping semantics: unknown keys are missing keys, so get()
            # returns its default and `in` returns False instead of raising.
            raise KeyError(policy) from None
        return self.solutions[key]

    def __iter__(self) -> Iterator[Policy]:
        return iter(self.solutions)

    def __len__(self) -> int:
        return len(self.solutions)

    # ------------------------------------------------------------------ #
    def gaps(self) -> Dict[Policy, Optional[float]]:
        """Per-policy cost-vs-LP-bound gaps (``{}`` without ``bounds=True``).

        The bound comes from the Multiple relaxation (a valid lower bound
        for every policy); a policy without a solution, or a non-positive /
        infeasible bound, maps to ``None``.
        """
        if self.bound is None:
            return {}
        value = self.bound.value
        usable = self.bound.feasible and value > 0
        return {
            policy: (cost / value if usable and cost is not None else None)
            for policy, cost in self.costs.items()
        }

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        parts = []
        gaps = self.gaps()
        for policy, solution in self.solutions.items():
            if solution is None:
                parts.append(f"{policy.value}: no solution")
                continue
            entry = f"{policy.value}: cost {self.costs[policy]:g}"
            gap = gaps.get(policy)
            if gap is not None:
                entry += f" (gap {gap:.3f})"
            parts.append(entry)
        summary = "; ".join(parts)
        if self.bound is not None and self.bound.feasible:
            summary += f" | LP bound {self.bound.value:g}"
        return summary

    def to_dict(self) -> Dict[str, Any]:
        from repro.core.serialization import solution_to_dict

        gaps = self.gaps()
        return self._tagged(
            {
                "epoch": self.epoch,
                "policies": [policy.value for policy in self.solutions],
                "results": {
                    policy.value: {
                        "feasible": solution is not None,
                        "cost": encode_float(self.costs[policy]),
                        "gap": encode_float(gaps.get(policy)),
                        "solution": (
                            solution_to_dict(solution) if solution else None
                        ),
                    }
                    for policy, solution in self.solutions.items()
                },
                "bound": self.bound.to_dict() if self.bound else None,
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CompareResult":
        from repro.core.serialization import solution_from_dict
        from repro.lp.bounds import LowerBoundResult

        solutions: Dict[Policy, Optional[Solution]] = {}
        costs: Dict[Policy, Optional[float]] = {}
        for name in payload["policies"]:
            policy = Policy.parse(name)
            entry = payload["results"][name]
            encoded = entry.get("solution")
            solutions[policy] = solution_from_dict(encoded) if encoded else None
            costs[policy] = decode_float(entry.get("cost"))
        bound = payload.get("bound")
        return cls(
            epoch=int(payload.get("epoch", 0)),
            solutions=solutions,
            costs=costs,
            bound=LowerBoundResult.from_dict(bound) if bound else None,
        )

    def __repr__(self) -> str:
        return f"CompareResult({self.describe()})"


# --------------------------------------------------------------------------- #
# cache accounting
# --------------------------------------------------------------------------- #
@dataclass
class SessionStats:
    """Cache-reuse counters of one session (what the benchmarks assert on).

    ``solves``/``bounds`` count the resolver/bounder invocations that
    actually ran; ``*_cache_hits`` count queries answered from the per-epoch
    result cache without touching the solvers at all.  The strategy
    counters split the invocations by how much work they really did
    (``reused`` = previous epoch's answer returned outright, ``patched`` =
    cached structure re-targeted, ``solved``/``built`` = full work).
    """

    epochs: int = 0
    solves: int = 0
    solve_cache_hits: int = 0
    solve_strategies: Dict[str, int] = field(default_factory=dict)
    bounds: int = 0
    bound_cache_hits: int = 0
    bound_strategies: Dict[str, int] = field(default_factory=dict)

    def _tally(self, counters: Dict[str, int], strategy: str) -> None:
        counters[strategy] = counters.get(strategy, 0) + 1

    def to_dict(self) -> Dict[str, int]:
        """JSON-compatible payload (session snapshots persist these)."""
        return {
            "epochs": self.epochs,
            "solves": self.solves,
            "solve_cache_hits": self.solve_cache_hits,
            "solve_strategies": dict(self.solve_strategies),
            "bounds": self.bounds,
            "bound_cache_hits": self.bound_cache_hits,
            "bound_strategies": dict(self.bound_strategies),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionStats":
        """Rebuild counters from a :meth:`to_dict` payload."""
        return cls(
            epochs=int(payload.get("epochs", 0)),
            solves=int(payload.get("solves", 0)),
            solve_cache_hits=int(payload.get("solve_cache_hits", 0)),
            solve_strategies={
                str(k): int(v)
                for k, v in payload.get("solve_strategies", {}).items()
            },
            bounds=int(payload.get("bounds", 0)),
            bound_cache_hits=int(payload.get("bound_cache_hits", 0)),
            bound_strategies={
                str(k): int(v)
                for k, v in payload.get("bound_strategies", {}).items()
            },
        )

    def describe(self) -> str:
        """One-line cache-reuse summary."""
        solve = ", ".join(
            f"{count} {name}" for name, count in sorted(self.solve_strategies.items())
        )
        bound = ", ".join(
            f"{count} {name}" for name, count in sorted(self.bound_strategies.items())
        )
        return (
            f"{self.epochs + 1} epochs: {self.solves} solves ({solve or 'none'}, "
            f"{self.solve_cache_hits} cache hits), {self.bounds} bounds "
            f"({bound or 'none'}, {self.bound_cache_hits} cache hits)"
        )


# --------------------------------------------------------------------------- #
# the session
# --------------------------------------------------------------------------- #
class PlacementSession:
    """Stateful, cache-owning entry point for repeated placement queries.

    Parameters
    ----------
    instance:
        A :class:`~repro.core.tree.TreeNetwork` or a fully-specified
        :class:`~repro.core.problem.ReplicaPlacementProblem` (epoch 0).
    constraints, kind:
        Optional coercion overrides, applied to the initial instance *and*
        to every epoch passed to :meth:`update` -- the same convention as
        the free functions.
    policy, algorithm:
        Defaults used by :meth:`solve` / :meth:`update` when no explicit
        policy is given.  ``algorithm`` applies only together with the
        default policy (an explicit ``solve(policy=...)`` with no algorithm
        runs that policy's portfolio, like :func:`repro.api.solve`).
    mode:
        Epoch re-solve strategy: ``"incremental"`` (default, cost-identical
        to from-scratch), ``"patch"`` (placement stability first) or
        ``"scratch"`` (no warm starts; also disables bound patching --
        the baseline the other modes are validated against).
    engine:
        Optional request-state engine override -- any name from
        :func:`repro.algorithms.common.available_engines` (``"dict"``,
        ``"fast"`` or the compiled ``"native"``) -- applied around every
        internal solve.
    shards:
        Optional sharded-solve specification: a target shard count or an
        explicit cut node sequence (see
        :func:`repro.core.partition.partition_problem`).  A sharded session
        partitions the tree lazily, indexes each shard through
        :meth:`TreeIndex.sliced` (the whole-tree dense index is never
        built), keeps one :class:`IncrementalResolver` per shard, and on a
        rate-only :meth:`update` re-solves **only** the shards owning the
        changed clients.  ``shards=1`` (or ``None``) is the classic
        whole-tree path, bit-identical to an unsharded session.
    """

    def __init__(
        self,
        instance: Union[TreeNetwork, ReplicaPlacementProblem],
        *,
        constraints: Optional[ConstraintSet] = None,
        kind: Optional[ProblemKind] = None,
        policy: Union[Policy, str] = Policy.MULTIPLE,
        algorithm: Optional[str] = None,
        mode: str = "incremental",
        engine: Optional[str] = None,
        shards: Optional[Union[int, Iterable[NodeId]]] = None,
    ) -> None:
        if mode not in SESSION_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {sorted(SESSION_MODES)}"
            )
        if shards is not None and not isinstance(shards, int):
            shards = tuple(shards)
        if isinstance(shards, int) and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._constraints = constraints
        self._kind = kind
        self.problem = as_problem(instance, constraints=constraints, kind=kind)
        self.policy = Policy.parse(policy)
        self.algorithm = algorithm
        self.mode = mode
        self.engine = engine
        self.shards = shards
        self.epoch = 0
        self.stats = SessionStats()

        self._resolvers: Dict[Tuple[Policy, Optional[str]], "IncrementalResolver"] = {}
        self._bounders: Dict[
            Tuple[Policy, str, Optional[float]], "IncrementalBounder"
        ] = {}
        #: per-epoch result caches, cleared by :meth:`update`.
        self._solve_cache: Dict[Tuple[Policy, Optional[str]], SolveResult] = {}
        self._bound_cache: Dict[Tuple[Policy, str, Optional[float]], BoundResult] = {}
        #: sharded-solve state, built lazily by :attr:`shard_plan`.
        self._shard_plan = None
        self._shard_problems: Optional[list] = None
        self._shard_resolvers: Dict[
            Tuple[int, Policy, Optional[str]], "IncrementalResolver"
        ] = {}
        self._shard_last: Dict[Tuple[Policy, Optional[str]], Solution] = {}

    # ------------------------------------------------------------------ #
    # cache handles
    # ------------------------------------------------------------------ #
    @property
    def tree(self) -> TreeNetwork:
        """The current epoch's tree."""
        return self.problem.tree

    @property
    def index(self):
        """The (cached) :class:`~repro.core.index.TreeIndex` of the tree."""
        from repro.core.index import TreeIndex

        return TreeIndex.for_tree(self.problem.tree)

    def program(
        self,
        *,
        policy: Union[Policy, str] = Policy.MULTIPLE,
        method: str = "mixed",
        time_limit: Optional[float] = None,
    ) -> Optional["LinearProgramData"]:
        """The resident bound program of a ``(policy, method)`` pair, if any.

        Introspection for tests and benchmarks: returns the
        :class:`~repro.lp.formulation.LinearProgramData` the matching
        :meth:`bound` calls keep warm, or ``None`` before the first call.
        """
        bounder = self._bounders.get((Policy.parse(policy), method, time_limit))
        return None if bounder is None else bounder._program

    def _engine_context(self):
        if not self.engine:
            return contextlib.nullcontext()
        from repro.algorithms.common import use_engine

        return use_engine(self.engine)

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        *,
        policy: Optional[Union[Policy, str]] = None,
        algorithm: Optional[str] = None,
        on_error: str = "raise",
        sharded: Optional[bool] = None,
    ) -> SolveResult:
        """Solve the current epoch (warm caches, per-epoch memoised).

        With no arguments the session's default policy/algorithm apply.
        ``on_error="raise"`` (default) raises
        :class:`~repro.core.exceptions.InfeasibleError` like
        :func:`repro.api.solve`; ``"none"`` returns a :class:`SolveResult`
        with ``solution=None`` instead (sequence semantics).

        ``sharded`` overrides the session's sharding default for this call:
        ``True`` forces the per-shard path (partitioning into the
        constructor's ``shards`` spec, or two shards when none was given),
        ``False`` forces the whole-tree path, ``None`` (default) follows
        the constructor.  Overridden calls are memoised separately.
        """
        if on_error not in ("none", "raise"):
            raise ValueError(f"on_error must be 'none' or 'raise', got {on_error!r}")
        if policy is None:
            policy, algorithm = self.policy, (
                algorithm if algorithm is not None else self.algorithm
            )
        else:
            policy = Policy.parse(policy)
        if sharded and self.shards is None:
            self.shards = 2
        use_sharded = self._sharded_active() if sharded is None else bool(sharded)
        use_sharded = use_sharded and self._sharded_active()

        key = (policy, algorithm) if sharded is None else (policy, algorithm, sharded)
        result = self._solve_cache.get(key)
        if result is not None:
            self.stats.solve_cache_hits += 1
        elif use_sharded:
            with self._engine_context():
                solution, stats = self._sharded_resolve(policy, algorithm)
            result = SolveResult(
                epoch=self.epoch,
                policy=policy,
                solution=solution,
                cost=stats.cost,
                stats=stats,
                problem=self.problem,
            )
            self._solve_cache[key] = result
            self.stats.solves += 1
            self.stats._tally(self.stats.solve_strategies, stats.strategy)
        else:
            from repro.algorithms.incremental import IncrementalResolver

            resolver = self._resolvers.get(key)
            if resolver is None:
                resolver = self._resolvers[key] = IncrementalResolver(
                    policy=policy, algorithm=algorithm, mode=SESSION_MODES[self.mode]
                )
            with self._engine_context():
                solution, stats = resolver.resolve(self.problem)
            result = SolveResult(
                epoch=self.epoch,
                policy=policy,
                solution=solution,
                cost=stats.cost,
                stats=stats,
                problem=self.problem,
            )
            self._solve_cache[key] = result
            self.stats.solves += 1
            self.stats._tally(self.stats.solve_strategies, stats.strategy)

        if result.solution is None and on_error == "raise":
            raise InfeasibleError(
                f"no valid solution found under the {policy.value} policy",
                policy=policy,
            )
        return result

    # ------------------------------------------------------------------ #
    # sharded solving
    # ------------------------------------------------------------------ #
    @property
    def shard_plan(self):
        """The session's lazy :class:`~repro.core.partition.ShardPlan`.

        ``None`` for unsharded sessions (``shards`` unset or ``1``).  Built
        from the *current* epoch's problem on first access and kept until a
        structural update invalidates it; building it primes per-shard
        :meth:`~repro.core.index.TreeIndex.sliced` indexes lazily (the
        whole-tree index is never constructed by the sharded path).
        """
        if self.shards is None or (isinstance(self.shards, int) and self.shards <= 1):
            return None
        if self._shard_plan is None:
            from repro.core.partition import partition_problem

            self._shard_plan = partition_problem(self.problem, shards=self.shards)
            self._shard_problems = list(self._shard_plan.region_problems())
        return self._shard_plan

    def _sharded_active(self) -> bool:
        plan = self.shard_plan
        return plan is not None and len(plan.shards) >= 2

    def _sharded_resolve(self, policy: Policy, algorithm: Optional[str]):
        """The per-shard incremental solve path of :meth:`solve`.

        Every region (the shards plus the residual tree) keeps its own
        :class:`~repro.algorithms.incremental.IncrementalResolver`, so a
        rate-only epoch step re-solves only the regions owning changed
        clients -- the rest report strategy ``"reused"``.  Region solutions
        compose directly (disjoint servers, no cut flow); when a region is
        infeasible on its own the full
        :func:`~repro.algorithms.sharded.solve_sharded` pipeline takes over
        and reconciles the overflow at the cut.
        """
        import time

        from repro.algorithms.incremental import (
            IncrementalResolver,
            ResolveStats,
            migration_stats,
        )
        from repro.algorithms.sharded import (
            _empty_solution,
            solve_sharded,
            stitch_solutions,
        )
        from repro.core.index import TreeIndex

        start = time.perf_counter()
        plan = self.shard_plan
        for shard in plan.shards:
            TreeIndex.sliced(shard)

        strategies: list = []
        solutions: list = []
        changed = 0
        failed = False
        for region, problem in enumerate(self._shard_problems):
            if not problem.tree.client_ids or problem.tree.total_requests() <= 0:
                solutions.append(_empty_solution(policy))
                strategies.append("empty")
                continue
            rkey = (region, policy, algorithm)
            resolver = self._shard_resolvers.get(rkey)
            if resolver is None:
                resolver = self._shard_resolvers[rkey] = IncrementalResolver(
                    policy=policy, algorithm=algorithm, mode=SESSION_MODES[self.mode]
                )
            solution, rstats = resolver.resolve(problem)
            strategies.append(rstats.strategy)
            changed += rstats.changed_clients
            if solution is None:
                failed = True
                break
            solutions.append(solution)

        if failed:
            # Cut contention (or genuine infeasibility): let the full
            # sharded pipeline peel overflow across the cut and validate.
            try:
                stitched = solve_sharded(
                    self.problem, policy=policy, algorithm=algorithm, shards=self.shards
                )
                notes = "sharded: region infeasible, reconciled at the cut"
            except InfeasibleError:
                stitched = None
                notes = "sharded: infeasible"
            strategy = "solved"
        else:
            stitched = stitch_solutions(
                solutions,
                policy=policy,
                algorithm=f"sharded[{len(plan.shards)}:incremental]",
                metadata={
                    "shards": len(plan.shards),
                    "strategy": "incremental",
                    "shard_strategies": tuple(strategies),
                },
            )
            resolved = sum(1 for s in strategies if s in ("solved", "patched"))
            strategy = (
                "solved"
                if "solved" in strategies
                else "patched"
                if "patched" in strategies
                else "reused"
            )
            notes = (
                f"sharded: {resolved}/{len(strategies)} regions re-solved "
                f"({','.join(strategies)})"
            )

        cost = stitched.cost(self.problem) if stitched is not None else None
        lkey = (policy, algorithm)
        added, dropped, reassigned = migration_stats(
            self._shard_last.get(lkey), stitched
        )
        if stitched is not None:
            self._shard_last[lkey] = stitched
        stats = ResolveStats(
            epoch=self.epoch,
            strategy=strategy,
            changed_clients=changed,
            cost=cost,
            replicas_added=added,
            replicas_dropped=dropped,
            requests_reassigned=reassigned,
            runtime=time.perf_counter() - start,
            notes=notes,
        )
        return stitched, stats

    def _advance_shards(
        self,
        previous: ReplicaPlacementProblem,
        current: ReplicaPlacementProblem,
    ) -> None:
        """Step the per-shard problems after :meth:`update`.

        Rate-only deltas fork only the regions owning changed clients
        (unchanged regions keep the *same* problem object, so their
        resolvers report ``"reused"``); structural changes drop the plan
        and every per-region resolver.
        """
        if self._shard_plan is None:
            return
        from repro.algorithms.incremental import diff_problems

        delta = diff_problems(previous, current)
        if delta.unchanged:
            return
        if not delta.rates_only:
            self._invalidate_shards()
            return
        plan = self._shard_plan
        tree = current.tree
        by_region: Dict[int, Dict[NodeId, float]] = {}
        for cid in delta.changed_clients:
            by_region.setdefault(plan.region_of(cid), {})[cid] = tree.client(
                cid
            ).requests
        for region, updates in by_region.items():
            base = self._shard_problems[region]
            self._shard_problems[region] = ReplicaPlacementProblem(
                tree=base.tree.with_requests(updates),
                constraints=base.constraints,
                kind=base.kind,
                name=base.name,
            )

    def _invalidate_shards(self) -> None:
        self._shard_plan = None
        self._shard_problems = None
        self._shard_resolvers.clear()
        self._shard_last.clear()

    # ------------------------------------------------------------------ #
    # bounding
    # ------------------------------------------------------------------ #
    def bound(
        self,
        *,
        policy: Union[Policy, str] = Policy.MULTIPLE,
        method: str = "mixed",
        time_limit: Optional[float] = None,
    ) -> BoundResult:
        """LP lower bound of the current epoch (resident program, memoised).

        The default Multiple relaxation is a valid lower bound for every
        policy (the paper's choice).  ``method`` is ``"mixed"`` (integer
        placement, rational assignment -- the refined bound), ``"rational"``
        (full relaxation), ``"ipfp"`` (fast Lagrangian bound of the
        transportation relaxation, no LP solve) or ``"trivial"``
        (combinatorial, no LP solve).
        """
        if method not in BOUND_METHODS:
            raise ValueError(f"unknown lower-bound method {method!r}")
        policy = Policy.parse(policy)
        key = (policy, method, time_limit)
        cached = self._bound_cache.get(key)
        if cached is not None:
            self.stats.bound_cache_hits += 1
            return cached

        if method == "trivial":
            result, stats = self._trivial_bound(policy)
        else:
            from repro.algorithms.incremental import IncrementalBounder

            bounder = self._bounders.get(key)
            if bounder is None:
                bounder = self._bounders[key] = IncrementalBounder(
                    policy=policy,
                    method=method,
                    mode="scratch" if self.mode == "scratch" else "incremental",
                    time_limit=time_limit,
                )
            result, stats = bounder.bound(self.problem)

        wrapped = BoundResult(
            epoch=self.epoch, policy=policy, method=method, result=result, stats=stats
        )
        self._bound_cache[key] = wrapped
        self.stats.bounds += 1
        self.stats._tally(self.stats.bound_strategies, stats.strategy)
        return wrapped

    def _trivial_bound(self, policy: Policy):
        """The combinatorial bound, wrapped in the LP result types."""
        import math
        import time

        from repro.algorithms.incremental import BoundStats
        from repro.core.costs import trivial_lower_bound
        from repro.lp.bounds import LowerBoundResult

        start = time.perf_counter()
        value = trivial_lower_bound(self.problem)
        result = LowerBoundResult(
            value=value,
            feasible=math.isfinite(value),
            method="trivial",
            policy=policy,
        )
        stats = BoundStats(
            epoch=self.epoch,
            strategy="built",
            changed_clients=0,
            value=value,
            runtime=time.perf_counter() - start,
        )
        return result, stats

    # ------------------------------------------------------------------ #
    # comparing
    # ------------------------------------------------------------------ #
    def compare(
        self,
        *,
        policies: Iterable[Union[Policy, str]] = Policy.ordered(),
        bounds: bool = False,
        bound_method: str = "mixed",
    ) -> CompareResult:
        """Solve the current epoch under several policies side by side.

        With ``bounds=True`` the Multiple LP lower bound is computed once
        (on the warm program cache) and per-policy cost-vs-bound gaps are
        reported alongside the costs.
        """
        solutions: Dict[Policy, Optional[Solution]] = {}
        costs: Dict[Policy, Optional[float]] = {}
        for policy in policies:
            policy = Policy.parse(policy)
            result = self.solve(policy=policy, on_error="none")
            solutions[policy] = result.solution
            costs[policy] = result.cost
        bound = self.bound(method=bound_method).result if bounds else None
        return CompareResult(
            epoch=self.epoch, solutions=solutions, costs=costs, bound=bound
        )

    # ------------------------------------------------------------------ #
    # epoch stepping
    # ------------------------------------------------------------------ #
    def update(
        self,
        instance: Optional[Union[TreeNetwork, ReplicaPlacementProblem]] = None,
        *,
        requests: Optional[Mapping[NodeId, float]] = None,
        resolve: Union[bool, str] = True,
        saturation_threshold: float = 0.999,
    ) -> Optional[SolveResult]:
        """Advance the session one epoch and (by default) re-solve it.

        Exactly one of ``instance`` (the next epoch's tree or problem, e.g.
        from a :mod:`repro.workloads.dynamic` trajectory) or ``requests``
        (a ``client id -> new rate`` mapping, applied as a structure-sharing
        :meth:`~repro.core.tree.TreeNetwork.with_requests` fork of the
        current tree) must be given.  The per-epoch result caches are
        invalidated; the resolver and bounder caches survive and give the
        new epoch its incremental treatment (rate-only steps patch the tree
        index and the LP program instead of rebuilding them).

        ``resolve`` selects the epoch's re-solve discipline:

        ``True`` / ``"always"``
            Re-solve through the incremental resolver (the default).
        ``False``
            Step the epoch without solving (bound-only workflows);
            returns ``None``.
        ``"on_saturation"``
            SLA-aware: replay the previous epoch's placement against the
            new rates (each changed client's routes re-scaled in
            proportion) and **keep the placement frozen** unless the
            replay shows trouble -- a capacity / QoS / bandwidth violation
            or a link at or above ``saturation_threshold`` utilisation (a
            saturation event, via
            :func:`~repro.simulation.request_flow.simulate_solution`).
            Only then is the epoch re-solved.  Kept epochs report resolve
            strategy ``"kept"`` with zero replica churn.

        Returns the new epoch's :class:`SolveResult` under the session's
        default policy (``solution=None`` when infeasible), or ``None`` with
        ``resolve=False``.
        """
        if not isinstance(resolve, str):
            # Normalise bool-likes (0/1, numpy bools) onto real booleans so
            # the identity checks below keep the documented semantics.
            resolve = bool(resolve)
        if resolve not in RESOLVE_MODES:
            raise ValueError(
                f"unknown resolve mode {resolve!r}; expected one of "
                f"{RESOLVE_MODES}"
            )
        if (instance is None) == (requests is None):
            raise ValueError(
                "update() needs exactly one of an epoch instance or requests="
            )
        if requests is not None:
            problem = ReplicaPlacementProblem(
                tree=self.problem.tree.with_requests(requests),
                constraints=self.problem.constraints,
                kind=self.problem.kind,
                name=self.problem.name,
            )
        else:
            problem = as_problem(
                instance, constraints=self._constraints, kind=self._kind
            )
        previous_problem = self.problem
        previous_result = self._solve_cache.get((self.policy, self.algorithm))
        self.problem = problem
        self.epoch += 1
        self.stats.epochs += 1
        self._solve_cache.clear()
        self._bound_cache.clear()
        if self.shards is not None:
            self._advance_shards(previous_problem, problem)
        if resolve is False:
            return None
        if resolve == "on_saturation":
            kept = self._keep_frozen_placement(
                previous_problem, previous_result, saturation_threshold
            )
            if kept is not None:
                return kept
        return self.solve(on_error="none")

    def _keep_frozen_placement(
        self,
        previous_problem: ReplicaPlacementProblem,
        previous_result: Optional[SolveResult],
        saturation_threshold: float,
    ) -> Optional[SolveResult]:
        """The SLA-aware keep path of :meth:`update` (``on_saturation``).

        Scales the previous epoch's assignment onto the new rates, replays
        it, and installs it as this epoch's result when the replay is
        clean.  Returns ``None`` whenever a full re-solve is needed: no
        previous solution, a structural (non-rate) change, a client rising
        from zero requests (nothing to scale), a constraint violation, or a
        saturation event in the replay.
        """
        import time

        from repro.algorithms.incremental import (
            IncrementalResolver,
            ResolveStats,
            diff_problems,
            migration_stats,
        )
        from repro.core.solution import Assignment
        from repro.core.validation import validate_solution
        from repro.simulation.request_flow import simulate_solution

        if previous_result is None or previous_result.solution is None:
            return None
        start = time.perf_counter()
        delta = diff_problems(previous_problem, self.problem)
        if not (delta.unchanged or delta.rates_only):
            return None

        old_solution = previous_result.solution
        if delta.unchanged:
            scaled = old_solution
        else:
            factors: Dict[NodeId, float] = {}
            old_tree, new_tree = previous_problem.tree, self.problem.tree
            for client_id in delta.changed_clients:
                old_rate = old_tree.client(client_id).requests
                new_rate = new_tree.client(client_id).requests
                if old_rate <= 0 and new_rate > 0:
                    return None  # no existing routes to scale
                factors[client_id] = new_rate / old_rate if old_rate > 0 else 0.0
            amounts: Dict[Tuple[NodeId, NodeId], float] = {}
            for (client_id, server_id), amount in old_solution.assignment.items():
                factor = factors.get(client_id)
                if factor is None:
                    amounts[(client_id, server_id)] = amount
                elif factor > 0:
                    amounts[(client_id, server_id)] = amount * factor
                # factor == 0: the client went silent; drop its routes.
            scaled = Solution(
                placement=old_solution.placement,
                assignment=Assignment(amounts),
                policy=old_solution.policy,
                algorithm=old_solution.algorithm,
                metadata=dict(old_solution.metadata),
            )

        if not validate_solution(self.problem, scaled, policy=self.policy).valid:
            return None
        replay = simulate_solution(
            self.problem, scaled, saturation_threshold=saturation_threshold
        )
        if replay.saturated_links:
            return None

        added, dropped, reassigned = migration_stats(old_solution, scaled)
        stats = ResolveStats(
            epoch=self.epoch,
            strategy="kept",
            changed_clients=len(delta.changed_clients),
            cost=scaled.cost(self.problem),
            replicas_added=added,
            replicas_dropped=dropped,
            requests_reassigned=reassigned,
            runtime=time.perf_counter() - start,
            notes="replay clean; frozen placement kept (resolve='on_saturation')",
        )
        result = SolveResult(
            epoch=self.epoch,
            policy=self.policy,
            solution=scaled,
            cost=stats.cost,
            stats=stats,
            problem=self.problem,
        )
        key = (self.policy, self.algorithm)
        self._solve_cache[key] = result
        self.stats.solves += 1
        self.stats._tally(self.stats.solve_strategies, "kept")
        # Keep the resolver's warm state in step: the next epoch must diff
        # against the kept solution, not against the pre-freeze one.
        resolver = self._resolvers.get(key)
        if resolver is None:
            resolver = self._resolvers[key] = IncrementalResolver(
                policy=self.policy,
                algorithm=self.algorithm,
                mode=SESSION_MODES[self.mode],
            )
        resolver.epoch += 1
        resolver.previous_problem = self.problem
        resolver.previous_solution = scaled
        return result

    # ------------------------------------------------------------------ #
    # simulating
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        *,
        policy: Optional[Union[Policy, str]] = None,
        algorithm: Optional[str] = None,
        saturation_threshold: float = 0.999,
    ) -> "FlowSimulation":
        """Steady-state replay of the current epoch's solution.

        Solves first if needed (warm caches), then routes the request
        streams through the tree via
        :func:`repro.simulation.simulate_solution`.  Raises
        :class:`~repro.core.exceptions.InfeasibleError` when the epoch has
        no valid solution.
        """
        from repro.simulation.request_flow import simulate_solution

        result = self.solve(policy=policy, algorithm=algorithm)
        return simulate_solution(
            self.problem,
            result.solution,
            saturation_threshold=saturation_threshold,
        )

    # ------------------------------------------------------------------ #
    # serving hooks: memory accounting and snapshot state
    # ------------------------------------------------------------------ #
    def memory_estimate(self) -> int:
        """Rough resident size of this session in bytes.

        A deliberate heuristic, not a measurement (Python has no cheap
        deep-sizeof): the tree and its index are costed per element, each
        resident LP program by its sparsity, each cached solve by its
        assignment size.  The serving pool uses it for byte budgets, where
        relative ordering between sessions matters more than absolute
        accuracy.
        """
        size = self.problem.size
        estimate = 4096 + 400 * size
        if self.problem.tree._index_cache is not None:
            estimate += 250 * size
        if self._shard_problems is not None:
            # Sharded sessions never build the whole-tree index; the
            # resident footprint counts only the shard indexes that exist.
            for shard_problem in self._shard_problems:
                if shard_problem.tree._index_cache is not None:
                    estimate += 250 * shard_problem.size
        for bounder in self._bounders.values():
            program = getattr(bounder, "_program", None)
            if program is not None:
                try:
                    estimate += 24 * int(program.constraint_matrix.nnz)
                    estimate += 48 * len(program.objective)
                except (AttributeError, TypeError):  # pragma: no cover
                    estimate += 64 * size
        for result in self._solve_cache.values():
            if result.solution is not None:
                estimate += 512 + 120 * len(result.solution.assignment)
        estimate += 2048 * (len(self._resolvers) + len(self._shard_resolvers))
        return estimate

    def export_state(self) -> Dict[str, Any]:
        """Serialise this session for cross-restart persistence.

        The payload carries the current problem
        (:func:`~repro.core.serialization.problem_to_dict`), the session
        configuration, the cache-reuse counters and every cached per-epoch
        result -- everything :meth:`restore_state` needs to rebuild a
        session whose *next* query gets the same incremental treatment this
        one would give it.  Resident LP programs and tree indexes are not
        persisted (they are derived state); the restore rebuilds them.

        Raises
        ------
        SerializationError
            When the problem uses a custom :class:`ConstraintSet` subclass
            (behaviour cannot round-trip through JSON).
        """
        from repro.core.serialization import problem_to_dict

        return {
            "type": "session_state",
            "version": 1,
            "problem": problem_to_dict(self.problem),
            "policy": self.policy.value,
            "algorithm": self.algorithm,
            "mode": self.mode,
            "engine": self.engine,
            "shards": list(self.shards)
            if isinstance(self.shards, tuple)
            else self.shards,
            "epoch": self.epoch,
            "stats": self.stats.to_dict(),
            "solves": [
                {
                    "policy": key[0].value,
                    "algorithm": key[1],
                    "result": result.to_dict(),
                }
                # per-call sharded overrides use 3-tuple keys; those entries
                # are transient and deliberately not persisted
                for key, result in self._solve_cache.items()
                if len(key) == 2
            ],
            "bounds": [
                {
                    "policy": policy.value,
                    "method": method,
                    "time_limit": time_limit,
                    "result": result.to_dict(),
                }
                for (policy, method, time_limit), result in self._bound_cache.items()
            ],
        }

    @classmethod
    def restore_state(
        cls, payload: Mapping[str, Any], *, warm_programs: bool = True
    ) -> "PlacementSession":
        """Rebuild a session from :meth:`export_state` output.

        The restored session answers repeated current-epoch queries from
        its caches (bit-identical to the exported results) and gives the
        next epoch the warm incremental treatment: resolvers are re-seeded
        with the persisted solutions, and -- with ``warm_programs`` (the
        default) -- each persisted bound's LP program is re-assembled
        eagerly so a rate-only epoch step *patches* it
        (:meth:`~repro.lp.formulation.LinearProgramData.with_requests`)
        instead of rebuilding from scratch.
        """
        from repro.algorithms.incremental import (
            IncrementalBounder,
            IncrementalResolver,
        )
        from repro.core.serialization import problem_from_dict

        problem = problem_from_dict(payload["problem"])
        algorithm = payload.get("algorithm")
        shards = payload.get("shards")
        session = cls(
            problem,
            policy=Policy.parse(payload.get("policy", Policy.MULTIPLE)),
            algorithm=None if algorithm is None else str(algorithm),
            mode=str(payload.get("mode", "incremental")),
            engine=payload.get("engine"),
            shards=tuple(shards) if isinstance(shards, list) else shards,
        )
        session.epoch = int(payload.get("epoch", 0))
        session.stats = SessionStats.from_dict(payload.get("stats", {}))

        for entry in payload.get("solves", []):
            result = SolveResult.from_dict(entry["result"])
            result.problem = problem
            entry_algorithm = entry.get("algorithm")
            key = (
                Policy.parse(entry["policy"]),
                None if entry_algorithm is None else str(entry_algorithm),
            )
            session._solve_cache[key] = result
            resolver = IncrementalResolver(
                policy=key[0], algorithm=key[1], mode=SESSION_MODES[session.mode]
            )
            resolver.epoch = session.epoch
            resolver.previous_problem = problem
            resolver.previous_solution = result.solution
            session._resolvers[key] = resolver

        for entry in payload.get("bounds", []):
            result = BoundResult.from_dict(entry["result"])
            time_limit = entry.get("time_limit")
            time_limit = None if time_limit is None else float(time_limit)
            method = str(entry["method"])
            key = (Policy.parse(entry["policy"]), method, time_limit)
            session._bound_cache[key] = result
            if method == "trivial":
                continue  # no resident program to keep warm
            bounder = IncrementalBounder(
                policy=key[0],
                method=method,
                mode="scratch" if session.mode == "scratch" else "incremental",
                time_limit=time_limit,
            )
            bounder.epoch = session.epoch
            bounder.previous_problem = problem
            bounder._previous = result.result
            if warm_programs and session.mode != "scratch":
                from repro.lp.bounds import bound_program

                bounder._program = bound_program(
                    problem, policy=key[0], method=method
                )
            session._bounders[key] = bounder
        return session

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line session summary (problem + cache-reuse counters)."""
        return (
            f"epoch {self.epoch}, {self.problem.describe()} | {self.stats.describe()}"
        )

    def __repr__(self) -> str:
        return (
            f"PlacementSession(epoch={self.epoch}, policy={self.policy.value}, "
            f"mode={self.mode!r}, size={self.problem.size})"
        )
