"""Linear combination of storage, read and write costs (paper Section 8.2).

The paper's general objective is

.. math::  \\alpha \\sum_{servers} replica\\ cost
          + \\beta  \\sum_{requests} read\\ cost
          + \\gamma \\sum_{updates} write\\ cost

:class:`CombinedObjective` evaluates that combination for any solution and
can rank the solutions produced by different heuristics or policies -- the
examples use it to show how increasing ``beta`` (read weight) pushes the
preferred policy from Multiple/Upwards back towards Closest, and how a
positive ``gamma`` (update weight) penalises plentiful replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.objectives.read_cost import read_cost
from repro.objectives.write_cost import write_cost

__all__ = ["CombinedObjective"]


@dataclass(frozen=True)
class CombinedObjective:
    """Weighted sum of storage, read and write costs.

    Parameters
    ----------
    alpha:
        Weight of the replica (storage) cost.
    beta:
        Weight of the read (communication) cost.
    gamma:
        Weight of the write (update propagation) cost.
    updates_per_time_unit:
        Update rate used to scale the write cost.
    """

    alpha: float = 1.0
    beta: float = 0.0
    gamma: float = 0.0
    updates_per_time_unit: float = 1.0

    def components(
        self, problem: ReplicaPlacementProblem, solution: Solution
    ) -> Dict[str, float]:
        """The three cost components of a solution, unweighted."""
        return {
            "storage": solution.cost(problem),
            "read": read_cost(problem.tree, solution),
            "write": write_cost(
                problem.tree,
                solution.placement,
                updates_per_time_unit=self.updates_per_time_unit,
            ),
        }

    def value(self, problem: ReplicaPlacementProblem, solution: Solution) -> float:
        """The weighted objective value of a solution."""
        parts = self.components(problem, solution)
        return (
            self.alpha * parts["storage"]
            + self.beta * parts["read"]
            + self.gamma * parts["write"]
        )

    def rank(
        self,
        problem: ReplicaPlacementProblem,
        solutions: Iterable[Tuple[str, Optional[Solution]]],
    ) -> Tuple[Tuple[str, float], ...]:
        """Rank labelled solutions by increasing combined objective.

        Entries whose solution is ``None`` (failed heuristics) are skipped.
        """
        scored = [
            (label, self.value(problem, solution))
            for label, solution in solutions
            if solution is not None
        ]
        return tuple(sorted(scored, key=lambda item: item[1]))
