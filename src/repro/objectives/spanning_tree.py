"""Minimal subtree connecting the replicas (update-propagation structure).

Updates are propagated from the modified replica to every other replica
(paper Section 8.2, following Wolfson & Milo); inside a tree network, the
cheapest structure connecting a set of nodes is the Steiner subtree induced
by them -- the union of the tree paths between every replica and their
lowest common ancestor.  :func:`replica_spanning_links` returns exactly the
links of that subtree; its total communication time is the per-update
propagation cost used by :mod:`repro.objectives.write_cost`.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.core.tree import Link, NodeId, TreeNetwork

__all__ = ["replica_spanning_links", "lowest_common_ancestor"]


def lowest_common_ancestor(tree: TreeNetwork, nodes: Iterable[NodeId]) -> NodeId:
    """Lowest common ancestor of a non-empty set of tree elements."""
    nodes = list(nodes)
    if not nodes:
        raise ValueError("lowest_common_ancestor requires at least one node")
    # The chain of each node, from itself up to the root.
    chains = [
        [node] + list(tree.ancestors(node))
        for node in nodes
    ]
    candidate_sets = [set(chain) for chain in chains]
    common = set.intersection(*candidate_sets)
    # The LCA is the common ancestor of maximal depth.
    return max(common, key=tree.depth)


def replica_spanning_links(tree: TreeNetwork, replicas: Iterable[NodeId]) -> Tuple[Link, ...]:
    """Links of the minimal subtree connecting the given replica nodes.

    An empty or singleton replica set induces no link.
    """
    replicas = [r for r in replicas]
    if len(replicas) <= 1:
        return ()
    lca = lowest_common_ancestor(tree, replicas)
    links: List[Link] = []
    seen: Set[Tuple[NodeId, NodeId]] = set()
    for replica in replicas:
        if replica == lca:
            continue
        for link in tree.path_links(replica, lca):
            if link.key not in seen:
                seen.add(link.key)
                links.append(link)
    return tuple(links)
