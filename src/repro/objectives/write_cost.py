"""Write (update) cost of a placement.

When a client writes the object, the modification must reach every replica
to keep them consistent; the propagation travels over the minimal subtree
connecting the replicas (see :mod:`repro.objectives.spanning_tree`).  The
write cost charges the total communication time of that subtree once per
update (paper Section 8.2, "Update cost").
"""

from __future__ import annotations

from typing import Iterable

from repro.core.solution import Placement
from repro.core.tree import NodeId, TreeNetwork
from repro.objectives.spanning_tree import replica_spanning_links

__all__ = ["write_cost"]


def write_cost(
    tree: TreeNetwork,
    placement: Iterable[NodeId],
    *,
    updates_per_time_unit: float = 1.0,
) -> float:
    """Update-propagation cost of a placement.

    ``updates_per_time_unit`` scales the per-update spanning-subtree cost to
    a rate, so the value is commensurable with the (per-time-unit) read
    cost.
    """
    if isinstance(placement, Placement):
        replicas = list(placement.replicas)
    else:
        replicas = list(placement)
    links = replica_spanning_links(tree, replicas)
    per_update = sum(link.comm_time for link in links)
    return updates_per_time_unit * per_update
