"""Read (communication) cost of a solution.

Every request travels from its client to the server processing it; the read
cost charges the communication time of each traversed link once per request
(paper Section 8.2, "Communication cost").  Minimising it favours placements
close to the clients -- the opposite pull from the storage cost, which
favours few, high, well-filled replicas.
"""

from __future__ import annotations

from repro.core.solution import Solution
from repro.core.tree import TreeNetwork

__all__ = ["read_cost"]


def read_cost(tree: TreeNetwork, solution: Solution) -> float:
    """Total communication cost of serving every assigned request.

    ``sum over (client, server) assignments of amount * latency(client, server)``.
    """
    total = 0.0
    for (client_id, server_id), amount in solution.assignment.items():
        total += amount * tree.latency(client_id, server_id)
    return total
