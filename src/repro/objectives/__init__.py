"""Extended objective functions (paper Section 8.2).

Beyond the storage cost minimised throughout the paper, Section 8.2 sketches
richer objectives:

* the **read cost** -- communication cost of routing every request from its
  client to its server (:mod:`repro.objectives.read_cost`);
* the **write cost** -- cost of propagating an update to every replica over
  the minimal subtree connecting them (:mod:`repro.objectives.write_cost`,
  :mod:`repro.objectives.spanning_tree`);
* a **linear combination** ``alpha * storage + beta * read + gamma * write``
  (:mod:`repro.objectives.combined`).
"""

from repro.objectives.read_cost import read_cost
from repro.objectives.write_cost import write_cost
from repro.objectives.spanning_tree import replica_spanning_links
from repro.objectives.combined import CombinedObjective

__all__ = ["read_cost", "write_cost", "replica_spanning_links", "CombinedObjective"]
