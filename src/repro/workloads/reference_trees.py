"""The hand-built trees used by the paper's examples and reductions.

These parametric families back the motivating examples of Section 3 and the
NP-completeness reductions of Section 4; the test-suite and the
``section3`` benchmark verify that the package reproduces every claim the
paper makes about them:

* :func:`figure1_tree` -- the three tiny instances showing that Upwards
  solves instances Closest cannot, and Multiple instances Upwards cannot;
* :func:`figure2_tree` -- Upwards needs 3 replicas where Closest needs
  ``n + 2`` (Upwards arbitrarily better than Closest);
* :func:`figure3_tree` -- Multiple needs ``n + 1`` replicas where Upwards
  needs ``2n`` (factor 2 in the homogeneous case);
* :func:`figure4_tree` -- heterogeneous platform where Multiple costs ``2n``
  and Upwards ``(K + 1) n`` (unbounded gap);
* :func:`figure5_tree` -- the optimal cost is ``n + 1`` replicas while the
  ``ceil(sum r / W)`` lower bound is 2 (the bound cannot be approximated);
* :func:`three_partition_tree` -- the platform of the Theorem 2 reduction
  (Upwards/homogeneous NP-complete, from 3-PARTITION);
* :func:`two_partition_tree` -- the platform of the Theorem 3 reduction
  (heterogeneous policies NP-complete, from 2-PARTITION).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.builder import TreeBuilder
from repro.core.tree import TreeNetwork

__all__ = [
    "figure1_tree",
    "figure2_tree",
    "figure3_tree",
    "figure4_tree",
    "figure5_tree",
    "three_partition_tree",
    "two_partition_tree",
]


def figure1_tree(variant: str) -> TreeNetwork:
    """Paper Figure 1: two stacked nodes of capacity 1.

    Variants (paper Section 3.1):

    * ``"a"`` -- one client issuing 1 request: all three policies succeed;
    * ``"b"`` -- two clients issuing 1 request each: Closest fails, Upwards
      and Multiple succeed;
    * ``"c"`` -- one client issuing 2 requests: only Multiple succeeds.
    """
    builder = (
        TreeBuilder()
        .add_node("s2", capacity=1)
        .add_node("s1", capacity=1, parent="s2")
    )
    if variant == "a":
        builder.add_client("c1", requests=1, parent="s1")
    elif variant == "b":
        builder.add_client("c1", requests=1, parent="s1")
        builder.add_client("c2", requests=1, parent="s1")
    elif variant == "c":
        builder.add_client("c1", requests=2, parent="s1")
    else:
        raise ValueError(f"unknown Figure 1 variant {variant!r}; expected 'a', 'b' or 'c'")
    return builder.build()


def figure2_tree(n: int) -> TreeNetwork:
    """Paper Figure 2: Upwards arbitrarily better than Closest.

    ``2n + 2`` internal nodes of capacity ``n``; ``2n`` unit-request clients
    hang one level below ``s_{2n+1}`` (one per bottom node ``s_1..s_{2n}``)
    and one more unit-request client is attached to the root ``s_{2n+2}``.
    Upwards needs 3 replicas; Closest needs ``n + 2``.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    builder = (
        TreeBuilder()
        .add_node("root", capacity=n)
        .add_node("mid", capacity=n, parent="root")
        .add_client("c_root", requests=1, parent="root")
    )
    for index in range(2 * n):
        builder.add_node(f"s{index}", capacity=n, parent="mid")
        builder.add_client(f"c{index}", requests=1, parent=f"s{index}")
    return builder.build()


def figure3_tree(n: int) -> TreeNetwork:
    """Paper Figure 3: Multiple twice better than Upwards (homogeneous).

    ``3n + 1`` nodes of capacity ``2n``.  The root has ``n`` internal
    children ``s_j`` plus one client issuing ``n`` requests; each ``s_j`` has
    two internal children ``v_j`` (client child with ``n`` requests) and
    ``w_j`` (client child with ``n + 1`` requests).  Multiple needs ``n + 1``
    replicas, Upwards needs ``2n``.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    capacity = 2 * n
    builder = TreeBuilder().add_node("root", capacity=capacity)
    builder.add_client("c_root", requests=n, parent="root")
    for j in range(1, n + 1):
        builder.add_node(f"s{j}", capacity=capacity, parent="root")
        builder.add_node(f"v{j}", capacity=capacity, parent=f"s{j}")
        builder.add_node(f"w{j}", capacity=capacity, parent=f"s{j}")
        builder.add_client(f"cv{j}", requests=n, parent=f"v{j}")
        builder.add_client(f"cw{j}", requests=n + 1, parent=f"w{j}")
    return builder.build()


def figure4_tree(n: int, big_factor: float) -> TreeNetwork:
    """Paper Figure 4: Multiple arbitrarily better than Upwards (heterogeneous).

    A chain ``s3 (root, W = K n) <- s2 (W = n) <- s1 (W = n)`` with two
    clients attached to ``s1``: one issuing ``n + 1`` requests and one
    issuing ``n - 1``.  Multiple pays ``2n`` (replicas on ``s1`` and ``s2``,
    splitting the big client between them); Upwards has to buy the big
    server for the ``n + 1`` client -- its optimal cost is ``K n`` (the
    paper quotes ``(K + 1) n`` for the placement that also keeps a replica
    on ``s1``) -- so the Upwards/Multiple cost ratio grows like ``K / 2``,
    unbounded in ``K``.
    """
    if n < 2:
        raise ValueError("n must be at least 2 so that the small client has n - 1 >= 1 requests")
    if big_factor <= 1:
        raise ValueError("big_factor (K) must exceed 1")
    return (
        TreeBuilder()
        .add_node("s3", capacity=big_factor * n)
        .add_node("s2", capacity=n, parent="s3")
        .add_node("s1", capacity=n, parent="s2")
        .add_client("c_big", requests=n + 1, parent="s1")
        .add_client("c_small", requests=n - 1, parent="s1")
        .build()
    )


def figure5_tree(n: int, capacity: float) -> TreeNetwork:
    """Paper Figure 5: the ``ceil(sum r / W)`` bound cannot be approximated.

    The root (capacity ``W``) has one client issuing ``W`` requests and ``n``
    internal children ``s_j``, each with a single client issuing ``W / n``
    requests.  Every policy needs ``n + 1`` replicas although the lower
    bound is 2.  ``capacity`` must be divisible by ``n`` (paper assumption).
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    share = capacity / n
    builder = TreeBuilder().add_node("root", capacity=capacity)
    builder.add_client("c_root", requests=capacity, parent="root")
    for j in range(1, n + 1):
        builder.add_node(f"s{j}", capacity=capacity, parent="root")
        builder.add_client(f"c{j}", requests=share, parent=f"s{j}")
    return builder.build()


def three_partition_tree(values: Sequence[float], bound: float) -> TreeNetwork:
    """Paper Figure 7: the 3-PARTITION reduction platform of Theorem 2.

    ``values`` are the ``3m`` integers ``a_i`` (each strictly between
    ``bound / 4`` and ``bound / 2`` in a genuine 3-PARTITION instance);
    ``bound`` is ``B``.  The tree is a chain of ``m`` nodes of capacity
    ``B`` (``n_m`` is the root) whose lowest node ``n_1`` has the ``3m``
    clients as children.  The Upwards instance with total cost ``m B`` has a
    solution iff the 3-PARTITION instance does.
    """
    if len(values) % 3 != 0 or not values:
        raise ValueError("3-PARTITION requires a non-empty multiple of 3 values")
    m = len(values) // 3
    builder = TreeBuilder().add_node(f"n{m}", capacity=bound)
    for level in range(m - 1, 0, -1):
        builder.add_node(f"n{level}", capacity=bound, parent=f"n{level + 1}")
    for index, value in enumerate(values, start=1):
        builder.add_client(f"c{index}", requests=value, parent="n1")
    return builder.build()


def two_partition_tree(values: Sequence[float]) -> TreeNetwork:
    """Paper Figure 8: the 2-PARTITION reduction platform of Theorem 3.

    ``values`` are the ``m`` integers ``a_i`` with sum ``S``.  The root has
    capacity ``S / 2 + 1`` and one unit-request client; below it, one node
    ``n_j`` of capacity ``a_j`` per value, each with a single client issuing
    ``a_j`` requests.  A solution of total storage cost ``S + 1`` exists
    (for Closest and Multiple alike) iff the values can be split into two
    halves of equal sum.
    """
    if not values:
        raise ValueError("2-PARTITION requires at least one value")
    total = float(sum(values))
    builder = TreeBuilder().add_node("root", capacity=total / 2 + 1)
    builder.add_client("c_extra", requests=1, parent="root")
    for index, value in enumerate(values, start=1):
        builder.add_node(f"n{index}", capacity=value, parent="root")
        builder.add_client(f"c{index}", requests=value, parent=f"n{index}")
    return builder.build()
