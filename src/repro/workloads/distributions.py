"""Request and capacity distributions used by the tree generator.

The paper's experiments (Section 7.2) only specify the tree sizes and the
load sweep; the concrete distributions below are the natural choices and
are kept pluggable so that campaigns can vary them (one of the follow-up
directions mentioned in the paper's conclusion is precisely to vary "the
distribution law of the requests and the degree of heterogeneity of the
platforms").

Beyond the static rate/capacity draws, this module also samples **arrival
processes** -- the request *timelines* behind those rates.  The serving
load harness (:mod:`repro.serving.loadgen`) and sequence replays
(:func:`repro.simulation.request_flow.simulate_sequence` callers that want
within-epoch micro-bursts instead of constant rates) both draw open-loop
arrival times from an inhomogeneous Poisson point process (IPPP), sampled
with the two classic exact methods:

* **thinning** (Lewis-Shedler): sample a homogeneous process at a bounding
  rate, accept each candidate ``t`` with probability
  ``intensity(t) / bound`` -- works for any bounded intensity function;
* **inversion** (time rescaling): sample a unit-rate process on
  ``[0, Lambda(T)]`` and map the points back through the inverse of the
  cumulative intensity -- exact and rejection-free for piecewise-constant
  intensities (epoch trajectories are exactly that shape).

All helpers take a :class:`numpy.random.Generator` so campaigns are fully
reproducible from a single seed.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.exceptions import WorkloadError

__all__ = [
    "uniform_requests",
    "zipf_requests",
    "uniform_capacities",
    "heterogeneous_capacities",
    "poisson_arrivals",
    "thinned_poisson_arrivals",
    "inversion_poisson_arrivals",
    "sinusoidal_intensity",
]


def uniform_requests(
    rng: np.random.Generator, count: int, *, low: int = 1, high: int = 100
) -> np.ndarray:
    """Integer request rates drawn uniformly from ``[low, high]``."""
    if count <= 0:
        return np.zeros(0, dtype=int)
    return rng.integers(low, high + 1, size=count)


def zipf_requests(
    rng: np.random.Generator,
    count: int,
    *,
    exponent: float = 1.5,
    scale: int = 10,
    cap: int = 10_000,
) -> np.ndarray:
    """Heavy-tailed request rates (a few very demanding clients).

    Used by the ablation experiments to stress the heuristics that reason on
    whole clients (UTD, UBCF): a handful of clients concentrate most of the
    load.
    """
    if count <= 0:
        return np.zeros(0, dtype=int)
    raw = rng.zipf(exponent, size=count) * scale
    return np.minimum(raw, cap)


def uniform_capacities(
    rng: np.random.Generator, count: int, *, capacity: float = 100.0
) -> np.ndarray:
    """Identical capacities (homogeneous platforms)."""
    return np.full(count, float(capacity))


def heterogeneous_capacities(
    rng: np.random.Generator,
    count: int,
    *,
    choices: Sequence[float] = (50.0, 100.0, 200.0, 400.0),
) -> np.ndarray:
    """Capacities drawn uniformly from a small set of server classes.

    Mimics a platform mixing a few machine generations, the usual source of
    heterogeneity in the paper's target applications (VOD / ISP trees).
    """
    if count <= 0:
        return np.zeros(0)
    return rng.choice(np.asarray(choices, dtype=float), size=count)


# --------------------------------------------------------------------------- #
# arrival processes (IPPP sampling: thinning and inversion)
# --------------------------------------------------------------------------- #
def poisson_arrivals(
    rng: np.random.Generator, rate: float, horizon: float
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on ``[0, horizon)``.

    Sampled by inversion of the exponential inter-arrival gaps.  Returns a
    sorted float array; empty for ``rate == 0`` or ``horizon <= 0``.

    Raises :class:`~repro.core.exceptions.WorkloadError` on non-finite
    inputs (a ``nan`` horizon would silently return an empty schedule, an
    infinite rate would loop forever) and on negative rates.
    """
    rate = float(rate)
    horizon = float(horizon)
    if not np.isfinite(rate) or rate < 0:
        raise WorkloadError(f"rate must be finite and >= 0, got {rate}")
    if np.isnan(horizon) or horizon == np.inf:
        raise WorkloadError(f"horizon must be finite, got {horizon}")
    if rate == 0 or horizon <= 0:
        return np.zeros(0)
    # Draw gaps in slabs until the horizon is crossed; E[N] = rate * horizon.
    expected = rate * horizon
    arrivals: list = []
    total = 0.0
    while True:
        gaps = rng.exponential(1.0 / rate, size=max(16, int(expected * 1.2) + 8))
        times = total + np.cumsum(gaps)
        inside = times[times < horizon]
        arrivals.append(inside)
        if inside.size < times.size:  # the slab crossed the horizon
            return np.concatenate(arrivals)
        total = float(times[-1])


def thinned_poisson_arrivals(
    rng: np.random.Generator,
    intensity: Callable[[np.ndarray], np.ndarray],
    horizon: float,
    *,
    bound: float,
) -> np.ndarray:
    """IPPP arrival times on ``[0, horizon)`` by Lewis-Shedler thinning.

    ``intensity`` maps an array of times to instantaneous rates and must be
    dominated by ``bound`` everywhere on the horizon; candidates from a
    homogeneous ``bound``-rate process are kept with probability
    ``intensity(t) / bound``.  A candidate whose intensity exceeds the
    bound (or is negative) raises ``ValueError`` -- a silent violation
    would skew the sampled process instead of failing loudly.
    """
    bound = float(bound)
    if not np.isfinite(bound) or bound <= 0:
        raise WorkloadError(f"thinning bound must be > 0 and finite, got {bound}")
    candidates = poisson_arrivals(rng, bound, horizon)
    if candidates.size == 0:
        return candidates
    rates = np.asarray(intensity(candidates), dtype=float)
    if rates.shape != candidates.shape:
        raise ValueError(
            "intensity must return one rate per candidate time "
            f"(got shape {rates.shape} for {candidates.shape})"
        )
    if np.any(rates < 0):
        raise ValueError("intensity returned a negative rate")
    if np.any(rates > bound * (1 + 1e-12)):
        raise ValueError(
            f"intensity exceeds the thinning bound {bound:g} "
            f"(max sampled {float(rates.max()):g}); raise the bound"
        )
    keep = rng.random(candidates.size) * bound < rates
    return candidates[keep]


def inversion_poisson_arrivals(
    rng: np.random.Generator,
    breakpoints: Sequence[float],
    rates: Sequence[float],
) -> np.ndarray:
    """IPPP arrival times for a piecewise-constant intensity, by inversion.

    ``breakpoints`` are the ``k + 1`` increasing edges of ``k`` intervals
    and ``rates`` the ``k`` constant intensities on them.  A unit-rate
    homogeneous process is sampled on ``[0, Lambda(T)]`` (the cumulative
    intensity) and mapped back through the exact piecewise-linear inverse
    of ``Lambda`` -- no rejection, which makes it the natural sampler for
    epoch trajectories whose per-epoch rates *are* piecewise constant.
    """
    edges = np.asarray(breakpoints, dtype=float)
    levels = np.asarray(rates, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise WorkloadError("breakpoints must hold at least two edges")
    if levels.shape != (edges.size - 1,):
        raise WorkloadError(
            f"need one rate per interval: {edges.size - 1} intervals, "
            f"{levels.size} rates"
        )
    if not np.all(np.isfinite(edges)):
        raise WorkloadError("breakpoints must be finite")
    if np.any(np.diff(edges) <= 0):
        raise WorkloadError(
            "breakpoints must be strictly increasing (zero-length intervals "
            "and unsorted timestamps are rejected)"
        )
    if not np.all(np.isfinite(levels)):
        raise WorkloadError("rates must be finite")
    if np.any(levels < 0):
        raise WorkloadError("rates must be >= 0")
    if not np.any(levels > 0):
        # All-zero intensity: the process is empty by definition.  Checked
        # explicitly (rather than via the cumulative total below) so the
        # degenerate case never reaches the span-mapping arithmetic.
        return np.zeros(0)
    widths = np.diff(edges)
    cumulative = np.concatenate(([0.0], np.cumsum(levels * widths)))
    total = float(cumulative[-1])
    if total == 0.0:
        return np.zeros(0)
    # Unit-rate arrivals on [0, total], then Lambda^{-1} per interval.
    unit_times = poisson_arrivals(rng, 1.0, total)
    if unit_times.size == 0:
        return unit_times
    spans = np.searchsorted(cumulative, unit_times, side="right") - 1
    spans = np.clip(spans, 0, levels.size - 1)
    # Zero-rate intervals contribute no cumulative mass, so every sampled
    # point lands strictly inside a positive-rate span.
    offsets = (unit_times - cumulative[spans]) / levels[spans]
    return edges[spans] + offsets


def sinusoidal_intensity(
    rate: float, *, burst: float = 0.5, period: float = 1.0
) -> Callable[[np.ndarray], np.ndarray]:
    """The load harness's default diurnal-style intensity function.

    ``lambda(t) = rate * (1 + burst * sin(2 pi t / period))`` -- mean
    ``rate`` arrivals per unit time with bursts ``(1 + burst)`` times the
    mean.  ``burst`` must lie in ``[0, 1]`` so the intensity stays
    non-negative; the tight thinning bound is ``rate * (1 + burst)``.
    """
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if not 0 <= burst <= 1:
        raise ValueError(f"burst must lie in [0, 1], got {burst}")
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")

    def intensity(times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        return rate * (1.0 + burst * np.sin(2.0 * np.pi * times / period))

    return intensity
