"""Request and capacity distributions used by the tree generator.

The paper's experiments (Section 7.2) only specify the tree sizes and the
load sweep; the concrete distributions below are the natural choices and
are kept pluggable so that campaigns can vary them (one of the follow-up
directions mentioned in the paper's conclusion is precisely to vary "the
distribution law of the requests and the degree of heterogeneity of the
platforms").

All helpers take a :class:`numpy.random.Generator` so campaigns are fully
reproducible from a single seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "uniform_requests",
    "zipf_requests",
    "uniform_capacities",
    "heterogeneous_capacities",
]


def uniform_requests(
    rng: np.random.Generator, count: int, *, low: int = 1, high: int = 100
) -> np.ndarray:
    """Integer request rates drawn uniformly from ``[low, high]``."""
    if count <= 0:
        return np.zeros(0, dtype=int)
    return rng.integers(low, high + 1, size=count)


def zipf_requests(
    rng: np.random.Generator,
    count: int,
    *,
    exponent: float = 1.5,
    scale: int = 10,
    cap: int = 10_000,
) -> np.ndarray:
    """Heavy-tailed request rates (a few very demanding clients).

    Used by the ablation experiments to stress the heuristics that reason on
    whole clients (UTD, UBCF): a handful of clients concentrate most of the
    load.
    """
    if count <= 0:
        return np.zeros(0, dtype=int)
    raw = rng.zipf(exponent, size=count) * scale
    return np.minimum(raw, cap)


def uniform_capacities(
    rng: np.random.Generator, count: int, *, capacity: float = 100.0
) -> np.ndarray:
    """Identical capacities (homogeneous platforms)."""
    return np.full(count, float(capacity))


def heterogeneous_capacities(
    rng: np.random.Generator,
    count: int,
    *,
    choices: Sequence[float] = (50.0, 100.0, 200.0, 400.0),
) -> np.ndarray:
    """Capacities drawn uniformly from a small set of server classes.

    Mimics a platform mixing a few machine generations, the usual source of
    heterogeneity in the paper's target applications (VOD / ISP trees).
    """
    if count <= 0:
        return np.zeros(0)
    return rng.choice(np.asarray(choices, dtype=float), size=count)
