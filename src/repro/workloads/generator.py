"""Random tree generator for the experiment campaigns.

Paper Section 7.2 evaluates the heuristics on randomly generated trees with

* problem size ``15 <= s <= 400`` (``s = |C| + |N|``),
* a target load ``lambda = sum_i r_i / sum_j W_j`` swept from 0.1 to 0.9,
* homogeneous or heterogeneous node capacities.

The authors' generator is not published; :class:`TreeGenerator` reproduces
those structural knobs with a seeded :class:`numpy.random.Generator`:

1. a random recursive tree is drawn over the internal nodes (every new node
   attaches to a uniformly-chosen existing node, subject to a branching
   limit);
2. every client leaf attaches to a uniformly-chosen internal node;
3. capacities are homogeneous (a single server class) or drawn from a small
   set of server classes;
4. request rates are drawn from a pluggable distribution and then rescaled
   (largest-remainder rounding) so the realised load matches the requested
   ``lambda`` exactly up to integer rounding.

Because results in the paper are reported as per-``lambda`` aggregates over
30 random trees, matching the distribution parameters is what matters for
reproducing the figures, not matching the authors' exact instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tree import Client, InternalNode, Link, TreeNetwork
from repro.workloads.distributions import (
    heterogeneous_capacities,
    uniform_capacities,
    uniform_requests,
)

__all__ = ["GeneratorConfig", "TreeGenerator", "generate_tree", "generate_campaign"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of a random tree draw.

    Parameters
    ----------
    size:
        Target problem size ``s = |C| + |N|``.
    target_load:
        Desired load factor ``lambda``.
    homogeneous:
        Single server class (``True``) or mixed classes (``False``).
    base_capacity:
        Capacity of the single class on homogeneous platforms.
    capacity_choices:
        Server classes drawn from on heterogeneous platforms.
    client_fraction:
        Fraction of the ``size`` elements that are clients.
    max_children:
        Maximum number of *internal* children per internal node (clients do
        not count against the limit).
    client_attachment:
        ``"spread"`` (default) attaches clients to the internal nodes without
        internal children, balancing the number of clients per node -- the
        natural shape of a distribution tree whose end users are spread over
        the edge servers; ``"leaves"`` picks a random edge node per client;
        ``"uniform"`` lets any internal node (including the root) have client
        children, which produces markedly harder instances for the top-down
        heuristics.
    request_low, request_high:
        Range of the raw per-client request draw before rescaling to the
        target load.
    qos_hops:
        When set, every client receives a hop-count QoS bound drawn
        uniformly from this inclusive range (used by the QoS extension
        experiments); ``None`` leaves QoS unbounded.
    link_comm_time:
        Communication time attached to every link.
    link_bandwidth:
        When set, every link carries this finite bandwidth (used by the
        bandwidth-constrained LP experiments and benchmarks); ``None``
        leaves links uncapacitated (``math.inf``).
    """

    size: int = 50
    target_load: float = 0.5
    homogeneous: bool = True
    base_capacity: float = 100.0
    capacity_choices: Sequence[float] = (50.0, 100.0, 200.0, 400.0)
    client_fraction: float = 0.7
    max_children: int = 3
    client_attachment: str = "spread"
    request_low: int = 1
    request_high: int = 20
    qos_hops: Optional[Tuple[int, int]] = None
    link_comm_time: float = 1.0
    link_bandwidth: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size < 3:
            raise ValueError("a meaningful instance needs at least 3 elements")
        if not 0.0 < self.target_load:
            raise ValueError("target_load must be positive")
        if not 0.0 < self.client_fraction < 1.0:
            raise ValueError("client_fraction must lie strictly between 0 and 1")
        if self.max_children < 1:
            raise ValueError("max_children must be at least 1")
        if self.client_attachment not in ("spread", "leaves", "uniform"):
            raise ValueError(
                "client_attachment must be 'spread' (balanced over the deepest "
                "internal nodes), 'leaves' (random over the deepest internal "
                "nodes) or 'uniform' (any internal node)"
            )
        if not 1 <= self.request_low <= self.request_high:
            raise ValueError("request_low/request_high must satisfy 1 <= low <= high")
        if self.link_bandwidth is not None and self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive (or None)")


class TreeGenerator:
    """Seeded random generator of :class:`~repro.core.tree.TreeNetwork` instances."""

    def __init__(self, seed: Optional[int] = None):
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def generate(
        self,
        config: GeneratorConfig,
        *,
        request_sampler: Optional[Callable[[np.random.Generator, int], np.ndarray]] = None,
    ) -> TreeNetwork:
        """Draw one random tree matching ``config``."""
        rng = self.rng
        n_clients = max(1, int(round(config.size * config.client_fraction)))
        n_nodes = max(2, config.size - n_clients)
        n_clients = max(1, config.size - n_nodes)

        # --- topology over internal nodes (random recursive tree) -------- #
        node_names = [f"n{i}" for i in range(n_nodes)]
        parent_of: Dict[str, Optional[str]] = {node_names[0]: None}
        child_count = {name: 0 for name in node_names}
        for index in range(1, n_nodes):
            candidates = [
                name
                for name in node_names[:index]
                if child_count[name] < config.max_children
            ]
            if not candidates:
                candidates = node_names[:index]
            parent = candidates[int(rng.integers(len(candidates)))]
            parent_of[node_names[index]] = parent
            child_count[parent] += 1

        # --- attach clients ---------------------------------------------- #
        # "leaves" attaches clients below the internal nodes that have no
        # internal children (the natural shape of a distribution tree, where
        # end users hang off the edge of the hierarchy); "uniform" allows any
        # internal node, including the root, to have client children.
        client_names = [f"c{i}" for i in range(n_clients)]
        if config.client_attachment in ("leaves", "spread"):
            attachment_pool = [
                name for name in node_names if child_count[name] == 0
            ] or node_names
        else:
            attachment_pool = node_names
        client_parent: Dict[str, str] = {}
        if config.client_attachment == "spread":
            # Balance the number of clients per edge node: every client goes
            # to one of the currently least-loaded pool nodes.
            load = {name: 0 for name in attachment_pool}
            for name in client_names:
                smallest = min(load.values())
                lightest = [n for n in attachment_pool if load[n] == smallest]
                chosen = lightest[int(rng.integers(len(lightest)))]
                client_parent[name] = chosen
                load[chosen] += 1
        else:
            for name in client_names:
                client_parent[name] = attachment_pool[int(rng.integers(len(attachment_pool)))]

        # --- capacities --------------------------------------------------- #
        if config.homogeneous:
            capacities = uniform_capacities(rng, n_nodes, capacity=config.base_capacity)
        else:
            capacities = heterogeneous_capacities(
                rng, n_nodes, choices=config.capacity_choices
            )
        total_capacity = float(np.sum(capacities))

        # --- requests scaled to the target load --------------------------- #
        if request_sampler is not None:
            sampler = request_sampler
        else:
            def sampler(generator, count):
                return uniform_requests(
                    generator, count, low=config.request_low, high=config.request_high
                )
        raw = np.asarray(sampler(rng, n_clients), dtype=float)
        if np.sum(raw) <= 0:
            raw = np.ones(n_clients)
        requests = _scale_to_total(raw, config.target_load * total_capacity)

        # --- QoS bounds ---------------------------------------------------- #
        qos_bounds: Dict[str, float] = {}
        if config.qos_hops is not None:
            low, high = config.qos_hops
            for name in client_names:
                qos_bounds[name] = float(rng.integers(low, high + 1))

        # --- assemble ------------------------------------------------------ #
        nodes = [
            InternalNode(id=name, capacity=float(capacity))
            for name, capacity in zip(node_names, capacities)
        ]
        clients = [
            Client(
                id=name,
                requests=float(requests[i]),
                qos=qos_bounds.get(name, math.inf),
            )
            for i, name in enumerate(client_names)
        ]
        bandwidth = (
            math.inf if config.link_bandwidth is None else float(config.link_bandwidth)
        )
        links = [
            Link(
                child=name,
                parent=parent,
                comm_time=config.link_comm_time,
                bandwidth=bandwidth,
            )
            for name, parent in parent_of.items()
            if parent is not None
        ]
        links.extend(
            Link(
                child=name,
                parent=client_parent[name],
                comm_time=config.link_comm_time,
                bandwidth=bandwidth,
            )
            for name in client_names
        )
        return TreeNetwork(nodes, clients, links)

    # ------------------------------------------------------------------ #
    def generate_many(
        self, config: GeneratorConfig, count: int, **kwargs
    ) -> List[TreeNetwork]:
        """Draw ``count`` independent trees with the same configuration."""
        return [self.generate(config, **kwargs) for _ in range(count)]


def _scale_to_total(raw: np.ndarray, target_total: float) -> np.ndarray:
    """Rescale ``raw`` to integers summing to ``round(target_total)``.

    Largest-remainder rounding keeps the realised load as close as possible
    to the requested ``lambda`` while producing integer request counts (the
    paper's requests are integral).  Every client keeps at least one request
    whenever the target allows it.
    """
    target = int(round(target_total))
    if target <= 0:
        return np.zeros_like(raw)
    scaled = raw / raw.sum() * target
    floors = np.floor(scaled).astype(int)
    remainder = target - int(floors.sum())
    if remainder > 0:
        order = np.argsort(-(scaled - floors))
        floors[order[:remainder]] += 1
    # Avoid zero-request clients when possible: shift one request from the
    # largest client to each empty one.
    for index in np.where(floors == 0)[0]:
        donor = int(np.argmax(floors))
        if floors[donor] > 1:
            floors[donor] -= 1
            floors[index] += 1
    return floors.astype(float)


def generate_tree(
    *,
    size: int = 50,
    target_load: float = 0.5,
    homogeneous: bool = True,
    seed: Optional[int] = None,
    **config_kwargs,
) -> TreeNetwork:
    """One-shot convenience wrapper around :class:`TreeGenerator`."""
    config = GeneratorConfig(
        size=size, target_load=target_load, homogeneous=homogeneous, **config_kwargs
    )
    return TreeGenerator(seed).generate(config)


def generate_campaign(
    *,
    lambdas: Iterable[float] = tuple(round(0.1 * k, 1) for k in range(1, 10)),
    trees_per_lambda: int = 30,
    size_range: Tuple[int, int] = (15, 400),
    homogeneous: bool = True,
    seed: Optional[int] = 2007,
    **config_kwargs,
) -> List[Tuple[float, TreeNetwork]]:
    """Generate the full experimental campaign of paper Section 7.2.

    Returns a list of ``(lambda, tree)`` pairs: ``trees_per_lambda`` random
    trees for every load value, with sizes drawn uniformly from
    ``size_range``.  The default parameters match the paper (9 load values,
    30 trees each, sizes 15-400); benchmarks use smaller values to stay
    laptop-friendly and expose these knobs.
    """
    generator = TreeGenerator(seed)
    low, high = size_range
    campaign: List[Tuple[float, TreeNetwork]] = []
    for load in lambdas:
        for _ in range(trees_per_lambda):
            size = int(generator.rng.integers(low, high + 1))
            config = GeneratorConfig(
                size=size,
                target_load=float(load),
                homogeneous=homogeneous,
                **config_kwargs,
            )
            campaign.append((float(load), generator.generate(config)))
    return campaign
