"""Random tree generator for the experiment campaigns.

Paper Section 7.2 evaluates the heuristics on randomly generated trees with

* problem size ``15 <= s <= 400`` (``s = |C| + |N|``),
* a target load ``lambda = sum_i r_i / sum_j W_j`` swept from 0.1 to 0.9,
* homogeneous or heterogeneous node capacities.

The authors' generator is not published; :class:`TreeGenerator` reproduces
those structural knobs with a seeded :class:`numpy.random.Generator`:

1. a random recursive tree is drawn over the internal nodes (every new node
   attaches to a uniformly-chosen existing node, subject to a branching
   limit);
2. every client leaf attaches to a uniformly-chosen internal node;
3. capacities are homogeneous (a single server class) or drawn from a small
   set of server classes;
4. request rates are drawn from a pluggable distribution and then rescaled
   (largest-remainder rounding) so the realised load matches the requested
   ``lambda`` exactly up to integer rounding.

Because results in the paper are reported as per-``lambda`` aggregates over
30 random trees, matching the distribution parameters is what matters for
reproducing the figures, not matching the authors' exact instances.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tree import Client, InternalNode, Link, TreeNetwork
from repro.workloads.distributions import (
    heterogeneous_capacities,
    uniform_capacities,
    uniform_requests,
)

__all__ = [
    "GeneratorConfig",
    "TreeGenerator",
    "generate_tree",
    "large_tree",
    "generate_campaign",
]


class _OrderedSampler:
    """Select-by-rank over a dynamic subset of ``0..n-1``, in position order.

    A Fenwick tree of membership bits: ``select(k)`` returns the position of
    the ``k``-th member (0-based, ascending position), ``add``/``discard``
    flip membership -- all ``O(log n)``.  The generator loops below use it to
    replace ``O(n)`` "filter the prefix, then index into it" scans while
    drawing *exactly* the same elements for the same rng stream (the member
    count and the rank-to-element mapping match the filtered list they
    replace).
    """

    __slots__ = ("_n", "_tree", "_member", "_count")

    def __init__(self, n: int) -> None:
        self._n = n
        self._tree = [0] * (n + 1)
        self._member = [False] * n
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, position: int) -> bool:
        return self._member[position]

    def _update(self, position: int, delta: int) -> None:
        index = position + 1
        while index <= self._n:
            self._tree[index] += delta
            index += index & (-index)

    def add(self, position: int) -> None:
        if not self._member[position]:
            self._member[position] = True
            self._count += 1
            self._update(position, 1)

    def discard(self, position: int) -> None:
        if self._member[position]:
            self._member[position] = False
            self._count -= 1
            self._update(position, -1)

    def select(self, rank: int) -> int:
        """Position of the ``rank``-th member (0-based, ascending)."""
        if not 0 <= rank < self._count:
            raise IndexError(rank)
        target = rank + 1
        position = 0
        bit = 1 << (self._n.bit_length())
        while bit:
            nxt = position + bit
            if nxt <= self._n and self._tree[nxt] < target:
                target -= self._tree[nxt]
                position = nxt
            bit >>= 1
        return position  # 0-based: `position` 1-past-the-prefix minus one


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of a random tree draw.

    Parameters
    ----------
    size:
        Target problem size ``s = |C| + |N|``.
    target_load:
        Desired load factor ``lambda``.
    homogeneous:
        Single server class (``True``) or mixed classes (``False``).
    base_capacity:
        Capacity of the single class on homogeneous platforms.
    capacity_choices:
        Server classes drawn from on heterogeneous platforms.
    client_fraction:
        Fraction of the ``size`` elements that are clients.
    max_children:
        Maximum number of *internal* children per internal node (clients do
        not count against the limit).
    client_attachment:
        ``"spread"`` (default) attaches clients to the internal nodes without
        internal children, balancing the number of clients per node -- the
        natural shape of a distribution tree whose end users are spread over
        the edge servers; ``"leaves"`` picks a random edge node per client;
        ``"uniform"`` lets any internal node (including the root) have client
        children, which produces markedly harder instances for the top-down
        heuristics.
    request_low, request_high:
        Range of the raw per-client request draw before rescaling to the
        target load.
    qos_hops:
        When set, every client receives a hop-count QoS bound drawn
        uniformly from this inclusive range (used by the QoS extension
        experiments); ``None`` leaves QoS unbounded.
    link_comm_time:
        Communication time attached to every link.
    link_bandwidth:
        When set, every link carries this finite bandwidth (used by the
        bandwidth-constrained LP experiments and benchmarks); ``None``
        leaves links uncapacitated (``math.inf``).
    link_metrics:
        When ``True``, every link is annotated with multi-metric QoS
        attributes (:class:`~repro.qos.metrics.QoSMetrics`: latency
        jittered around ``link_comm_time``, plus jitter/loss/bandwidth
        draws via :func:`repro.qos.metrics.annotate_tree`), ready for
        :class:`~repro.core.constraints.ClassedConstraintSet` instances.
    """

    size: int = 50
    target_load: float = 0.5
    homogeneous: bool = True
    base_capacity: float = 100.0
    capacity_choices: Sequence[float] = (50.0, 100.0, 200.0, 400.0)
    client_fraction: float = 0.7
    max_children: int = 3
    client_attachment: str = "spread"
    request_low: int = 1
    request_high: int = 20
    qos_hops: Optional[Tuple[int, int]] = None
    link_comm_time: float = 1.0
    link_bandwidth: Optional[float] = None
    link_metrics: bool = False

    def __post_init__(self) -> None:
        if self.size < 3:
            raise ValueError("a meaningful instance needs at least 3 elements")
        if not 0.0 < self.target_load:
            raise ValueError("target_load must be positive")
        if not 0.0 < self.client_fraction < 1.0:
            raise ValueError("client_fraction must lie strictly between 0 and 1")
        if self.max_children < 1:
            raise ValueError("max_children must be at least 1")
        if self.client_attachment not in ("spread", "leaves", "uniform"):
            raise ValueError(
                "client_attachment must be 'spread' (balanced over the deepest "
                "internal nodes), 'leaves' (random over the deepest internal "
                "nodes) or 'uniform' (any internal node)"
            )
        if not 1 <= self.request_low <= self.request_high:
            raise ValueError("request_low/request_high must satisfy 1 <= low <= high")
        if self.link_bandwidth is not None and self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive (or None)")


class TreeGenerator:
    """Seeded random generator of :class:`~repro.core.tree.TreeNetwork` instances."""

    def __init__(self, seed: Optional[int] = None):
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def generate(
        self,
        config: GeneratorConfig,
        *,
        request_sampler: Optional[Callable[[np.random.Generator, int], np.ndarray]] = None,
    ) -> TreeNetwork:
        """Draw one random tree matching ``config``."""
        rng = self.rng
        n_clients = max(1, int(round(config.size * config.client_fraction)))
        n_nodes = max(2, config.size - n_clients)
        n_clients = max(1, config.size - n_nodes)

        # --- topology over internal nodes (random recursive tree) -------- #
        # The candidate pool is "nodes already drawn that still have a free
        # child slot, in draw order"; the sampler keeps it under O(log n)
        # per node where rebuilding the filtered prefix would be O(n).  The
        # pool can never drain (a newly added node always has free slots
        # with max_children >= 1), so the legacy all-full fallback is kept
        # only as a guard.
        node_names = [f"n{i}" for i in range(n_nodes)]
        parent_of: Dict[str, Optional[str]] = {node_names[0]: None}
        child_count = {name: 0 for name in node_names}
        open_nodes = _OrderedSampler(n_nodes)
        open_nodes.add(0)
        for index in range(1, n_nodes):
            if len(open_nodes):
                choice = int(rng.integers(len(open_nodes)))
                parent_index = open_nodes.select(choice)
            else:  # pragma: no cover - unreachable with max_children >= 1
                parent_index = int(rng.integers(index))
            parent = node_names[parent_index]
            parent_of[node_names[index]] = parent
            child_count[parent] += 1
            if child_count[parent] >= config.max_children:
                open_nodes.discard(parent_index)
            open_nodes.add(index)

        # --- attach clients ---------------------------------------------- #
        # "leaves" attaches clients below the internal nodes that have no
        # internal children (the natural shape of a distribution tree, where
        # end users hang off the edge of the hierarchy); "uniform" allows any
        # internal node, including the root, to have client children.
        client_names = [f"c{i}" for i in range(n_clients)]
        if config.client_attachment in ("leaves", "spread"):
            attachment_pool = [
                name for name in node_names if child_count[name] == 0
            ] or node_names
        else:
            attachment_pool = node_names
        client_parent: Dict[str, str] = {}
        if config.client_attachment == "spread":
            # Balance the number of clients per edge node: every client goes
            # to one of the currently least-loaded pool nodes.  Those are
            # exactly the pool nodes not yet drawn at the current load level
            # (in pool order), so one sampler drained level by level -- and
            # refilled with the whole pool when a level completes -- replaces
            # the O(|pool|) min-and-filter scan per client.
            lightest = _OrderedSampler(len(attachment_pool))
            for position in range(len(attachment_pool)):
                lightest.add(position)
            for name in client_names:
                choice = int(rng.integers(len(lightest)))
                position = lightest.select(choice)
                client_parent[name] = attachment_pool[position]
                lightest.discard(position)
                if not len(lightest):
                    for refill in range(len(attachment_pool)):
                        lightest.add(refill)
        else:
            for name in client_names:
                client_parent[name] = attachment_pool[int(rng.integers(len(attachment_pool)))]

        # --- capacities --------------------------------------------------- #
        if config.homogeneous:
            capacities = uniform_capacities(rng, n_nodes, capacity=config.base_capacity)
        else:
            capacities = heterogeneous_capacities(
                rng, n_nodes, choices=config.capacity_choices
            )
        total_capacity = float(np.sum(capacities))

        # --- requests scaled to the target load --------------------------- #
        if request_sampler is not None:
            sampler = request_sampler
        else:
            def sampler(generator, count):
                return uniform_requests(
                    generator, count, low=config.request_low, high=config.request_high
                )
        raw = np.asarray(sampler(rng, n_clients), dtype=float)
        if np.sum(raw) <= 0:
            raw = np.ones(n_clients)
        requests = _scale_to_total(raw, config.target_load * total_capacity)

        # --- QoS bounds ---------------------------------------------------- #
        qos_bounds: Dict[str, float] = {}
        if config.qos_hops is not None:
            low, high = config.qos_hops
            for name in client_names:
                qos_bounds[name] = float(rng.integers(low, high + 1))

        # --- assemble ------------------------------------------------------ #
        nodes = [
            InternalNode(id=name, capacity=float(capacity))
            for name, capacity in zip(node_names, capacities)
        ]
        clients = [
            Client(
                id=name,
                requests=float(requests[i]),
                qos=qos_bounds.get(name, math.inf),
            )
            for i, name in enumerate(client_names)
        ]
        bandwidth = (
            math.inf if config.link_bandwidth is None else float(config.link_bandwidth)
        )
        links = [
            Link(
                child=name,
                parent=parent,
                comm_time=config.link_comm_time,
                bandwidth=bandwidth,
            )
            for name, parent in parent_of.items()
            if parent is not None
        ]
        links.extend(
            Link(
                child=name,
                parent=client_parent[name],
                comm_time=config.link_comm_time,
                bandwidth=bandwidth,
            )
            for name in client_names
        )
        tree = TreeNetwork(nodes, clients, links)
        if config.link_metrics:
            from repro.qos.metrics import annotate_tree

            # The annotation seed comes from this generator's stream, so one
            # TreeGenerator seed still pins the whole draw.
            tree = annotate_tree(tree, seed=int(rng.integers(2**31)))
        return tree

    # ------------------------------------------------------------------ #
    def generate_many(
        self, config: GeneratorConfig, count: int, **kwargs
    ) -> List[TreeNetwork]:
        """Draw ``count`` independent trees with the same configuration."""
        return [self.generate(config, **kwargs) for _ in range(count)]


def _scale_to_total(raw: np.ndarray, target_total: float) -> np.ndarray:
    """Rescale ``raw`` to integers summing to ``round(target_total)``.

    Largest-remainder rounding keeps the realised load as close as possible
    to the requested ``lambda`` while producing integer request counts (the
    paper's requests are integral).  Every client keeps at least one request
    whenever the target allows it.
    """
    target = int(round(target_total))
    if target <= 0:
        return np.zeros_like(raw)
    scaled = raw / raw.sum() * target
    floors = np.floor(scaled).astype(int)
    remainder = target - int(floors.sum())
    if remainder > 0:
        order = np.argsort(-(scaled - floors))
        floors[order[:remainder]] += 1
    # Avoid zero-request clients when possible: shift one request from the
    # largest client to each empty one.  A lazy max-heap keyed
    # ``(-value, index)`` stands in for the per-empty-client ``np.argmax``
    # scan: it yields the same donor (largest value, first index on ties)
    # and running dry means every remaining value is <= 1, where the scan
    # version stopped transferring too.
    donors = [(-int(value), int(i)) for i, value in enumerate(floors) if value > 1]
    heapq.heapify(donors)
    for index in np.where(floors == 0)[0]:
        donor = None
        while donors:
            neg_value, candidate = donors[0]
            if floors[candidate] != -neg_value:  # stale entry
                heapq.heappop(donors)
                continue
            donor = candidate
            break
        if donor is None:
            break
        floors[donor] -= 1
        floors[index] += 1
        heapq.heappop(donors)  # the donor's (validated) top entry
        if floors[donor] > 1:
            heapq.heappush(donors, (-int(floors[donor]), donor))
    return floors.astype(float)


def generate_tree(
    *,
    size: int = 50,
    target_load: float = 0.5,
    homogeneous: bool = True,
    seed: Optional[int] = None,
    **config_kwargs,
) -> TreeNetwork:
    """One-shot convenience wrapper around :class:`TreeGenerator`."""
    config = GeneratorConfig(
        size=size, target_load=target_load, homogeneous=homogeneous, **config_kwargs
    )
    return TreeGenerator(seed).generate(config)


def large_tree(
    n_clients: int = 100_000,
    *,
    target_load: float = 0.5,
    client_fraction: float = 0.9,
    seed: Optional[int] = 7,
    **config_kwargs,
) -> TreeNetwork:
    """A distribution tree with (exactly) ``n_clients`` client leaves.

    The scaling-up entry point: the generator's draw loops are
    ``O(size log size)`` (see :class:`_OrderedSampler`), so a 10^5-client
    tree builds in seconds -- the regime the sharded solve path
    (:func:`repro.algorithms.sharded.solve_sharded`) is built for.  The
    default ``client_fraction=0.9`` keeps the internal hierarchy an order
    of magnitude smaller than the client population, the shape of a real
    edge-distribution tree; all other :class:`GeneratorConfig` knobs pass
    through.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    n_internal = max(2, int(round(n_clients * (1.0 - client_fraction) / client_fraction)))
    size = n_clients + n_internal
    config = GeneratorConfig(
        size=size,
        target_load=target_load,
        client_fraction=n_clients / size,
        **config_kwargs,
    )
    return TreeGenerator(seed).generate(config)


def generate_campaign(
    *,
    lambdas: Iterable[float] = tuple(round(0.1 * k, 1) for k in range(1, 10)),
    trees_per_lambda: int = 30,
    size_range: Tuple[int, int] = (15, 400),
    homogeneous: bool = True,
    seed: Optional[int] = 2007,
    **config_kwargs,
) -> List[Tuple[float, TreeNetwork]]:
    """Generate the full experimental campaign of paper Section 7.2.

    Returns a list of ``(lambda, tree)`` pairs: ``trees_per_lambda`` random
    trees for every load value, with sizes drawn uniformly from
    ``size_range``.  The default parameters match the paper (9 load values,
    30 trees each, sizes 15-400); benchmarks use smaller values to stay
    laptop-friendly and expose these knobs.
    """
    generator = TreeGenerator(seed)
    low, high = size_range
    campaign: List[Tuple[float, TreeNetwork]] = []
    for load in lambdas:
        for _ in range(trees_per_lambda):
            size = int(generator.rng.integers(low, high + 1))
            config = GeneratorConfig(
                size=size,
                target_load=float(load),
                homogeneous=homogeneous,
                **config_kwargs,
            )
            campaign.append((float(load), generator.generate(config)))
    return campaign
