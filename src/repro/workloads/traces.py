"""Trace-driven workloads: ingest real request logs, detect epochs, replay.

Every other workload in this package is synthetic: the generators of
:mod:`repro.workloads.dynamic` fabricate epoch trajectories from parametric
rate functions, and the load harness samples arrivals from hand-written
intensities.  This module closes the loop with **real timestamped request
logs**: a production access log (CSV or JSONL, optionally gzipped) becomes
the exact epoch trajectories and open-loop arrival schedules the rest of
the stack already consumes.

The pipeline has three stages:

**Ingest**
    :class:`Trace` holds the log as sorted parallel arrays -- timestamps,
    categorical client codes and per-event weights -- parsed by
    :meth:`Trace.from_csv` / :meth:`Trace.from_jsonl` (stdlib parsers,
    strict validation: malformed rows, non-finite values and out-of-order
    timestamps raise :class:`~repro.core.exceptions.TraceFormatError`
    naming the offending line).  :class:`TimeIndexer` wraps the sorted
    timestamp array with the sample-by-timestamp / slice-by-time-range /
    binned-count queries (all ``searchsorted``) that every later stage
    runs on.

**Epoch detection**
    :func:`detect_epochs` places epoch boundaries where traffic actually
    moves: per-bin event mass feeds a sliding-window mean-shift score (a
    Poisson z-statistic of the left-vs-right window means, combined with
    weight-share-weighted per-client scores so antiphase client shifts
    that conserve total rate are still caught) and a greedy changepoint
    pass accepts boundaries in score order under a minimum-segment guard.  :func:`fixed_epochs` is the deterministic
    equal-width fallback.  Both estimate piecewise-constant per-client
    rates per epoch and return a :class:`TraceEpochs`, whose
    :meth:`~TraceEpochs.problems` emits the epoch sequence as
    :class:`~repro.core.problem.ReplicaPlacementProblem` forks built with
    :meth:`~repro.core.tree.TreeNetwork.with_requests` -- structure-shared
    trajectories that feed
    :class:`~repro.algorithms.incremental.IncrementalResolver` and
    :meth:`~repro.session.PlacementSession.update` unchanged.

**Replay**
    :meth:`TraceEpochs.arrival_schedule` reconstructs the piecewise
    constant total intensity and samples within-epoch micro-burst arrivals
    with the exact inversion sampler
    (:func:`~repro.workloads.distributions.inversion_poisson_arrivals`),
    optionally rescaled to a target horizon and mean rate -- the schedule
    behind ``repro loadtest --trace``; ``repro dynamic --trace`` replays
    the epoch problems through the incremental resolver and
    :func:`~repro.simulation.request_flow.simulate_sequence`.

:func:`sample_trace` is the synthetic-trace **exporter**: it samples a log
from any rate-only trajectory, so ``estimate(export(trajectory))`` is a
round-trip property (re-detected boundaries and re-estimated rates match
the generating trajectory within Poisson tolerance) -- the test that pins
the whole pipeline.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.exceptions import TraceFormatError, WorkloadError
from repro.core.problem import ReplicaPlacementProblem
from repro.core.results import ResultBase, decode_float, encode_float, register_result
from repro.core.tree import NodeId, TreeNetwork
from repro.workloads.distributions import inversion_poisson_arrivals
from repro.workloads.dynamic import _epoch_problem, as_base_problem

__all__ = [
    "Trace",
    "TimeIndexer",
    "TraceEpochs",
    "TraceSummary",
    "detect_epochs",
    "fixed_epochs",
    "load_trace",
    "sample_trace",
]

#: Accepted JSONL field names, in lookup order.
_TIME_KEYS = ("t", "time", "timestamp")
_CLIENT_KEYS = ("client", "client_id")
_WEIGHT_KEYS = ("weight", "w")

#: CSV header spellings of the first column that mark row 1 as a header.
_CSV_HEADERS = frozenset(_TIME_KEYS)


# --------------------------------------------------------------------------- #
# time-indexed access over sorted timestamp arrays
# --------------------------------------------------------------------------- #
class TimeIndexer:
    """Query layer over a sorted timestamp array (all ``searchsorted``).

    The access patterns are the three every trace consumer needs:
    *sample-by-timestamp* (:meth:`at` -- which event was current at time
    ``t``), *slice-by-time-range* (:meth:`slice` -- the contiguous run of
    events inside ``[t0, t1)``) and *binned counts* (:meth:`counts` -- one
    histogram pass for epoch detection and rate estimation).
    """

    def __init__(self, times: np.ndarray):
        times = np.asarray(times, dtype=float)
        if times.ndim != 1:
            raise WorkloadError(
                f"timestamps must form a 1-d array, got shape {times.shape}"
            )
        if times.size and not np.all(np.isfinite(times)):
            raise WorkloadError("timestamps must be finite")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise WorkloadError("timestamps must be sorted (non-decreasing)")
        self._times = times

    def __len__(self) -> int:
        return int(self._times.size)

    @property
    def times(self) -> np.ndarray:
        """The underlying sorted timestamp array (not a copy; do not mutate)."""
        return self._times

    def at(self, t: float) -> int:
        """Index of the last event at or before ``t`` (``-1`` when none)."""
        return int(np.searchsorted(self._times, float(t), side="right")) - 1

    def slice(self, t0: float, t1: float) -> slice:
        """The contiguous event range with ``t0 <= time < t1``."""
        start = int(np.searchsorted(self._times, float(t0), side="left"))
        stop = int(np.searchsorted(self._times, float(t1), side="left"))
        return slice(start, max(start, stop))

    def count(self, t0: float, t1: float) -> int:
        """Number of events with ``t0 <= time < t1``."""
        window = self.slice(t0, t1)
        return window.stop - window.start

    def counts(self, edges: Sequence[float]) -> np.ndarray:
        """Per-bin event counts for increasing bin ``edges`` (length k+1).

        Bin ``i`` counts events with ``edges[i] <= time < edges[i+1]``;
        the one-sided convention means an event exactly at the final edge
        is *not* counted (callers that need it, like the epoch-rate
        estimator, clamp separately).
        """
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise WorkloadError("bin edges must hold at least two values")
        if not np.all(np.isfinite(edges)):
            raise WorkloadError("bin edges must be finite")
        if np.any(np.diff(edges) <= 0):
            raise WorkloadError("bin edges must be strictly increasing")
        positions = np.searchsorted(self._times, edges, side="left")
        return np.diff(positions)


# --------------------------------------------------------------------------- #
# the trace itself
# --------------------------------------------------------------------------- #
@dataclass
class Trace:
    """A request log as sorted parallel arrays.

    ``times`` holds the event timestamps (sorted, finite), ``client_codes``
    the per-event index into ``client_ids`` (categorical encoding -- the
    unique client identifiers in first-appearance order), and ``weights``
    the per-event request mass (defaults to 1.0 per event; a pre-aggregated
    log can carry counts).  Build instances through :meth:`from_csv`,
    :meth:`from_jsonl`, :meth:`from_events` or :func:`load_trace`; the
    constructor validates whatever it is given.
    """

    times: np.ndarray
    client_codes: np.ndarray
    weights: np.ndarray
    client_ids: Tuple[NodeId, ...]
    name: Optional[str] = None
    _indexer: Optional[TimeIndexer] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.client_codes = np.asarray(self.client_codes, dtype=np.intp)
        self.weights = np.asarray(self.weights, dtype=float)
        if self.times.size == 0:
            raise TraceFormatError("trace holds no events")
        if not (self.times.size == self.client_codes.size == self.weights.size):
            raise TraceFormatError(
                f"parallel arrays disagree: {self.times.size} times, "
                f"{self.client_codes.size} clients, {self.weights.size} weights"
            )
        if not np.all(np.isfinite(self.times)):
            raise TraceFormatError("timestamps must be finite")
        if self.times.size > 1 and np.any(np.diff(self.times) < 0):
            raise TraceFormatError("timestamps must be sorted (non-decreasing)")
        if not np.all(np.isfinite(self.weights)) or np.any(self.weights <= 0):
            raise TraceFormatError("event weights must be finite and > 0")
        if self.client_codes.size and (
            self.client_codes.min() < 0
            or self.client_codes.max() >= len(self.client_ids)
        ):
            raise TraceFormatError("client codes fall outside client_ids")

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> int:
        """Number of events in the trace."""
        return int(self.times.size)

    @property
    def span(self) -> Tuple[float, float]:
        """``(first, last)`` event timestamps."""
        return float(self.times[0]), float(self.times[-1])

    @property
    def duration(self) -> float:
        """Time between the first and last event."""
        start, end = self.span
        return end - start

    @property
    def total_weight(self) -> float:
        """Total request mass across all events."""
        return float(self.weights.sum())

    def indexer(self) -> TimeIndexer:
        """The (cached) :class:`TimeIndexer` over this trace's timestamps."""
        if self._indexer is None:
            self._indexer = TimeIndexer(self.times)
        return self._indexer

    def iter_events(self) -> Iterator[Tuple[float, NodeId, float]]:
        """Yield ``(time, client_id, weight)`` per event, in time order."""
        for t, code, w in zip(self.times, self.client_codes, self.weights):
            yield float(t), self.client_ids[int(code)], float(w)

    def __repr__(self) -> str:  # keep 100k-event arrays out of tracebacks
        label = f" {self.name!r}" if self.name else ""
        start, end = self.span
        return (
            f"<Trace{label}: {self.events} events, "
            f"{len(self.client_ids)} clients, span [{start:g}, {end:g}]>"
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_events(
        cls,
        records: Iterable[Sequence[Any]],
        *,
        name: Optional[str] = None,
        sort: bool = False,
    ) -> "Trace":
        """Build a trace from ``(time, client[, weight])`` records."""
        times: List[float] = []
        clients: List[Any] = []
        weights: List[float] = []
        for lineno, record in enumerate(records, start=1):
            if len(record) not in (2, 3):
                raise TraceFormatError(
                    f"expected (time, client[, weight]), got {record!r}",
                    line=lineno,
                )
            times.append(record[0])
            clients.append(record[1])
            weights.append(record[2] if len(record) == 3 else 1.0)
        return cls._assemble(times, clients, weights, name=name, sort=sort)

    @classmethod
    def from_csv(
        cls,
        source: Union[str, Path, IO[str]],
        *,
        name: Optional[str] = None,
        sort: bool = False,
    ) -> "Trace":
        """Parse a ``timestamp,client[,weight]`` CSV (gzip-transparent).

        An optional header row is recognised by its first cell spelling one
        of ``t`` / ``time`` / ``timestamp``; any other unparseable row
        raises :class:`TraceFormatError` naming the line.
        """
        with _open_source(source) as stream:
            label = name if name is not None else _source_name(source)
            times: List[str] = []
            clients: List[str] = []
            weights: List[Any] = []
            linenos: List[int] = []
            reader = csv.reader(stream)
            for lineno, row in enumerate(reader, start=1):
                if not row:
                    continue
                if lineno == 1 and row[0].strip().lower() in _CSV_HEADERS:
                    continue
                if len(row) not in (2, 3):
                    raise TraceFormatError(
                        f"expected 2 or 3 columns, got {len(row)}", line=lineno
                    )
                stamp, client = row[0].strip(), row[1].strip()
                if not client:
                    raise TraceFormatError("empty client id", line=lineno)
                try:
                    times.append(_parse_float(stamp))
                    weights.append(_parse_float(row[2]) if len(row) == 3 else 1.0)
                except ValueError as error:
                    raise TraceFormatError(str(error), line=lineno) from None
                clients.append(client)
                linenos.append(lineno)
            return cls._assemble(
                times, clients, weights, name=label, sort=sort, lines=linenos
            )

    @classmethod
    def from_jsonl(
        cls,
        source: Union[str, Path, IO[str]],
        *,
        name: Optional[str] = None,
        sort: bool = False,
    ) -> "Trace":
        """Parse newline-delimited JSON objects (gzip-transparent).

        Each line is an object with a timestamp under ``t``/``time``/
        ``timestamp``, a client id under ``client``/``client_id`` and an
        optional ``weight``/``w``.  Blank lines are skipped; anything else
        malformed raises :class:`TraceFormatError` naming the line.
        """
        with _open_source(source) as stream:
            label = name if name is not None else _source_name(source)
            times: List[Any] = []
            clients: List[Any] = []
            weights: List[Any] = []
            linenos: List[int] = []
            for lineno, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as error:
                    raise TraceFormatError(
                        f"invalid JSON: {error}", line=lineno
                    ) from None
                if not isinstance(record, Mapping):
                    raise TraceFormatError(
                        f"expected a JSON object, got {type(record).__name__}",
                        line=lineno,
                    )
                stamp = _first_key(record, _TIME_KEYS)
                client = _first_key(record, _CLIENT_KEYS)
                if stamp is None:
                    raise TraceFormatError(
                        f"no timestamp field (one of {list(_TIME_KEYS)})",
                        line=lineno,
                    )
                if client is None:
                    raise TraceFormatError(
                        f"no client field (one of {list(_CLIENT_KEYS)})",
                        line=lineno,
                    )
                weight = _first_key(record, _WEIGHT_KEYS)
                try:
                    times.append(_parse_float(stamp))
                    weights.append(1.0 if weight is None else _parse_float(weight))
                except ValueError as error:
                    raise TraceFormatError(str(error), line=lineno) from None
                clients.append(client)
                linenos.append(lineno)
            return cls._assemble(
                times, clients, weights, name=label, sort=sort, lines=linenos
            )

    @classmethod
    def _assemble(
        cls,
        times: Sequence[Any],
        clients: Sequence[Any],
        weights: Sequence[Any],
        *,
        name: Optional[str],
        sort: bool,
        lines: Optional[Sequence[int]] = None,
    ) -> "Trace":
        """Validate parsed columns and encode clients categorically.

        ``lines`` maps event index -> source file line so errors detected
        here (after header/blank rows were skipped) still name the real
        line; without it the 1-based event index stands in.
        """

        def _line(index: int) -> int:
            return int(lines[index]) if lines is not None else index + 1

        stamps = np.asarray(times, dtype=float)
        mass = np.asarray(weights, dtype=float)
        if stamps.size == 0:
            raise TraceFormatError("trace holds no events")
        bad = np.flatnonzero(~np.isfinite(stamps))
        if bad.size:
            raise TraceFormatError(
                f"non-finite timestamp {stamps[bad[0]]!r}", line=_line(int(bad[0]))
            )
        bad = np.flatnonzero(~np.isfinite(mass) | (mass <= 0))
        if bad.size:
            raise TraceFormatError(
                f"event weight must be finite and > 0, got {mass[bad[0]]!r}",
                line=_line(int(bad[0])),
            )
        diffs = np.diff(stamps)
        if stamps.size > 1 and np.any(diffs < 0):
            if sort:
                order = np.argsort(stamps, kind="stable")
                stamps = stamps[order]
                mass = mass[order]
                clients = [clients[i] for i in order]
            else:
                where = int(np.flatnonzero(diffs < 0)[0]) + 1
                raise TraceFormatError(
                    f"timestamp {stamps[where]:g} is earlier than its "
                    f"predecessor {stamps[where - 1]:g} (pass sort=True to "
                    "reorder a shuffled log)",
                    line=_line(where),
                )
        code_of: Dict[Any, int] = {}
        codes = np.empty(stamps.size, dtype=np.intp)
        for index, client in enumerate(clients):
            code = code_of.get(client)
            if code is None:
                code = code_of.setdefault(client, len(code_of))
            codes[index] = code
        return cls(
            times=stamps,
            client_codes=codes,
            weights=mass,
            client_ids=tuple(code_of),
            name=name,
        )

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace as newline-delimited JSON (gzip when ``*.gz``)."""
        with _open_sink(path) as stream:
            for t, client, weight in self.iter_events():
                record: Dict[str, Any] = {"t": t, "client": client}
                if weight != 1.0:
                    record["weight"] = weight
                stream.write(json.dumps(record) + "\n")

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as ``timestamp,client,weight`` CSV (gzip when ``*.gz``)."""
        with _open_sink(path) as stream:
            writer = csv.writer(stream, lineterminator="\n")
            writer.writerow(["timestamp", "client", "weight"])
            for t, client, weight in self.iter_events():
                writer.writerow([repr(t), client, repr(weight)])


def load_trace(
    path: Union[str, Path],
    *,
    format: Optional[str] = None,
    sort: bool = False,
) -> Trace:
    """Load a trace file, dispatching on extension (``format`` overrides).

    ``*.csv`` parses as CSV, ``*.jsonl`` / ``*.ndjson`` / ``*.json`` as
    newline-delimited JSON; a trailing ``.gz`` is transparent (the opener
    sniffs the gzip magic, so a mislabelled compressed file still loads).
    """
    suffixes = [s.lower() for s in Path(path).suffixes]
    if suffixes and suffixes[-1] == ".gz":
        suffixes = suffixes[:-1]
    kind = format
    if kind is None:
        if suffixes and suffixes[-1] == ".csv":
            kind = "csv"
        elif suffixes and suffixes[-1] in (".jsonl", ".ndjson", ".json"):
            kind = "jsonl"
        else:
            raise TraceFormatError(
                f"cannot infer the trace format of {str(path)!r}; pass "
                "format='csv' or format='jsonl'"
            )
    if kind == "csv":
        return Trace.from_csv(path, sort=sort)
    if kind == "jsonl":
        return Trace.from_jsonl(path, sort=sort)
    raise TraceFormatError(f"unknown trace format {kind!r} (csv or jsonl)")


# --------------------------------------------------------------------------- #
# epoch detection and rate estimation
# --------------------------------------------------------------------------- #
@dataclass
class TraceEpochs:
    """Piecewise-constant epoch model estimated from a trace.

    ``boundaries`` holds the ``k + 1`` increasing epoch edges spanning the
    trace, ``rates`` the estimated per-epoch per-client request rates
    (``(k, len(trace.client_ids))``, weighted events per time unit) and
    ``method`` how the boundaries were placed (``"detected"`` or
    ``"fixed"``).
    """

    trace: Trace
    boundaries: np.ndarray
    rates: np.ndarray
    method: str

    @property
    def epoch_count(self) -> int:
        return int(self.boundaries.size - 1)

    @property
    def client_ids(self) -> Tuple[NodeId, ...]:
        return self.trace.client_ids

    @property
    def widths(self) -> np.ndarray:
        """Per-epoch durations."""
        return np.diff(self.boundaries)

    @property
    def total_rates(self) -> np.ndarray:
        """Per-epoch total request rate (all clients)."""
        return self.rates.sum(axis=1)

    @property
    def mean_rate(self) -> float:
        """Time-weighted mean total rate over the whole span."""
        widths = self.widths
        return float((self.total_rates * widths).sum() / widths.sum())

    # ------------------------------------------------------------------ #
    def problems(
        self,
        base: Union[TreeNetwork, ReplicaPlacementProblem],
        *,
        rate_scale: float = 1.0,
        integral: bool = True,
    ) -> List[ReplicaPlacementProblem]:
        """The epoch sequence as structure-shared problem forks over ``base``.

        Epoch ``t`` is a :meth:`~repro.core.tree.TreeNetwork.with_requests`
        fork of the previous epoch's tree carrying the estimated rates
        (scaled by ``rate_scale`` and, by default, rounded to the integral
        request model), so consecutive epochs share every structural cache
        and feed the incremental resolver exactly like the synthetic
        trajectory generators.  Clients of ``base`` absent from the trace
        run at rate 0; trace clients unknown to the tree raise
        :class:`TraceFormatError`.
        """
        if not np.isfinite(rate_scale) or rate_scale <= 0:
            raise WorkloadError(f"rate_scale must be finite and > 0, got {rate_scale}")
        problem = as_base_problem(base)
        tree = problem.tree
        known = set(tree.client_ids)
        unknown = [cid for cid in self.client_ids if cid not in known]
        if unknown:
            shown = ", ".join(repr(cid) for cid in unknown[:5])
            more = f" (+{len(unknown) - 5} more)" if len(unknown) > 5 else ""
            raise TraceFormatError(
                f"trace clients not in the target tree: {shown}{more}"
            )
        silent = {
            cid: 0.0 for cid in tree.client_ids if cid not in set(self.client_ids)
        }
        sequence: List[ReplicaPlacementProblem] = []
        current = tree
        for t in range(self.epoch_count):
            updates = dict(silent)
            for j, cid in enumerate(self.client_ids):
                value = float(self.rates[t, j]) * rate_scale
                updates[cid] = (
                    float(max(0, round(value))) if integral else float(value)
                )
            current = current.with_requests(updates)
            sequence.append(_epoch_problem(problem, current, t))
        return sequence

    def intensity(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(breakpoints, rates)`` of the total piecewise-constant intensity.

        Directly consumable by :func:`~repro.workloads.distributions.
        inversion_poisson_arrivals`.
        """
        return self.boundaries.copy(), self.total_rates

    def arrival_schedule(
        self,
        rng: np.random.Generator,
        *,
        horizon: Optional[float] = None,
        mean_rate: Optional[float] = None,
    ) -> np.ndarray:
        """Sample a replay arrival schedule from the estimated intensity.

        The piecewise-constant total intensity is rebased to start at 0,
        optionally compressed/stretched so the span becomes ``horizon``
        (per-epoch *expected counts* are preserved), optionally rescaled so
        the time-weighted mean rate becomes ``mean_rate``, and sampled with
        the exact inversion method -- genuine micro-bursts at epoch
        transitions instead of a metronome.
        """
        edges = self.boundaries - self.boundaries[0]
        levels = self.total_rates.astype(float).copy()
        span = float(edges[-1])
        if horizon is not None:
            horizon = float(horizon)
            if not np.isfinite(horizon) or horizon <= 0:
                raise WorkloadError(
                    f"horizon must be finite and > 0, got {horizon}"
                )
            scale = horizon / span
            edges = edges * scale
            levels = levels / scale
        if mean_rate is not None:
            mean_rate = float(mean_rate)
            if not np.isfinite(mean_rate) or mean_rate <= 0:
                raise WorkloadError(
                    f"mean_rate must be finite and > 0, got {mean_rate}"
                )
            widths = np.diff(edges)
            current = float((levels * widths).sum() / widths.sum())
            if current > 0:
                levels = levels * (mean_rate / current)
        return inversion_poisson_arrivals(rng, edges, levels)

    # ------------------------------------------------------------------ #
    def summary(self, *, path: Optional[str] = None) -> "TraceSummary":
        """The registered :class:`TraceSummary` result for this model."""
        indexer = self.trace.indexer()
        k = self.epoch_count
        spans = np.clip(
            np.searchsorted(self.boundaries, self.trace.times, side="right") - 1,
            0,
            k - 1,
        )
        counts = np.bincount(spans, minlength=k)
        epochs: List[Dict[str, Any]] = []
        for t in range(k):
            order = np.argsort(self.rates[t])[::-1]
            top = [
                [self.client_ids[int(j)], float(self.rates[t, int(j)])]
                for j in order[:3]
                if self.rates[t, int(j)] > 0
            ]
            epochs.append(
                {
                    "start": float(self.boundaries[t]),
                    "end": float(self.boundaries[t + 1]),
                    "events": int(counts[t]),
                    "rate": float(self.total_rates[t]),
                    "top": top,
                }
            )
        start, end = self.trace.span
        return TraceSummary(
            events=self.trace.events,
            clients=len(self.client_ids),
            start=start,
            end=end,
            total_weight=self.trace.total_weight,
            method=self.method,
            boundaries=[float(b) for b in self.boundaries],
            epochs=epochs,
            path=path,
            name=self.trace.name if path is None else path,
        )


def _estimate_rates(trace: Trace, boundaries: np.ndarray) -> np.ndarray:
    """Weighted per-epoch per-client rates for the given epoch edges.

    Events exactly at the final boundary (the last event of the trace, by
    construction) are clamped into the last epoch so no mass is dropped.
    """
    k = boundaries.size - 1
    n = len(trace.client_ids)
    spans = np.clip(
        np.searchsorted(boundaries, trace.times, side="right") - 1, 0, k - 1
    )
    flat = spans * n + trace.client_codes
    mass = np.bincount(flat, weights=trace.weights, minlength=k * n)
    widths = np.diff(boundaries)
    return mass.reshape(k, n) / widths[:, None]


def fixed_epochs(trace: Trace, epochs: int) -> TraceEpochs:
    """Equal-width epoch model: the deterministic fallback to detection."""
    if epochs < 1:
        raise WorkloadError(f"need at least one epoch, got {epochs}")
    start, end = trace.span
    if not end > start:
        raise WorkloadError(
            "cannot build epochs over a zero-length trace span "
            f"(all {trace.events} events at t={start:g})"
        )
    boundaries = np.linspace(start, end, epochs + 1)
    return TraceEpochs(
        trace=trace,
        boundaries=boundaries,
        rates=_estimate_rates(trace, boundaries),
        method="fixed",
    )


def detect_epochs(
    trace: Trace,
    *,
    bins: Optional[int] = None,
    window: Optional[int] = None,
    threshold: float = 4.0,
    min_segment: Optional[int] = None,
    max_epochs: int = 16,
) -> TraceEpochs:
    """Place epoch boundaries where the trace's traffic actually moves.

    The span is cut into ``bins`` equal bins (default: ``events // 32``
    clamped to ``[8, 256]``) and the per-bin weighted event mass is scored
    at every interior bin edge with a sliding-window mean-shift statistic:
    with ``l`` and ``r`` the mean mass of the ``window`` bins left and
    right of the edge, the score is ``|r - l| / sqrt((l + r + 1) / window)``
    -- a Poisson z-statistic (the ``+ 1`` is a continuity guard for empty
    windows).

    The total-mass statistic is blind to *antiphase* shifts -- two clients
    trading traffic while the aggregate stays flat -- so each edge also
    gets a **weighted per-client score**: the same z-statistic computed on
    each heavy client's own binned mass (the top clients by weight share,
    capped at 32 so a million-client log stays one bincount), combined as
    the weight-share-weighted mean.  An edge's final score is the maximum
    of the total-mass and per-client scores, so a rebalancing boundary that
    conserves total rate still clears ``threshold``.

    A greedy changepoint pass then accepts edges in descending score
    order, subject to ``score >= threshold``, a spacing of at least
    ``min_segment`` bins from every accepted edge and the span ends (the
    minimum-segment guard), and at most ``max_epochs - 1`` cuts.

    A statistically flat trace yields a single epoch.  Boundary resolution
    is one bin width; :func:`fixed_epochs` is the deterministic fallback
    when the epoch grid is known a priori.
    """
    if max_epochs < 1:
        raise WorkloadError(f"max_epochs must be >= 1, got {max_epochs}")
    if not np.isfinite(threshold) or threshold <= 0:
        raise WorkloadError(f"threshold must be finite and > 0, got {threshold}")
    start, end = trace.span
    if not end > start:
        raise WorkloadError(
            "cannot detect epochs over a zero-length trace span "
            f"(all {trace.events} events at t={start:g})"
        )
    if bins is None:
        bins = int(np.clip(trace.events // 32, 8, 256))
    if bins < 2:
        raise WorkloadError(f"need at least two bins, got {bins}")
    if window is None:
        window = max(2, bins // 16)
    window = max(1, min(int(window), bins // 2))
    if min_segment is None:
        min_segment = window
    min_segment = max(1, int(min_segment))

    edges = np.linspace(start, end, bins + 1)
    slots = np.clip(
        np.searchsorted(edges, trace.times, side="right") - 1, 0, bins - 1
    )
    mass = np.bincount(slots, weights=trace.weights, minlength=bins)

    cuts: List[int] = []
    if max_epochs > 1 and bins >= 2 * window:
        prefix = np.concatenate(([0.0], np.cumsum(mass)))
        candidates = np.arange(window, bins - window + 1)
        left = (prefix[candidates] - prefix[candidates - window]) / window
        right = (prefix[candidates + window] - prefix[candidates]) / window
        scores = np.abs(right - left) / np.sqrt((left + right + 1.0) / window)

        # Weighted per-client component: an antiphase shift (clients trade
        # traffic, total stays flat) scores ~0 above, so also score each
        # heavy client's own mass curve and take the share-weighted mean.
        n_clients = len(trace.client_ids)
        if n_clients > 1:
            client_mass = np.bincount(
                trace.client_codes, weights=trace.weights, minlength=n_clients
            )
            heavy = np.argsort(client_mass, kind="stable")[::-1][:32]
            heavy = heavy[client_mass[heavy] > 0]
            if heavy.size > 1:
                shares = client_mass[heavy] / client_mass[heavy].sum()
                rows = np.full(n_clients, -1, dtype=np.intp)
                rows[heavy] = np.arange(heavy.size)
                keep = rows[trace.client_codes] >= 0
                flat = rows[trace.client_codes[keep]] * bins + slots[keep]
                per = np.bincount(
                    flat, weights=trace.weights[keep], minlength=heavy.size * bins
                ).reshape(heavy.size, bins)
                cpre = np.concatenate(
                    (np.zeros((heavy.size, 1)), np.cumsum(per, axis=1)), axis=1
                )
                c_left = (cpre[:, candidates] - cpre[:, candidates - window]) / window
                c_right = (cpre[:, candidates + window] - cpre[:, candidates]) / window
                c_scores = np.abs(c_right - c_left) / np.sqrt(
                    (c_left + c_right + 1.0) / window
                )
                scores = np.maximum(scores, shares @ c_scores)
        for pick in np.argsort(scores, kind="stable")[::-1]:
            if scores[pick] < threshold or len(cuts) >= max_epochs - 1:
                break
            cut = int(candidates[pick])
            if cut < min_segment or cut > bins - min_segment:
                continue
            if all(abs(cut - other) >= min_segment for other in cuts):
                cuts.append(cut)
        cuts.sort()

    boundaries = np.concatenate(([start], edges[cuts], [end]))
    return TraceEpochs(
        trace=trace,
        boundaries=boundaries,
        rates=_estimate_rates(trace, boundaries),
        method="detected",
    )


# --------------------------------------------------------------------------- #
# the synthetic-trace exporter (the round-trip pin)
# --------------------------------------------------------------------------- #
def sample_trace(
    trajectory: Sequence[Union[TreeNetwork, ReplicaPlacementProblem]],
    rng: np.random.Generator,
    *,
    epoch_duration: float = 1.0,
    rate_scale: float = 1.0,
    start: float = 0.0,
    name: Optional[str] = None,
) -> Trace:
    """Sample a synthetic request log from a rate-only epoch trajectory.

    Epoch ``t`` of ``trajectory`` (e.g. the output of the
    :mod:`repro.workloads.dynamic` generators) occupies
    ``[start + t*epoch_duration, start + (t+1)*epoch_duration)``; each
    client's arrivals are an inhomogeneous Poisson process whose
    piecewise-constant intensity is its per-epoch request rate times
    ``rate_scale``, sampled exactly by inversion.  Clients absent from an
    epoch's tree (join/leave trajectories) contribute rate 0 there.

    The inverse of the estimators: ``fixed_epochs(sample_trace(traj), T)``
    recovers the trajectory's boundaries exactly and its rates within
    Poisson tolerance -- the round-trip property the test suite pins.
    """
    problems = [as_base_problem(p) for p in trajectory]
    if not problems:
        raise WorkloadError("trajectory holds no epochs")
    epoch_duration = float(epoch_duration)
    if not np.isfinite(epoch_duration) or epoch_duration <= 0:
        raise WorkloadError(
            f"epoch_duration must be finite and > 0, got {epoch_duration}"
        )
    if not np.isfinite(rate_scale) or rate_scale <= 0:
        raise WorkloadError(f"rate_scale must be finite and > 0, got {rate_scale}")
    client_ids = problems[0].tree.client_ids
    members = [set(p.tree.client_ids) for p in problems]
    breakpoints = float(start) + epoch_duration * np.arange(len(problems) + 1)
    time_parts: List[np.ndarray] = []
    code_parts: List[np.ndarray] = []
    for j, cid in enumerate(client_ids):
        levels = [
            float(p.tree.client(cid).requests) * rate_scale if cid in present else 0.0
            for p, present in zip(problems, members)
        ]
        arrivals = inversion_poisson_arrivals(rng, breakpoints, levels)
        if arrivals.size:
            time_parts.append(arrivals)
            code_parts.append(np.full(arrivals.size, j, dtype=np.intp))
    if not time_parts:
        raise WorkloadError(
            "trajectory rates are all zero; the sampled trace would be empty"
        )
    times = np.concatenate(time_parts)
    codes = np.concatenate(code_parts)
    order = np.argsort(times, kind="stable")
    return Trace(
        times=times[order],
        client_codes=codes[order],
        weights=np.ones(times.size),
        client_ids=tuple(client_ids),
        name=name,
    )


# --------------------------------------------------------------------------- #
# the registered trace summary (repro trace info)
# --------------------------------------------------------------------------- #
@register_result
@dataclass
class TraceSummary(ResultBase):
    """First-class summary of a trace and its estimated epoch model.

    Carries the ingest counters (events, clients, span, total weight) and
    the epoch model (method, boundaries, per-epoch rate table with the top
    clients) -- everything ``repro trace info`` prints, round-trippable
    through the unified result protocol.
    """

    payload_type = "trace_summary"

    events: int
    clients: int
    start: float
    end: float
    total_weight: float
    method: str
    boundaries: List[float]
    epochs: List[Dict[str, Any]]
    path: Optional[str] = None
    name: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def mean_rate(self) -> float:
        """Time-weighted mean total request rate."""
        return self.total_weight / self.duration if self.duration > 0 else 0.0

    def describe(self) -> str:
        label = f"{self.name or 'trace'}: " if (self.name or self.path) else ""
        return (
            f"{label}{self.events} events from {self.clients} clients over "
            f"[{self.start:g}, {self.end:g}] ({self.duration:g} time units), "
            f"{len(self.epochs)} epoch(s) ({self.method}), "
            f"mean rate {self.mean_rate:.1f}/unit"
        )

    def rate_table(self) -> str:
        """Aligned per-epoch rate table (the prose-mode CLI body)."""
        lines = []
        for t, epoch in enumerate(self.epochs):
            top = "  ".join(
                f"{client!r}:{rate:.1f}" for client, rate in epoch.get("top", [])
            )
            lines.append(
                f"epoch {t}: [{epoch['start']:g}, {epoch['end']:g})  "
                f"rate {epoch['rate']:.1f}/unit  "
                f"({epoch['events']} events)"
                + (f"  top {top}" if top else "")
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return self._tagged(
            {
                "events": self.events,
                "clients": self.clients,
                "start": encode_float(self.start),
                "end": encode_float(self.end),
                "total_weight": encode_float(self.total_weight),
                "method": self.method,
                "boundaries": [encode_float(b) for b in self.boundaries],
                "epochs": [
                    {
                        "start": encode_float(e["start"]),
                        "end": encode_float(e["end"]),
                        "events": int(e["events"]),
                        "rate": encode_float(e["rate"]),
                        "top": [
                            [client, encode_float(rate)]
                            for client, rate in e.get("top", [])
                        ],
                    }
                    for e in self.epochs
                ],
                "path": self.path,
                "name": self.name,
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceSummary":
        return cls(
            events=int(payload["events"]),
            clients=int(payload["clients"]),
            start=decode_float(payload["start"]),
            end=decode_float(payload["end"]),
            total_weight=decode_float(payload["total_weight"]),
            method=str(payload["method"]),
            boundaries=[decode_float(b) for b in payload["boundaries"]],
            epochs=[
                {
                    "start": decode_float(e["start"]),
                    "end": decode_float(e["end"]),
                    "events": int(e["events"]),
                    "rate": decode_float(e["rate"]),
                    "top": [
                        [client, decode_float(rate)]
                        for client, rate in e.get("top", [])
                    ],
                }
                for e in payload["epochs"]
            ],
            path=payload.get("path"),
            name=payload.get("name"),
        )


# --------------------------------------------------------------------------- #
# file plumbing (gzip-transparent readers/writers)
# --------------------------------------------------------------------------- #
def _open_source(source: Union[str, Path, IO[str]]) -> IO[str]:
    """Open a path for text reading, decompressing gzip by magic bytes."""
    if hasattr(source, "read"):
        return _NonClosing(source)  # caller owns file objects
    raw = open(source, "rb")
    try:
        magic = raw.read(2)
        raw.seek(0)
        if magic == b"\x1f\x8b":
            return io.TextIOWrapper(
                gzip.GzipFile(fileobj=raw), encoding="utf-8", newline=""
            )
        return io.TextIOWrapper(raw, encoding="utf-8", newline="")
    except Exception:
        raw.close()
        raise


def _open_sink(path: Union[str, Path]) -> IO[str]:
    """Open a path for text writing, gzip-compressing on a ``.gz`` suffix."""
    if str(path).endswith(".gz"):
        return gzip.open(path, "wt", encoding="utf-8", newline="")
    return open(path, "w", encoding="utf-8", newline="")


class _NonClosing:
    """Context wrapper leaving caller-owned streams open on exit."""

    def __init__(self, stream: IO[str]):
        self._stream = stream

    def __enter__(self) -> IO[str]:
        return self._stream

    def __exit__(self, *exc_info: Any) -> None:
        return None


def _source_name(source: Union[str, Path, IO[str]]) -> Optional[str]:
    if isinstance(source, (str, Path)):
        return str(source)
    return getattr(source, "name", None)


def _first_key(record: Mapping[str, Any], keys: Sequence[str]) -> Any:
    for key in keys:
        if key in record:
            return record[key]
    return None


def _parse_float(value: Any) -> float:
    """``float()`` with a message that names the offending value."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(f"not a number: {value!r}") from None
