"""Workload generation: random trees, request distributions, reference trees.

* :mod:`repro.workloads.generator` -- the seeded random tree generator used
  by the experiment campaigns (paper Section 7.2: random trees of size
  ``15 <= s <= 400`` with a target load ``lambda``);
* :mod:`repro.workloads.distributions` -- request/capacity distributions
  used to populate generated trees, plus inhomogeneous-Poisson arrival
  samplers (thinning and inversion) behind the serving load harness;
* :mod:`repro.workloads.reference_trees` -- the hand-built trees of the
  paper's motivating examples and NP-completeness reductions (Figures 1-5,
  7 and 8);
* :mod:`repro.workloads.dynamic` -- request-rate trajectories (steps, ramps,
  seasonal cycles, random churn, client join/leave, capacity incidents)
  turning one base instance into a sequence of epochs for the incremental
  re-solver;
* :mod:`repro.workloads.traces` -- trace-driven workloads: ingest real
  timestamped request logs (CSV/JSONL), detect epoch boundaries where the
  traffic actually moves, estimate per-client rates and replay the trace
  as epoch trajectories and IPPP arrival schedules.
"""

from repro.workloads.generator import (
    GeneratorConfig,
    TreeGenerator,
    generate_tree,
    generate_campaign,
)
from repro.workloads.distributions import (
    inversion_poisson_arrivals,
    poisson_arrivals,
    sinusoidal_intensity,
    thinned_poisson_arrivals,
    uniform_requests,
    uniform_capacities,
    heterogeneous_capacities,
    zipf_requests,
)
from repro.workloads import reference_trees
from repro.workloads.dynamic import (
    capacity_incident,
    client_join_leave,
    ramp,
    rate_churn,
    seasonal,
    step_change,
)
from repro.workloads.traces import (
    Trace,
    TimeIndexer,
    TraceEpochs,
    TraceSummary,
    detect_epochs,
    fixed_epochs,
    load_trace,
    sample_trace,
)

__all__ = [
    "Trace",
    "TimeIndexer",
    "TraceEpochs",
    "TraceSummary",
    "detect_epochs",
    "fixed_epochs",
    "load_trace",
    "sample_trace",
    "capacity_incident",
    "client_join_leave",
    "ramp",
    "rate_churn",
    "seasonal",
    "step_change",
    "GeneratorConfig",
    "TreeGenerator",
    "generate_tree",
    "generate_campaign",
    "uniform_requests",
    "uniform_capacities",
    "heterogeneous_capacities",
    "zipf_requests",
    "poisson_arrivals",
    "thinned_poisson_arrivals",
    "inversion_poisson_arrivals",
    "sinusoidal_intensity",
    "reference_trees",
]
