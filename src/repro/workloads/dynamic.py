"""Dynamic workloads: request-rate trajectories over a fixed base instance.

The paper solves replica placement for one fixed vector of client request
rates.  A production tree serves *shifting* traffic: rates drift, spike and
oscillate, clients join and leave, servers suffer capacity incidents.  This
module models that churn as a **trajectory**: a sequence of *epochs*, each a
full :class:`~repro.core.problem.ReplicaPlacementProblem` derived from a
base instance, in the spirit of inhomogeneous-Poisson request processes
(piecewise-constant rate functions sampled once per epoch).

Every generator returns ``epochs`` problems whose first element is the base
instance itself (the state at ``t = 0``).  Rate-only trajectories build each
epoch with :meth:`TreeNetwork.with_requests`, the cheap structural fork that
the incremental re-solver (:mod:`repro.algorithms.incremental`) recognises:
consecutive epochs share topology caches and patched tree indexes, and
epochs with no actual change are re-solved for free.

Generators
----------

========================  ====================================================
:func:`step_change`       rates jump by a factor at one epoch and stay there
:func:`ramp`              rates scale linearly between two load levels
:func:`seasonal`          sinusoidal (diurnal-style) modulation of all rates
:func:`rate_churn`        per-epoch random rate drift on a sampled client set
:func:`regional_churn`    whole subtrees surge together (one factor per region)
:func:`client_join_leave` clients appear and disappear (topology churn)
:func:`capacity_incident` server capacities drop for a window of epochs
========================  ====================================================

All rates stay integral (the paper's request model, and the regime in which
the fast engine is pinned bit-for-bit to the dict engine).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.tree import Client, InternalNode, Link, NodeId, TreeNetwork

__all__ = [
    "as_base_problem",
    "step_change",
    "ramp",
    "seasonal",
    "rate_churn",
    "regional_churn",
    "client_join_leave",
    "capacity_incident",
]


def as_base_problem(
    base: Union[TreeNetwork, ReplicaPlacementProblem]
) -> ReplicaPlacementProblem:
    """Coerce a tree or problem into the trajectory's base problem."""
    if isinstance(base, ReplicaPlacementProblem):
        return base
    return ReplicaPlacementProblem(tree=base)


def _epoch_problem(
    base: ReplicaPlacementProblem, tree: TreeNetwork, t: int
) -> ReplicaPlacementProblem:
    """Wrap an epoch tree in a problem carrying the base's constraints/kind."""
    label = base.name or "epoch"
    return ReplicaPlacementProblem(
        tree=tree, constraints=base.constraints, kind=base.kind, name=f"{label}[t={t}]"
    )


def _scaled_rates(tree: TreeNetwork, factor_of: Dict[NodeId, float]) -> Dict[NodeId, float]:
    """Integral rates obtained by scaling each base rate by its factor.

    A factor of exactly 1.0 returns the base rate untouched (no rounding):
    epochs documented as unchanged must stay bit-identical to the base even
    when it carries non-integral rates, so the incremental resolver can
    reuse them.
    """
    return {
        cid: (
            float(tree.client(cid).requests)
            if factor == 1.0
            else float(max(0, round(tree.client(cid).requests * factor)))
        )
        for cid, factor in factor_of.items()
    }


def _check_epochs(epochs: int) -> None:
    if epochs < 1:
        raise ValueError("a trajectory needs at least one epoch")


# --------------------------------------------------------------------------- #
# deterministic trajectories
# --------------------------------------------------------------------------- #
def step_change(
    base: Union[TreeNetwork, ReplicaPlacementProblem],
    epochs: int,
    *,
    at: int,
    factor: float,
    clients: Optional[Sequence[NodeId]] = None,
) -> List[ReplicaPlacementProblem]:
    """Rates of ``clients`` (default: all) jump by ``factor`` at epoch ``at``.

    Models a flash crowd (``factor > 1``) or a regional outage upstream of
    the tree (``factor < 1``); rates stay at the new level afterwards.
    """
    _check_epochs(epochs)
    problem = as_base_problem(base)
    base_tree = problem.tree
    targets = tuple(clients) if clients is not None else base_tree.client_ids
    sequence = [problem]
    tree = base_tree
    for t in range(1, epochs):
        factors = {cid: (factor if t >= at else 1.0) for cid in targets}
        tree = tree.with_requests(_scaled_rates(base_tree, factors))
        sequence.append(_epoch_problem(problem, tree, t))
    return sequence


def ramp(
    base: Union[TreeNetwork, ReplicaPlacementProblem],
    epochs: int,
    *,
    end_factor: float,
    start_factor: float = 1.0,
) -> List[ReplicaPlacementProblem]:
    """Rates scale linearly from ``start_factor`` (epoch 1) to ``end_factor``.

    A load ramp across the whole client population -- the steady organic
    growth (or drain-down) case.  Epoch 0 is always the unscaled base
    instance; the scaled epochs interpolate the factor linearly, realising
    ``start_factor`` exactly at epoch 1 and ``end_factor`` at the last
    epoch (with the default ``start_factor=1.0`` the whole trajectory is
    continuous).  The degenerate ``epochs=2`` trajectory has a single scaled
    epoch, which goes straight to ``end_factor``.
    """
    _check_epochs(epochs)
    problem = as_base_problem(base)
    base_tree = problem.tree
    sequence = [problem]
    tree = base_tree
    for t in range(1, epochs):
        fraction = (t - 1) / (epochs - 2) if epochs > 2 else 1.0
        factor = start_factor + (end_factor - start_factor) * fraction
        tree = tree.with_requests(
            _scaled_rates(base_tree, {cid: factor for cid in base_tree.client_ids})
        )
        sequence.append(_epoch_problem(problem, tree, t))
    return sequence


def seasonal(
    base: Union[TreeNetwork, ReplicaPlacementProblem],
    epochs: int,
    *,
    amplitude: float = 0.3,
    period: float = 8.0,
    phase: float = 0.0,
) -> List[ReplicaPlacementProblem]:
    """Sinusoidal modulation: ``r_i(t) = r_i * (1 + A sin(2 pi (t+phase)/T))``.

    The diurnal pattern of a content-distribution tree, discretised to one
    sample per epoch (an inhomogeneous-Poisson rate function in the piecewise
    constant limit).  Epoch 0 is always the unscaled base instance; the
    modulation applies from epoch 1 onwards (so with ``phase != 0`` the wave
    starts mid-cycle at epoch 1).
    """
    _check_epochs(epochs)
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must lie in [0, 1)")
    problem = as_base_problem(base)
    base_tree = problem.tree
    sequence = [problem]
    tree = base_tree
    for t in range(1, epochs):
        factor = 1.0 + amplitude * math.sin(2.0 * math.pi * (t + phase) / period)
        tree = tree.with_requests(
            _scaled_rates(base_tree, {cid: factor for cid in base_tree.client_ids})
        )
        sequence.append(_epoch_problem(problem, tree, t))
    return sequence


# --------------------------------------------------------------------------- #
# stochastic trajectories
# --------------------------------------------------------------------------- #
def rate_churn(
    base: Union[TreeNetwork, ReplicaPlacementProblem],
    epochs: int,
    *,
    churn: float = 0.1,
    magnitude: float = 0.5,
    quiet_probability: float = 0.0,
    seed: Optional[int] = None,
) -> List[ReplicaPlacementProblem]:
    """Random rate drift: each epoch perturbs a sampled fraction of clients.

    Per epoch, with probability ``quiet_probability`` nothing changes (the
    epoch still exists -- placements are revised on a clock, not on demand);
    otherwise every client independently drifts with probability ``churn``,
    its current rate multiplied by ``1 + U(-magnitude, +magnitude)`` and
    rounded back to an integer.  Rates drift cumulatively from the previous
    epoch, not from the base, so sustained churn compounds like real traffic.
    """
    _check_epochs(epochs)
    if not 0.0 <= churn <= 1.0:
        raise ValueError("churn must lie in [0, 1]")
    if magnitude < 0:
        raise ValueError("magnitude must be non-negative")
    if not 0.0 <= quiet_probability <= 1.0:
        raise ValueError("quiet_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    problem = as_base_problem(base)
    tree = problem.tree
    sequence = [problem]
    for t in range(1, epochs):
        updates: Dict[NodeId, float] = {}
        if not (quiet_probability > 0.0 and rng.random() < quiet_probability):
            for cid in tree.client_ids:
                if rng.random() < churn:
                    current = tree.client(cid).requests
                    drifted = current * (1.0 + rng.uniform(-magnitude, magnitude))
                    updates[cid] = float(max(0, round(drifted)))
        tree = tree.with_requests(updates)
        sequence.append(_epoch_problem(problem, tree, t))
    return sequence


def regional_churn(
    base: Union[TreeNetwork, ReplicaPlacementProblem],
    epochs: int,
    *,
    depth: int = 1,
    regions_per_epoch: int = 1,
    magnitude: float = 0.5,
    quiet_probability: float = 0.0,
    seed: Optional[int] = None,
) -> List[ReplicaPlacementProblem]:
    """Regional rate surges: whole subtrees drift together, one factor each.

    The regions are the internal nodes at tree ``depth`` (clamped to the
    deepest level that still has internal nodes); per epoch, with
    probability ``quiet_probability`` nothing changes, otherwise
    ``regions_per_epoch`` regions are drawn uniformly and every client in a
    drawn region's subtree scales by the *same* factor
    ``1 + U(-magnitude, +magnitude)`` -- a flash crowd or regional outage
    seen through one access subtree.  Rates drift cumulatively from the
    previous epoch, and all of one epoch's changes stay inside the chosen
    subtrees, which is exactly the locality a sharded session
    (:class:`~repro.session.PlacementSession` with ``shards=``, shards cut
    at the same depth) exploits: each epoch re-solves only the surged
    shards.
    """
    _check_epochs(epochs)
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if regions_per_epoch < 1:
        raise ValueError("regions_per_epoch must be >= 1")
    if magnitude < 0:
        raise ValueError("magnitude must be non-negative")
    if not 0.0 <= quiet_probability <= 1.0:
        raise ValueError("quiet_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    problem = as_base_problem(base)
    tree = problem.tree
    node_depths = {nid: tree.depth(nid) for nid in tree.node_ids}
    max_depth = max(node_depths.values())
    level = min(depth, max_depth)
    regions = [nid for nid in tree.node_ids if node_depths[nid] == level]
    sequence = [problem]
    for t in range(1, epochs):
        factor_of: Dict[NodeId, float] = {}
        if not (quiet_probability > 0.0 and rng.random() < quiet_probability):
            count = min(regions_per_epoch, len(regions))
            order = rng.permutation(len(regions))
            for i in order[:count]:
                factor = 1.0 + rng.uniform(-magnitude, magnitude)
                for cid in tree.subtree_clients(regions[i]):
                    factor_of[cid] = factor
        tree = tree.with_requests(_scaled_rates(tree, factor_of))
        sequence.append(_epoch_problem(problem, tree, t))
    return sequence


def client_join_leave(
    base: Union[TreeNetwork, ReplicaPlacementProblem],
    epochs: int,
    *,
    join_rate: float = 0.05,
    leave_rate: float = 0.05,
    request_range: Tuple[int, int] = (1, 20),
    link_comm_time: float = 1.0,
    seed: Optional[int] = None,
) -> List[ReplicaPlacementProblem]:
    """Topology churn: clients leave and new clients join each epoch.

    Every existing client leaves with probability ``leave_rate`` (at least
    one client always remains), and ``Binomial(|C|, join_rate)`` new clients
    join, each attached to a uniformly drawn internal node with an integral
    rate from ``request_range``.  Epochs with topology changes rebuild the
    tree; unchanged epochs fork it cheaply.
    """
    _check_epochs(epochs)
    if not 0.0 <= join_rate <= 1.0 or not 0.0 <= leave_rate <= 1.0:
        raise ValueError("join_rate and leave_rate must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    problem = as_base_problem(base)
    tree = problem.tree
    sequence = [problem]
    joined = 0
    for t in range(1, epochs):
        client_ids = list(tree.client_ids)
        leaving = [cid for cid in client_ids if rng.random() < leave_rate]
        if len(leaving) >= len(client_ids):  # keep at least one client
            leaving = leaving[: len(client_ids) - 1]
        n_joins = int(rng.binomial(len(client_ids), join_rate))
        if not leaving and n_joins == 0:
            tree = tree.with_requests({})
            sequence.append(_epoch_problem(problem, tree, t))
            continue
        leaving_set = set(leaving)
        clients = [c for c in tree.clients() if c.id not in leaving_set]
        links = [
            link
            for link in tree.links()
            if link.child not in leaving_set
        ]
        node_ids = tree.node_ids
        low, high = request_range
        for _ in range(n_joins):
            name = f"dyn{joined}"
            joined += 1
            parent = node_ids[int(rng.integers(len(node_ids)))]
            clients.append(
                Client(id=name, requests=float(int(rng.integers(low, high + 1))))
            )
            links.append(Link(child=name, parent=parent, comm_time=link_comm_time))
        tree = TreeNetwork(tree.nodes(), clients, links)
        sequence.append(_epoch_problem(problem, tree, t))
    return sequence


def capacity_incident(
    base: Union[TreeNetwork, ReplicaPlacementProblem],
    epochs: int,
    *,
    at: int,
    duration: int = 1,
    nodes: Optional[Sequence[NodeId]] = None,
    fraction: float = 0.25,
    factor: float = 0.0,
    seed: Optional[int] = None,
) -> List[ReplicaPlacementProblem]:
    """Server capacities drop by ``factor`` for epochs ``at .. at+duration-1``.

    Models a partial outage: the affected servers (an explicit list, or a
    random ``fraction`` of the internal nodes -- never the root, so the
    instance can stay feasible) run at ``capacity * factor`` during the
    incident and recover afterwards.  Requires a Replica-Cost or general
    problem: degraded capacities make a homogeneous platform heterogeneous,
    which the Replica Counting cost mode rejects.
    """
    _check_epochs(epochs)
    if not 0.0 <= factor <= 1.0:
        raise ValueError("factor must lie in [0, 1]")
    problem = as_base_problem(base)
    if problem.kind is ProblemKind.REPLICA_COUNTING and factor != 1.0:
        raise ValueError(
            "capacity_incident degrades capacities, which breaks the "
            "homogeneous platform the Replica Counting cost mode requires; "
            "use ProblemKind.REPLICA_COST for incident trajectories"
        )
    base_tree = problem.tree
    if nodes is None:
        rng = np.random.default_rng(seed)
        candidates = [nid for nid in base_tree.node_ids if nid != base_tree.root]
        count = max(1, int(round(len(candidates) * fraction))) if candidates else 0
        order = rng.permutation(len(candidates))
        affected = tuple(candidates[i] for i in order[:count])
    else:
        affected = tuple(nodes)
    degraded_tree = base_tree.with_nodes(
        [
            InternalNode(
                id=nid,
                capacity=base_tree.node(nid).capacity * factor,
                storage_cost=base_tree.node(nid).storage_cost,
            )
            for nid in affected
        ]
    )
    sequence = [problem]
    tree = base_tree
    for t in range(1, epochs):
        in_incident = at <= t < at + duration
        was_in_incident = at <= t - 1 < at + duration
        if in_incident != was_in_incident:
            tree = degraded_tree if in_incident else base_tree
        # The no-op fork keeps per-epoch problems distinct while sharing the
        # (possibly already indexed) healthy or degraded structure.
        tree = tree.with_requests({})
        sequence.append(_epoch_problem(problem, tree, t))
    return sequence
