"""Version and provenance metadata for the :mod:`repro` package."""

from __future__ import annotations

__version__ = "1.0.0"

#: Bibliographic reference of the reproduced paper.
__paper__ = (
    "Anne Benoit, Veronika Rehn, Yves Robert. "
    "Strategies for Replica Placement in Tree Networks. "
    "INRIA Research Report RR-6040, November 2006; IPDPS 2007."
)
