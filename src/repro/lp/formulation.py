"""Assembly of the (integer) linear programs of paper Section 5.

Two formulations are produced by :func:`build_program`:

**Single server** (Closest and Upwards policies)
    ``y_{i,j}`` is a boolean meaning "``j`` is the server of client ``i``".

    * every client has exactly one server: ``sum_j y_{i,j} = 1``;
    * server capacity: ``sum_i r_i y_{i,j} <= W_j x_j``;
    * bandwidth (optional): ``sum r_i y_{i,j} <= BW_l`` over the pairs whose
      traffic crosses link ``l``;
    * *Closest* only: a client ``i`` served by ``j`` forbids any client of
      ``subtree(j)`` from being served by a strict ancestor of ``j``, i.e.
      ``y_{i,j} + sum_{j' strict ancestor of j} y_{i',j'} <= 1``.

**Multiple servers**
    ``y_{i,j}`` is the (integer) number of requests of ``i`` processed by
    ``j``.

    * request conservation: ``sum_j y_{i,j} = r_i``;
    * server capacity: ``sum_i y_{i,j} <= W_j x_j``;
    * bandwidth (optional): ``sum y_{i,j} <= BW_l`` over pairs crossing ``l``.

QoS constraints are handled upstream by simply not creating the variables of
non-eligible (client, server) pairs (see :mod:`repro.lp.variables`), which is
equivalent to the paper's ``dist(i,j) y_{i,j} <= q_i`` constraints.

The objective is always the total storage cost ``sum_j s_j x_j``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.lp.variables import VariableSpace

__all__ = ["LinearProgramData", "build_program"]


@dataclass
class LinearProgramData:
    """A fully-assembled linear program ready for :mod:`repro.lp.solver`.

    Attributes
    ----------
    objective:
        Cost vector ``c`` (minimisation).
    constraint_matrix, lower, upper:
        Sparse constraint matrix ``A`` with row bounds ``lower <= A v <= upper``.
    variable_lower, variable_upper:
        Per-variable bounds.
    integrality:
        Per-variable integrality flags (1 = integer, 0 = continuous), in the
        format expected by :func:`scipy.optimize.milp`.
    space:
        The variable indexing used to build the program.
    policy:
        The access policy encoded by the constraints.
    """

    objective: np.ndarray
    constraint_matrix: sparse.csr_matrix
    lower: np.ndarray
    upper: np.ndarray
    variable_lower: np.ndarray
    variable_upper: np.ndarray
    integrality: np.ndarray
    space: VariableSpace
    policy: Policy
    labels: List[str] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        """Number of columns of the program."""
        return self.objective.shape[0]

    @property
    def num_constraints(self) -> int:
        """Number of rows of the program."""
        return self.constraint_matrix.shape[0]

    def with_integrality(
        self, *, integral_placement: bool, integral_assignment: bool
    ) -> "LinearProgramData":
        """Return a copy with different integrality requirements.

        Used to derive the paper's lower bound (integer ``x``, rational
        ``y``) and the fully rational relaxation from the exact ILP.
        """
        integrality = np.zeros(self.num_variables)
        if integral_placement:
            integrality[: self.space.num_x] = 1
        if integral_assignment:
            integrality[self.space.num_x :] = 1
        return LinearProgramData(
            objective=self.objective,
            constraint_matrix=self.constraint_matrix,
            lower=self.lower,
            upper=self.upper,
            variable_lower=self.variable_lower,
            variable_upper=self.variable_upper,
            integrality=integrality,
            space=self.space,
            policy=self.policy,
            labels=self.labels,
        )


class _ConstraintBuilder:
    """Accumulates sparse constraint rows."""

    def __init__(self, num_variables: int):
        self.num_variables = num_variables
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.data: List[float] = []
        self.lower: List[float] = []
        self.upper: List[float] = []
        self.labels: List[str] = []
        self._row = 0

    def add(self, entries: List[Tuple[int, float]], lower: float, upper: float, label: str) -> None:
        """Add one constraint row ``lower <= sum coeff*var <= upper``."""
        for col, coeff in entries:
            self.rows.append(self._row)
            self.cols.append(col)
            self.data.append(coeff)
        self.lower.append(lower)
        self.upper.append(upper)
        self.labels.append(label)
        self._row += 1

    def matrix(self) -> sparse.csr_matrix:
        """The assembled sparse constraint matrix."""
        return sparse.csr_matrix(
            (self.data, (self.rows, self.cols)),
            shape=(self._row, self.num_variables),
        )


def build_program(
    problem: ReplicaPlacementProblem,
    policy: Policy,
    *,
    integral_placement: bool = True,
    integral_assignment: bool = True,
    closest_constraint_limit: Optional[int] = 200_000,
) -> LinearProgramData:
    """Build the (I)LP of ``problem`` under ``policy``.

    Parameters
    ----------
    integral_placement, integral_assignment:
        Whether the ``x`` (resp. ``y``) variables are required to be integer.
        The exact ILP uses ``True``/``True``; the paper's refined lower bound
        uses ``True``/``False``; the fully rational relaxation uses
        ``False``/``False``.
    closest_constraint_limit:
        Safety cap on the number of Closest-specific rows (the pairwise
        exclusion constraints grow cubically); exceeded limits raise
        :class:`ValueError`.
    """
    policy = Policy.parse(policy)
    tree = problem.tree
    space = VariableSpace(problem)
    builder = _ConstraintBuilder(space.num_variables)
    single = policy.single_server

    # ------------------------------------------------------------------ #
    # objective
    # ------------------------------------------------------------------ #
    objective = np.zeros(space.num_variables)
    for node_id in space.node_ids:
        objective[space.x_index(node_id)] = problem.storage_cost(node_id)

    # ------------------------------------------------------------------ #
    # per-client conservation
    # ------------------------------------------------------------------ #
    for client_id in tree.client_ids:
        requests = problem.requests(client_id)
        pairs = space.pairs_for_client(client_id)
        if requests <= 0:
            # Zero-request clients impose nothing; force their variables to 0
            # through the bounds below.
            continue
        target = 1.0 if single else requests
        entries = [(space.y_index(c, s), 1.0) for (c, s) in pairs]
        if not entries:
            # No eligible server at all: encode infeasibility explicitly with
            # an unsatisfiable empty row.
            builder.add([], target, target, f"coverage[{client_id!r}] (no eligible server)")
            continue
        builder.add(entries, target, target, f"coverage[{client_id!r}]")

    # ------------------------------------------------------------------ #
    # server capacities:  sum_i (r_i) y_{i,j} - W_j x_j <= 0
    # ------------------------------------------------------------------ #
    for node_id in space.node_ids:
        entries = []
        for client_id, server_id in space.pairs_for_server(node_id):
            weight = problem.requests(client_id) if single else 1.0
            entries.append((space.y_index(client_id, server_id), weight))
        entries.append((space.x_index(node_id), -problem.capacity(node_id)))
        builder.add(entries, -math.inf, 0.0, f"capacity[{node_id!r}]")

    # ------------------------------------------------------------------ #
    # bandwidth constraints (expressed directly over the y variables)
    # ------------------------------------------------------------------ #
    if problem.constraints.enforce_bandwidth:
        for link in tree.links():
            if not math.isfinite(link.bandwidth):
                continue
            # Clients whose traffic may cross this link: those in the subtree
            # hanging below the link's child endpoint.
            if tree.is_client(link.child):
                crossing_clients = (link.child,)
            else:
                crossing_clients = tree.subtree_clients(link.child)
            entries = []
            for client_id in crossing_clients:
                for server_id in problem.eligible_servers(client_id):
                    # The request crosses the link iff its server sits at the
                    # link's parent endpoint or higher.
                    if server_id != link.parent and server_id not in tree.ancestors(link.parent):
                        continue
                    if not space.has_pair(client_id, server_id):
                        continue
                    weight = problem.requests(client_id) if single else 1.0
                    entries.append((space.y_index(client_id, server_id), weight))
            if entries:
                builder.add(
                    entries,
                    -math.inf,
                    link.bandwidth,
                    f"bandwidth[{link.child!r}->{link.parent!r}]",
                )

    # ------------------------------------------------------------------ #
    # Closest-specific exclusion constraints
    # ------------------------------------------------------------------ #
    if policy is Policy.CLOSEST:
        added = 0
        for client_id in tree.client_ids:
            if problem.requests(client_id) <= 0:
                continue
            for server_id in problem.eligible_servers(client_id):
                if not space.has_pair(client_id, server_id):
                    continue
                strict_ancestors = tree.ancestors(server_id)
                for other_id in tree.subtree_clients(server_id):
                    if other_id == client_id or problem.requests(other_id) <= 0:
                        continue
                    entries = [(space.y_index(client_id, server_id), 1.0)]
                    involved = False
                    for upper_id in strict_ancestors:
                        if space.has_pair(other_id, upper_id):
                            entries.append((space.y_index(other_id, upper_id), 1.0))
                            involved = True
                    if not involved:
                        continue
                    builder.add(
                        entries,
                        -math.inf,
                        1.0,
                        f"closest[{client_id!r}@{server_id!r} vs {other_id!r}]",
                    )
                    added += 1
                    if closest_constraint_limit is not None and added > closest_constraint_limit:
                        raise ValueError(
                            "the Closest ILP exceeds the configured constraint "
                            f"limit ({closest_constraint_limit}); use a smaller "
                            "instance or the Multiple lower bound instead"
                        )

    # ------------------------------------------------------------------ #
    # variable bounds and integrality
    # ------------------------------------------------------------------ #
    variable_lower = np.zeros(space.num_variables)
    variable_upper = np.empty(space.num_variables)
    variable_upper[: space.num_x] = 1.0
    for client_id, server_id in space.pairs:
        index = space.y_index(client_id, server_id)
        requests = problem.requests(client_id)
        if requests <= 0:
            variable_upper[index] = 0.0
        else:
            variable_upper[index] = 1.0 if single else requests

    integrality = np.zeros(space.num_variables)
    if integral_placement:
        integrality[: space.num_x] = 1
    if integral_assignment:
        integrality[space.num_x :] = 1

    return LinearProgramData(
        objective=objective,
        constraint_matrix=builder.matrix(),
        lower=np.array(builder.lower),
        upper=np.array(builder.upper),
        variable_lower=variable_lower,
        variable_upper=variable_upper,
        integrality=integrality,
        space=space,
        policy=policy,
        labels=builder.labels,
    )
