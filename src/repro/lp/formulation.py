"""Assembly of the (integer) linear programs of paper Section 5.

Two formulations are produced by :func:`build_program`:

**Single server** (Closest and Upwards policies)
    ``y_{i,j}`` is a boolean meaning "``j`` is the server of client ``i``".

    * every client has exactly one server: ``sum_j y_{i,j} = 1``;
    * server capacity: ``sum_i r_i y_{i,j} <= W_j x_j``;
    * bandwidth (optional): ``sum r_i y_{i,j} <= BW_l`` over the pairs whose
      traffic crosses link ``l``;
    * *Closest* only: a client ``i`` served by ``j`` forbids any client of
      ``subtree(j)`` from being served by a strict ancestor of ``j``, i.e.
      ``y_{i,j} + sum_{j' strict ancestor of j} y_{i',j'} <= 1``.

**Multiple servers**
    ``y_{i,j}`` is the (integer) number of requests of ``i`` processed by
    ``j``.

    * request conservation: ``sum_j y_{i,j} = r_i``;
    * server capacity: ``sum_i y_{i,j} <= W_j x_j``;
    * bandwidth (optional): ``sum y_{i,j} <= BW_l`` over pairs crossing ``l``.

QoS constraints are handled upstream by simply not creating the variables of
non-eligible (client, server) pairs (see :mod:`repro.lp.variables`), which is
equivalent to the paper's ``dist(i,j) y_{i,j} <= q_i`` constraints.

The objective is always the total storage cost ``sum_j s_j x_j``.

Assembly strategy
-----------------

:func:`build_program` emits the sparse matrix as bulk COO/CSR triplets
gathered from the contiguous spans of the
:class:`~repro.lp.variables.VariableSpace` layout: the coverage block is one
masked gather over the client-major pair run, the capacity block scatters
the server-grouped pair permutation around the interleaved ``x`` columns,
each bandwidth row is a span slice of the pairs below the link filtered by
server depth, and the Closest exclusion rows are suffix runs of the other
clients' pair spans.  Row labels are built lazily (only error paths and
tests read them).  :func:`build_program_reference` keeps the original
row-by-row builder: it is the oracle the equivalence suite pins
:func:`build_program` against bit for bit, and the fallback for constraint
subclasses whose eligibility is not a bottom-up prefix chain.

For dynamic-workload epoch sequences,
:meth:`LinearProgramData.with_requests` re-targets an already-assembled
program to a rate-only epoch fork without re-assembling anything
structural, mirroring :meth:`repro.core.tree.TreeNetwork.with_requests` /
:meth:`repro.core.index.TreeIndex.patched` one layer up.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.lp.variables import VariableSpace

__all__ = ["LinearProgramData", "build_program", "build_program_reference"]


class LinearProgramData:
    """A fully-assembled linear program ready for :mod:`repro.lp.solver`.

    Attributes
    ----------
    objective:
        Cost vector ``c`` (minimisation).
    constraint_matrix, lower, upper:
        Sparse constraint matrix ``A`` with row bounds ``lower <= A v <= upper``.
    variable_lower, variable_upper:
        Per-variable bounds.
    integrality:
        Per-variable integrality flags (1 = integer, 0 = continuous), in the
        format expected by :func:`scipy.optimize.milp`.
    space:
        The variable indexing used to build the program.
    policy:
        The access policy encoded by the constraints.
    labels:
        Per-row human-readable labels; built lazily on first access for
        vectorised programs (only error reporting and tests read them).
    """

    __slots__ = (
        "objective",
        "constraint_matrix",
        "lower",
        "upper",
        "variable_lower",
        "variable_upper",
        "integrality",
        "space",
        "policy",
        "_labels",
        "_label_factory",
        "_coverage_rows",
        "_request_entries",
        "_split_rows",
        "_split_matrices",
    )

    def __init__(
        self,
        objective: np.ndarray,
        constraint_matrix: sparse.csr_matrix,
        lower: np.ndarray,
        upper: np.ndarray,
        variable_lower: np.ndarray,
        variable_upper: np.ndarray,
        integrality: np.ndarray,
        space: VariableSpace,
        policy: Policy,
        labels: Optional[List[str]] = None,
        label_factory: Optional[Callable[[], List[str]]] = None,
    ):
        self.objective = objective
        self.constraint_matrix = constraint_matrix
        self.lower = lower
        self.upper = upper
        self.variable_lower = variable_lower
        self.variable_upper = variable_upper
        self.integrality = integrality
        self.space = space
        self.policy = policy
        self._labels = labels if labels is not None or label_factory is not None else []
        self._label_factory = label_factory
        #: number of leading conservation rows (rate-dependent RHS targets).
        self._coverage_rows: Optional[int] = None
        #: ``(data_positions, pair_ids)`` of the nnz entries whose coefficient
        #: equals the pair's request rate (single-server programs only).
        self._request_entries: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: cached eq/ub/lb row split (and sliced matrices) for the pure-LP
        #: backend; structural, hence shared by rate-only epoch patches.
        self._split_rows: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._split_matrices = None

    # ------------------------------------------------------------------ #
    @property
    def labels(self) -> List[str]:
        """Per-row labels, materialised on first access."""
        if self._labels is None:
            self._labels = self._label_factory()
        return self._labels

    @property
    def num_variables(self) -> int:
        """Number of columns of the program."""
        return self.objective.shape[0]

    @property
    def num_constraints(self) -> int:
        """Number of rows of the program."""
        return self.constraint_matrix.shape[0]

    # ------------------------------------------------------------------ #
    def with_integrality(
        self, *, integral_placement: bool, integral_assignment: bool
    ) -> "LinearProgramData":
        """Return a copy with different integrality requirements.

        Used to derive the paper's lower bound (integer ``x``, rational
        ``y``) and the fully rational relaxation from the exact ILP.
        """
        integrality = np.zeros(self.num_variables)
        if integral_placement:
            integrality[: self.space.num_x] = 1
        if integral_assignment:
            integrality[self.space.num_x :] = 1
        program = LinearProgramData(
            objective=self.objective,
            constraint_matrix=self.constraint_matrix,
            lower=self.lower,
            upper=self.upper,
            variable_lower=self.variable_lower,
            variable_upper=self.variable_upper,
            integrality=integrality,
            space=self.space,
            policy=self.policy,
            labels=self._labels,
            label_factory=self._label_factory,
        )
        program._coverage_rows = self._coverage_rows
        program._request_entries = self._request_entries
        program._split_rows = self._split_rows
        program._split_matrices = self._split_matrices
        return program

    # ------------------------------------------------------------------ #
    def with_requests(self, problem: ReplicaPlacementProblem) -> "LinearProgramData":
        """Re-target this program to a rate-only epoch fork of its problem.

        The constraint sparsity, objective, integrality and labels are
        shared verbatim; only the rate-dependent values are rewritten:

        * **Multiple** formulation -- the matrix itself is rate-independent
          and reused as-is; the conservation targets (``lower``/``upper`` of
          the coverage rows) and the ``y`` variable uppers are re-gathered.
        * **Single-server** formulations -- coefficients equal to ``r_i``
          (capacity and bandwidth entries) are rewritten in place of a
          copied data vector; indices/indptr are shared.

        Raises
        ------
        ValueError
            When the diff against the program's problem is not rate-only
            (topology, capacities, links, constraints or cost mode moved),
            when a client's rate crossed zero (the row pattern would
            change), or for a *single-server* program built by the
            reference builder (which records no coefficient->pair map;
            reference-built Multiple programs patch fine, their matrix
            being rate-independent).  Callers fall back to a fresh
            :func:`build_program`.
        """
        from repro.algorithms.incremental import diff_problems

        space = self.space
        delta = diff_problems(space.problem, problem)
        if not (delta.unchanged or delta.rates_only):
            raise ValueError(
                "with_requests requires a rate-only epoch diff "
                "(topology/capacity/constraint changes need a rebuild)"
            )
        if self._coverage_rows is None:
            raise ValueError(
                "this program was not built by the vectorised assembler; "
                "rebuild it with build_program"
            )
        single = self.policy.single_server
        if single and self._request_entries is None:
            raise ValueError(
                "single-server patching needs the request-entry map; rebuild"
            )

        new_space = space.patched(problem)
        old_active = space.client_requests > 0.0
        new_active = new_space.client_requests > 0.0
        if not np.array_equal(old_active, new_active):
            raise ValueError(
                "a client's request rate crossed zero; the conservation row "
                "pattern changed and the program must be rebuilt"
            )

        lower, upper = self.lower, self.upper
        variable_upper = self.variable_upper
        matrix = self.constraint_matrix
        if single:
            positions, pair_ids = self._request_entries
            data = matrix.data.copy()
            data[positions] = new_space.pair_requests[pair_ids]
            matrix = sparse.csr_matrix(
                (data, matrix.indices, matrix.indptr), shape=matrix.shape, copy=False
            )
        else:
            n_cov = self._coverage_rows
            targets = new_space.client_requests[new_active]
            lower = lower.copy()
            lower[:n_cov] = targets
            upper = upper.copy()
            upper[:n_cov] = targets
            variable_upper = variable_upper.copy()
            variable_upper[space.num_x :] = np.where(
                new_space.pair_requests > 0.0, new_space.pair_requests, 0.0
            )

        program = LinearProgramData(
            objective=self.objective,
            constraint_matrix=matrix,
            lower=lower,
            upper=upper,
            variable_lower=self.variable_lower,
            variable_upper=variable_upper,
            integrality=self.integrality,
            space=new_space,
            policy=self.policy,
            labels=self._labels,
            label_factory=self._label_factory,
        )
        program._coverage_rows = self._coverage_rows
        program._request_entries = self._request_entries
        program._split_rows = self._split_rows
        if matrix is self.constraint_matrix:
            program._split_matrices = self._split_matrices
        return program

    # ------------------------------------------------------------------ #
    def shares_structure_with(self, other: "LinearProgramData") -> bool:
        """Whether this program shares its structural arrays with ``other``.

        ``True`` exactly for programs related through :meth:`with_requests`
        or :meth:`with_integrality`: the objective vector, the sparsity
        pattern (CSR ``indices``/``indptr``) and the variable pair layout
        of the :class:`~repro.lp.variables.VariableSpace` are then the
        *same objects*, not equal copies (epoch forks get a patched
        :class:`~repro.core.index.TreeIndex` but share every structural
        array).  The session layer's tests and benchmarks use this to prove
        that rate-only epoch steps patched the resident program instead of
        rebuilding it.
        """
        mine, theirs = self.constraint_matrix, other.constraint_matrix
        return (
            self.objective is other.objective
            and mine.indices is theirs.indices
            and mine.indptr is theirs.indptr
            and self.space.pair_client_pos is other.space.pair_client_pos
        )

    # ------------------------------------------------------------------ #
    def linprog_split(self):
        """Cached eq/ub/lb row split for the one-sided ``linprog`` backend.

        Returns ``((eq_rows, ub_rows, lb_rows), (a_eq, a_ub))``.  The split
        is structural (which rows are equalities never depends on the rate
        values), so epoch patches built by :meth:`with_requests` inherit it
        instead of re-slicing the matrix per epoch.
        """
        if self._split_rows is None:
            lower, upper = self.lower, self.upper
            close = np.isclose(lower, upper)
            self._split_rows = (
                np.where(close)[0],
                np.where(~close & np.isfinite(upper))[0],
                np.where(~close & np.isfinite(lower))[0],
            )
        if self._split_matrices is None:
            eq_rows, ub_rows, lb_rows = self._split_rows
            matrix = self.constraint_matrix.tocsr()
            a_eq = matrix[eq_rows] if len(eq_rows) else None
            blocks = []
            if len(ub_rows):
                blocks.append(matrix[ub_rows])
            if len(lb_rows):
                blocks.append(-matrix[lb_rows])
            a_ub = sparse.vstack(blocks) if blocks else None
            self._split_matrices = (a_eq, a_ub)
        return self._split_rows, self._split_matrices


# --------------------------------------------------------------------------- #
# vectorised assembly
# --------------------------------------------------------------------------- #
def build_program(
    problem: ReplicaPlacementProblem,
    policy: Policy,
    *,
    integral_placement: bool = True,
    integral_assignment: bool = True,
    closest_constraint_limit: Optional[int] = 200_000,
) -> LinearProgramData:
    """Build the (I)LP of ``problem`` under ``policy`` (bulk assembly).

    Parameters
    ----------
    integral_placement, integral_assignment:
        Whether the ``x`` (resp. ``y``) variables are required to be integer.
        The exact ILP uses ``True``/``True``; the paper's refined lower bound
        uses ``True``/``False``; the fully rational relaxation uses
        ``False``/``False``.
    closest_constraint_limit:
        Safety cap on the number of Closest-specific rows (the pairwise
        exclusion constraints grow cubically); exceeded limits raise
        :class:`ValueError`.

    The produced program is bit-identical (canonical CSR, bounds,
    integrality, labels) to :func:`build_program_reference`; the equivalence
    suite pins the two to each other.
    """
    policy = Policy.parse(policy)
    space = VariableSpace(problem)
    if policy is Policy.CLOSEST and not space.prefix_chains:
        # A custom constraint subclass broke the prefix-chain property the
        # Closest suffix arithmetic relies on: use the row-by-row oracle.
        return build_program_reference(
            problem,
            policy,
            integral_placement=integral_placement,
            integral_assignment=integral_assignment,
            closest_constraint_limit=closest_constraint_limit,
            _space=space,
        )

    tree = problem.tree
    index = space.index
    single = policy.single_server
    num_x = space.num_x
    num_pairs = space.num_y

    cols_parts: List[np.ndarray] = []
    data_parts: List[np.ndarray] = []
    count_parts: List[np.ndarray] = []
    lower_parts: List[np.ndarray] = []
    upper_parts: List[np.ndarray] = []
    nnz = 0

    def append_block(cols, data, counts, lower, upper) -> int:
        """Queue a block of rows; returns its offset into the data vector."""
        nonlocal nnz
        offset = nnz
        cols_parts.append(cols)
        data_parts.append(data)
        count_parts.append(counts)
        lower_parts.append(lower)
        upper_parts.append(upper)
        nnz += len(cols)
        return offset

    # ------------------------------------------------------------------ #
    # objective
    # ------------------------------------------------------------------ #
    objective = np.zeros(space.num_variables)
    objective[:num_x] = space.storage_costs

    creq = space.client_requests
    active = creq > 0.0
    pair_counts = space.client_pair_end - space.client_pair_start

    # request-coefficient map for single-server epoch patching
    req_pos_parts: List[np.ndarray] = []
    req_pair_parts: List[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # per-client conservation (zero-request clients impose nothing; their
    # variables are forced to 0 through the bounds below)
    # ------------------------------------------------------------------ #
    cov_cols = num_x + np.flatnonzero(active[space.pair_client_pos])
    n_cov = int(np.count_nonzero(active))
    targets = np.ones(n_cov) if single else creq[active]
    append_block(
        cov_cols,
        np.ones(cov_cols.size),
        pair_counts[active],
        targets,
        targets,
    )

    # ------------------------------------------------------------------ #
    # server capacities:  sum_i (r_i) y_{i,j} - W_j x_j <= 0
    # ------------------------------------------------------------------ #
    order, server_counts = space.server_grouping
    cap_cols = np.empty(num_pairs + num_x, dtype=np.intp)
    cap_data = np.empty(num_pairs + num_x)
    # Grouped by ascending server position, each pair entry lands after the
    # x entries of the servers laid out before it; the x entry of server j
    # follows all of its own pairs.
    pos_pairs = np.arange(num_pairs, dtype=np.intp) + space.pair_server_pos[order]
    pos_x = np.cumsum(server_counts, dtype=np.intp) + np.arange(num_x, dtype=np.intp)
    cap_cols[pos_pairs] = num_x + order
    cap_cols[pos_x] = np.arange(num_x, dtype=np.intp)
    cap_data[pos_pairs] = space.pair_requests[order] if single else 1.0
    cap_data[pos_x] = -space.node_capacities
    cap_offset = append_block(
        cap_cols,
        cap_data,
        server_counts + 1,
        np.full(num_x, -math.inf),
        np.zeros(num_x),
    )
    if single:
        req_pos_parts.append(cap_offset + pos_pairs)
        req_pair_parts.append(order)

    # ------------------------------------------------------------------ #
    # bandwidth constraints (expressed directly over the y variables)
    # ------------------------------------------------------------------ #
    bandwidth_links: List[Tuple[object, object]] = []
    if problem.constraints.enforce_bandwidth:
        starts, ends = space.client_pair_start, space.client_pair_end
        depth_pairs = space.pair_server_depth
        client_pos = index.client_pos
        node_pos = index.node_pos
        node_depth = index.node_depth
        span_start, span_end = index.client_span_start, index.client_span_end
        ones = np.ones(0)
        for link in tree.links():
            if not math.isfinite(link.bandwidth):
                continue
            ci = client_pos.get(link.child)
            if ci is not None:
                # A client uplink: every eligible server sits at or above
                # the link's parent, so all of the client's pairs cross.
                lo, hi = int(starts[ci]), int(ends[ci])
                if hi <= lo:
                    continue
                pair_sel = np.arange(lo, hi, dtype=np.intp)
            else:
                ni = node_pos[link.child]
                cs, ce = span_start[ni], span_end[ni]
                if cs >= ce:
                    continue
                # Pairs of the subtree's clients form one contiguous run;
                # the crossing ones have their server strictly above the
                # link's child endpoint.
                lo, hi = int(starts[cs]), int(ends[ce - 1])
                if hi <= lo:
                    continue
                sel = np.flatnonzero(depth_pairs[lo:hi] < node_depth[ni])
                if not sel.size:
                    continue
                pair_sel = lo + sel
            if len(ones) != pair_sel.size:
                ones = np.ones(pair_sel.size)
            offset = append_block(
                num_x + pair_sel,
                space.pair_requests[pair_sel] if single else ones,
                np.array([pair_sel.size], dtype=np.intp),
                np.array([-math.inf]),
                np.array([link.bandwidth]),
            )
            if single:
                req_pos_parts.append(offset + np.arange(pair_sel.size, dtype=np.intp))
                req_pair_parts.append(pair_sel)
            bandwidth_links.append((link.child, link.parent))

    # ------------------------------------------------------------------ #
    # Closest-specific exclusion constraints
    # ------------------------------------------------------------------ #
    closest_meta: Optional[Tuple[np.ndarray, np.ndarray]] = None
    if policy is Policy.CLOSEST:
        y_list: List[int] = []
        s_list: List[int] = []
        e_list: List[int] = []
        # Per-element access dominates these scans: plain lists beat numpy.
        starts_l = space.client_pair_start.tolist()
        ends_l = space.client_pair_end.tolist()
        server_pos_l = space.pair_server_pos.tolist()
        active_l = active.tolist()
        client_depth = index.client_depth
        node_depth = index.node_depth
        span_start, span_end = index.client_span_start, index.client_span_end
        added = 0
        for ci in range(index.n_clients):
            if not active_l[ci]:
                continue
            for p in range(starts_l[ci], ends_l[ci]):
                server = server_pos_l[p]
                depth_j = node_depth[server]
                for other in range(span_start[server], span_end[server]):
                    if other == ci or not active_l[other]:
                        continue
                    lo, hi = starts_l[other], ends_l[other]
                    # The other's pairs strictly above j are the suffix past
                    # its first (depth(other) - depth(j)) chain entries.
                    lo += client_depth[other] - depth_j
                    if lo >= hi:
                        continue
                    y_list.append(num_x + p)
                    s_list.append(lo)
                    e_list.append(hi)
                    added += 1
                    if (
                        closest_constraint_limit is not None
                        and added > closest_constraint_limit
                    ):
                        raise ValueError(
                            "the Closest ILP exceeds the configured constraint "
                            f"limit ({closest_constraint_limit}); use a smaller "
                            "instance or the Multiple lower bound instead"
                        )
        if y_list:
            y_arr = np.asarray(y_list, dtype=np.intp)
            s_arr = np.asarray(s_list, dtype=np.intp)
            e_arr = np.asarray(e_list, dtype=np.intp)
            row_counts = e_arr - s_arr + 1
            total = int(row_counts.sum())
            row_offsets = np.zeros(len(y_arr), dtype=np.intp)
            np.cumsum(row_counts[:-1], out=row_offsets[1:])
            within = np.arange(total, dtype=np.intp) - np.repeat(row_offsets, row_counts)
            cols = np.repeat(s_arr - 1, row_counts) + within + num_x
            cols[row_offsets] = y_arr
            append_block(
                cols,
                np.ones(total),
                row_counts,
                np.full(len(y_arr), -math.inf),
                np.ones(len(y_arr)),
            )
            closest_meta = (y_arr, s_arr)

    # ------------------------------------------------------------------ #
    # matrix + bounds + integrality
    # ------------------------------------------------------------------ #
    cols = np.concatenate(cols_parts)
    data = np.concatenate(data_parts)
    row_counts = np.concatenate(count_parts)
    indptr = np.zeros(row_counts.size + 1, dtype=np.intp)
    np.cumsum(row_counts, out=indptr[1:])
    matrix = sparse.csr_matrix(
        (data, cols, indptr), shape=(row_counts.size, space.num_variables)
    )

    variable_lower = np.zeros(space.num_variables)
    variable_upper = np.empty(space.num_variables)
    variable_upper[:num_x] = 1.0
    positive = space.pair_requests > 0.0
    if single:
        variable_upper[num_x:] = positive.astype(float)
    else:
        variable_upper[num_x:] = np.where(positive, space.pair_requests, 0.0)

    integrality = np.zeros(space.num_variables)
    if integral_placement:
        integrality[:num_x] = 1
    if integral_assignment:
        integrality[num_x:] = 1

    program = LinearProgramData(
        objective=objective,
        constraint_matrix=matrix,
        lower=np.concatenate(lower_parts),
        upper=np.concatenate(upper_parts),
        variable_lower=variable_lower,
        variable_upper=variable_upper,
        integrality=integrality,
        space=space,
        policy=policy,
        label_factory=_label_factory(space, active, bandwidth_links, closest_meta),
    )
    program._coverage_rows = n_cov
    if single:
        program._request_entries = (
            np.concatenate(req_pos_parts),
            np.concatenate(req_pair_parts),
        )
    return program


def _label_factory(
    space: VariableSpace,
    active: np.ndarray,
    bandwidth_links: List[Tuple[object, object]],
    closest_meta: Optional[Tuple[np.ndarray, np.ndarray]],
) -> Callable[[], List[str]]:
    """Deferred row-label builder (error paths and tests only)."""

    def build() -> List[str]:
        clients = space.client_ids
        nodes = space.node_ids
        pair_counts = space.client_pair_end - space.client_pair_start
        labels: List[str] = []
        for ci in np.flatnonzero(active).tolist():
            if pair_counts[ci]:
                labels.append(f"coverage[{clients[ci]!r}]")
            else:
                labels.append(f"coverage[{clients[ci]!r}] (no eligible server)")
        labels.extend(f"capacity[{nid!r}]" for nid in nodes)
        labels.extend(
            f"bandwidth[{child!r}->{parent!r}]" for child, parent in bandwidth_links
        )
        if closest_meta is not None:
            y_arr, s_arr = closest_meta
            pair_client = space.pair_client_pos
            pair_server = space.pair_server_pos
            num_x = space.num_x
            for y_col, suffix in zip(y_arr.tolist(), s_arr.tolist()):
                pair = y_col - num_x
                labels.append(
                    f"closest[{clients[pair_client[pair]]!r}"
                    f"@{nodes[pair_server[pair]]!r}"
                    f" vs {clients[pair_client[suffix]]!r}]"
                )
        return labels

    return build


# --------------------------------------------------------------------------- #
# reference (row-by-row) assembly
# --------------------------------------------------------------------------- #
class _ConstraintBuilder:
    """Accumulates sparse constraint rows one at a time."""

    def __init__(self, num_variables: int):
        self.num_variables = num_variables
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.data: List[float] = []
        self.lower: List[float] = []
        self.upper: List[float] = []
        self.labels: List[str] = []
        self._row = 0

    def add(self, entries: List[Tuple[int, float]], lower: float, upper: float, label: str) -> None:
        """Add one constraint row ``lower <= sum coeff*var <= upper``."""
        for col, coeff in entries:
            self.rows.append(self._row)
            self.cols.append(col)
            self.data.append(coeff)
        self.lower.append(lower)
        self.upper.append(upper)
        self.labels.append(label)
        self._row += 1

    def matrix(self) -> sparse.csr_matrix:
        """The assembled sparse constraint matrix."""
        return sparse.csr_matrix(
            (self.data, (self.rows, self.cols)),
            shape=(self._row, self.num_variables),
        )


def build_program_reference(
    problem: ReplicaPlacementProblem,
    policy: Policy,
    *,
    integral_placement: bool = True,
    integral_assignment: bool = True,
    closest_constraint_limit: Optional[int] = 200_000,
    _space: Optional[VariableSpace] = None,
) -> LinearProgramData:
    """Row-by-row oracle implementation of :func:`build_program`.

    Kept verbatim from the original builder (modulo the shared
    :class:`VariableSpace` layout): the equivalence suite asserts
    :func:`build_program` matches it bit for bit, the speed benchmark
    measures the assembly win against it, and Closest programs under
    non-prefix constraint subclasses fall back to it.
    """
    policy = Policy.parse(policy)
    tree = problem.tree
    space = _space if _space is not None else VariableSpace(problem)
    builder = _ConstraintBuilder(space.num_variables)
    single = policy.single_server
    coverage_rows = 0

    # ------------------------------------------------------------------ #
    # objective
    # ------------------------------------------------------------------ #
    objective = np.zeros(space.num_variables)
    for node_id in space.node_ids:
        objective[space.x_index(node_id)] = problem.storage_cost(node_id)

    # ------------------------------------------------------------------ #
    # per-client conservation
    # ------------------------------------------------------------------ #
    for client_id in space.client_ids:
        requests = problem.requests(client_id)
        pairs = space.pairs_for_client(client_id)
        if requests <= 0:
            # Zero-request clients impose nothing; force their variables to 0
            # through the bounds below.
            continue
        target = 1.0 if single else requests
        entries = [(space.y_index(c, s), 1.0) for (c, s) in pairs]
        coverage_rows += 1
        if not entries:
            # No eligible server at all: encode infeasibility explicitly with
            # an unsatisfiable empty row.
            builder.add([], target, target, f"coverage[{client_id!r}] (no eligible server)")
            continue
        builder.add(entries, target, target, f"coverage[{client_id!r}]")

    # ------------------------------------------------------------------ #
    # server capacities:  sum_i (r_i) y_{i,j} - W_j x_j <= 0
    # ------------------------------------------------------------------ #
    for node_id in space.node_ids:
        entries = []
        for client_id, server_id in space.pairs_for_server(node_id):
            weight = problem.requests(client_id) if single else 1.0
            entries.append((space.y_index(client_id, server_id), weight))
        entries.append((space.x_index(node_id), -problem.capacity(node_id)))
        builder.add(entries, -math.inf, 0.0, f"capacity[{node_id!r}]")

    # ------------------------------------------------------------------ #
    # bandwidth constraints (expressed directly over the y variables)
    # ------------------------------------------------------------------ #
    if problem.constraints.enforce_bandwidth:
        for link in tree.links():
            if not math.isfinite(link.bandwidth):
                continue
            # Clients whose traffic may cross this link: those in the subtree
            # hanging below the link's child endpoint.
            if tree.is_client(link.child):
                crossing_clients = (link.child,)
            else:
                crossing_clients = tree.subtree_clients(link.child)
            entries = []
            for client_id in crossing_clients:
                for server_id in problem.eligible_servers(client_id):
                    # The request crosses the link iff its server sits at the
                    # link's parent endpoint or higher.
                    if server_id != link.parent and server_id not in tree.ancestors(link.parent):
                        continue
                    if not space.has_pair(client_id, server_id):
                        continue
                    weight = problem.requests(client_id) if single else 1.0
                    entries.append((space.y_index(client_id, server_id), weight))
            if entries:
                builder.add(
                    entries,
                    -math.inf,
                    link.bandwidth,
                    f"bandwidth[{link.child!r}->{link.parent!r}]",
                )

    # ------------------------------------------------------------------ #
    # Closest-specific exclusion constraints
    # ------------------------------------------------------------------ #
    if policy is Policy.CLOSEST:
        added = 0
        for client_id in space.client_ids:
            if problem.requests(client_id) <= 0:
                continue
            for server_id in problem.eligible_servers(client_id):
                if not space.has_pair(client_id, server_id):
                    continue
                strict_ancestors = tree.ancestors(server_id)
                for other_id in tree.subtree_clients(server_id):
                    if other_id == client_id or problem.requests(other_id) <= 0:
                        continue
                    entries = [(space.y_index(client_id, server_id), 1.0)]
                    involved = False
                    for upper_id in strict_ancestors:
                        if space.has_pair(other_id, upper_id):
                            entries.append((space.y_index(other_id, upper_id), 1.0))
                            involved = True
                    if not involved:
                        continue
                    builder.add(
                        entries,
                        -math.inf,
                        1.0,
                        f"closest[{client_id!r}@{server_id!r} vs {other_id!r}]",
                    )
                    added += 1
                    if closest_constraint_limit is not None and added > closest_constraint_limit:
                        raise ValueError(
                            "the Closest ILP exceeds the configured constraint "
                            f"limit ({closest_constraint_limit}); use a smaller "
                            "instance or the Multiple lower bound instead"
                        )

    # ------------------------------------------------------------------ #
    # variable bounds and integrality
    # ------------------------------------------------------------------ #
    variable_lower = np.zeros(space.num_variables)
    variable_upper = np.empty(space.num_variables)
    variable_upper[: space.num_x] = 1.0
    for client_id, server_id in space.pairs:
        index = space.y_index(client_id, server_id)
        requests = problem.requests(client_id)
        if requests <= 0:
            variable_upper[index] = 0.0
        else:
            variable_upper[index] = 1.0 if single else requests

    integrality = np.zeros(space.num_variables)
    if integral_placement:
        integrality[: space.num_x] = 1
    if integral_assignment:
        integrality[space.num_x :] = 1

    program = LinearProgramData(
        objective=objective,
        constraint_matrix=builder.matrix(),
        lower=np.array(builder.lower),
        upper=np.array(builder.upper),
        variable_lower=variable_lower,
        variable_upper=variable_upper,
        integrality=integrality,
        space=space,
        policy=policy,
        labels=builder.labels,
    )
    program._coverage_rows = coverage_rows
    return program
