"""Variable indexing for the (I)LP formulations.

Both formulations of paper Section 5 use

* one placement variable ``x_j`` per internal node ``j`` (boolean: node
  holds a replica), and
* one assignment variable ``y_{i,j}`` per (client ``i``, ancestor ``j``)
  pair -- boolean "``j`` is the server of ``i``" in the single-server
  formulation, integer "number of requests of ``i`` processed by ``j``" in
  the multiple-server formulation.

Pairs whose ancestor violates the client's QoS bound are simply not created
(the paper sets those variables to zero), which keeps the matrices sparse.
Link-flow variables ``z_{i,l}`` are not materialised: each ``z_{i,l}``
equals the sum of the ``y_{i,j}`` of the servers located above link ``l``,
so bandwidth constraints are expressed directly over ``y`` (see
:mod:`repro.lp.formulation`).

Layout
------

The ``x`` variables follow the DFS pre-order of the
:class:`~repro.core.index.TreeIndex` and the ``y`` variables are
client-major in DFS leaf order, each client's servers bottom-up.  That
layout is what makes the vectorised assembly of
:func:`repro.lp.formulation.build_program` a collection of span-sliced
gathers:

* the pairs of one client form the contiguous column run
  ``client_pair_start[c] .. client_pair_end[c]``;
* the pairs of all clients below an internal node form one contiguous run
  (clients of a subtree are a contiguous DFS span);
* with the built-in (monotone) QoS metrics every client's eligible servers
  are a bottom-up *prefix* of its ancestor chain (``prefix_chains``), so
  "servers strictly above node ``j``" is a *suffix* of each client's run.

The dense pair arrays (``pair_client_pos``, ``pair_server_pos``,
``pair_server_depth``, ``pair_requests``) are numpy arrays built in bulk;
the id-level views (``pairs``, ``y_index``) are materialised lazily because
only the reference builder, the exact-ILP extraction and the tests need
them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.index import TreeIndex
from repro.core.problem import ReplicaPlacementProblem
from repro.core.tree import NodeId

__all__ = ["VariableSpace"]


class VariableSpace:
    """Dense indexing of the ``x_j`` and ``y_{i,j}`` variables of an instance."""

    def __init__(self, problem: ReplicaPlacementProblem):
        self.problem = problem
        tree = problem.tree
        index = TreeIndex.for_tree(tree)
        #: the flat structural view the assembly gathers from.
        self.index = index

        #: internal nodes in DFS pre-order; ``x`` variables come first and
        #: ``x_index`` coincides with the index's dense node position.
        self.node_ids: Tuple[NodeId, ...] = index.node_order
        self._x_index: Dict[NodeId, int] = index.node_pos

        #: clients in DFS leaf order (the ``y`` blocks are client-major).
        self.client_ids: Tuple[NodeId, ...] = index.client_order

        #: per-client request rates, dense over ``client_ids``.
        self.client_requests: np.ndarray = np.asarray(
            index.client_requests, dtype=float
        )

        self._build_pair_arrays(problem, index)

        # Lazily-materialised id-level views (reference builder / tests).
        self._pairs: Tuple[Tuple[NodeId, NodeId], ...] = None
        self._y_index_map: Dict[Tuple[NodeId, NodeId], int] = None
        self._server_grouping = None
        self._node_capacities: np.ndarray = None
        self._storage_costs: np.ndarray = None

    # ------------------------------------------------------------------ #
    # bulk pair layout
    # ------------------------------------------------------------------ #
    def _build_pair_arrays(self, problem: ReplicaPlacementProblem, index: TreeIndex) -> None:
        from repro.core.index import supports_qos_thresholds

        n_clients = index.n_clients
        client_depth = np.asarray(index.client_depth, dtype=np.intp)
        anc_pos, anc_offsets = index.client_ancestor_positions()

        constraints = problem.constraints
        thresholded = supports_qos_thresholds(constraints)
        if not constraints.has_qos:
            # Every ancestor is eligible: chains are full prefixes.
            counts = client_depth.copy()
            prefix = True
        elif thresholded:
            # Monotone metrics (built-in modes and monotone classed sets):
            # eligible servers are the chain prefix whose
            # depth stays at or above the memoised threshold.
            thresholds = np.asarray(index.qos_depth_thresholds(problem), dtype=np.intp)
            counts = client_depth - thresholds
            prefix = True
        else:
            # Custom constraint subclass: ask the problem per client and
            # check whether the answers still form bottom-up prefixes (the
            # assembly falls back to the reference builder otherwise).
            counts = np.empty(n_clients, dtype=np.intp)
            prefix = True
            chains: List[Tuple[NodeId, ...]] = []
            for ci, client_id in enumerate(index.client_order):
                eligible = tuple(problem.eligible_servers(client_id))
                chains.append(eligible)
                counts[ci] = len(eligible)
                if eligible != index.client_ancestors[ci][: len(eligible)]:
                    prefix = False

        #: ``True`` when every client's eligible servers are a bottom-up
        #: prefix of its ancestor chain (always true for the built-in
        #: constraint set; the Closest assembly requires it).
        self.prefix_chains: bool = prefix

        ends = np.cumsum(counts)
        starts = ends - counts
        self.client_pair_start: np.ndarray = starts
        self.client_pair_end: np.ndarray = ends
        num_pairs = int(ends[-1]) if n_clients else 0

        #: dense client position of each pair (client-major, so this is a
        #: staircase) and dense node position / depth of each pair's server.
        self.pair_client_pos: np.ndarray = np.repeat(
            np.arange(n_clients, dtype=np.intp), counts
        )
        if prefix:
            # Gather each client's ancestor-position prefix in one shot.
            grouped = np.arange(num_pairs, dtype=np.intp) - np.repeat(starts, counts)
            self.pair_server_pos = anc_pos[
                np.repeat(anc_offsets[:-1], counts) + grouped
            ]
        else:
            node_pos = index.node_pos
            flat: List[int] = []
            for eligible in chains:
                flat.extend(node_pos[s] for s in eligible)
            self.pair_server_pos = np.asarray(flat, dtype=np.intp)
        node_depth = np.asarray(index.node_depth, dtype=np.intp)
        self.pair_server_depth: np.ndarray = node_depth[self.pair_server_pos]
        #: request rate of each pair's client.
        self.pair_requests: np.ndarray = self.client_requests[self.pair_client_pos]

    # ------------------------------------------------------------------ #
    # epoch patching
    # ------------------------------------------------------------------ #
    def patched(self, problem: ReplicaPlacementProblem) -> "VariableSpace":
        """Space of a rate-only epoch fork of this space's problem.

        The pair layout depends only on topology and QoS eligibility, so a
        fork that moved nothing but request rates shares every structural
        array; only the request vectors are re-gathered.  Callers
        (:meth:`repro.lp.formulation.LinearProgramData.with_requests`) are
        responsible for checking that the diff really is rate-only.
        """
        fork = VariableSpace.__new__(VariableSpace)
        fork.problem = problem
        index = TreeIndex.for_tree(problem.tree)
        fork.index = index
        fork.node_ids = self.node_ids
        fork._x_index = self._x_index
        fork.client_ids = self.client_ids
        fork.prefix_chains = self.prefix_chains
        fork.client_pair_start = self.client_pair_start
        fork.client_pair_end = self.client_pair_end
        fork.pair_client_pos = self.pair_client_pos
        fork.pair_server_pos = self.pair_server_pos
        fork.pair_server_depth = self.pair_server_depth
        fork.client_requests = np.asarray(index.client_requests, dtype=float)
        fork.pair_requests = fork.client_requests[fork.pair_client_pos]
        fork._pairs = self._pairs
        fork._y_index_map = self._y_index_map
        fork._server_grouping = self._server_grouping
        fork._node_capacities = self._node_capacities
        fork._storage_costs = None if self.problem.kind is not problem.kind else self._storage_costs
        return fork

    # ------------------------------------------------------------------ #
    # derived bulk views (cached)
    # ------------------------------------------------------------------ #
    @property
    def server_grouping(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(sorted_pair_ids, per_server_counts)`` grouping pairs by server.

        ``sorted_pair_ids`` is the stable permutation of pair positions
        ordered by server node position; the pairs of server ``j`` form one
        contiguous run of it, ``per_server_counts[j]`` long.
        """
        if self._server_grouping is None:
            order = np.argsort(self.pair_server_pos, kind="stable")
            counts = np.bincount(self.pair_server_pos, minlength=self.num_x)
            self._server_grouping = (order, counts.astype(np.intp))
        return self._server_grouping

    @property
    def node_capacities(self) -> np.ndarray:
        """Capacities ``W_j`` dense over ``node_ids``."""
        if self._node_capacities is None:
            nodes = self.problem.tree._nodes
            self._node_capacities = np.asarray(
                [nodes[nid].capacity for nid in self.node_ids], dtype=float
            )
        return self._node_capacities

    @property
    def storage_costs(self) -> np.ndarray:
        """Storage costs ``s_j`` dense over ``node_ids`` (objective vector)."""
        if self._storage_costs is None:
            from repro.core.problem import ProblemKind

            kind = self.problem.kind
            if kind is ProblemKind.REPLICA_COUNTING:
                costs = np.ones(self.num_x)
            elif kind is ProblemKind.REPLICA_COST:
                costs = self.node_capacities.copy()
            else:
                nodes = self.problem.tree._nodes
                costs = np.asarray(
                    [nodes[nid].storage_cost for nid in self.node_ids], dtype=float
                )
            self._storage_costs = costs
        return self._storage_costs

    # ------------------------------------------------------------------ #
    @property
    def num_x(self) -> int:
        """Number of placement variables."""
        return len(self.node_ids)

    @property
    def num_y(self) -> int:
        """Number of assignment variables."""
        return len(self.pair_client_pos)

    @property
    def num_variables(self) -> int:
        """Total number of variables in the program."""
        return self.num_x + self.num_y

    # ------------------------------------------------------------------ #
    # id-level views (lazy: reference builder, exact extraction, tests)
    # ------------------------------------------------------------------ #
    @property
    def pairs(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """(client, server) id pairs in ``y`` column order."""
        if self._pairs is None:
            clients = self.client_ids
            nodes = self.node_ids
            self._pairs = tuple(
                (clients[c], nodes[s])
                for c, s in zip(
                    self.pair_client_pos.tolist(), self.pair_server_pos.tolist()
                )
            )
        return self._pairs

    @property
    def _y_index(self) -> Dict[Tuple[NodeId, NodeId], int]:
        if self._y_index_map is None:
            offset = self.num_x
            self._y_index_map = {
                pair: offset + position for position, pair in enumerate(self.pairs)
            }
        return self._y_index_map

    def x_index(self, node_id: NodeId) -> int:
        """Column index of ``x_{node_id}``."""
        return self._x_index[node_id]

    def y_index(self, client_id: NodeId, server_id: NodeId) -> int:
        """Column index of ``y_{client_id, server_id}``."""
        return self._y_index[(client_id, server_id)]

    def has_pair(self, client_id: NodeId, server_id: NodeId) -> bool:
        """``True`` when the (client, server) pair is eligible (variable exists)."""
        return (client_id, server_id) in self._y_index

    def pairs_for_client(self, client_id: NodeId) -> List[Tuple[NodeId, NodeId]]:
        """Eligible pairs of a given client."""
        return [pair for pair in self.pairs if pair[0] == client_id]

    def pairs_for_server(self, server_id: NodeId) -> List[Tuple[NodeId, NodeId]]:
        """Eligible pairs served by a given node."""
        return [pair for pair in self.pairs if pair[1] == server_id]

    def describe(self) -> str:
        """Short description used in solver diagnostics."""
        return (
            f"{self.num_x} placement variables, {self.num_y} assignment variables "
            f"({self.num_variables} total)"
        )
