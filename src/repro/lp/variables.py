"""Variable indexing for the (I)LP formulations.

Both formulations of paper Section 5 use

* one placement variable ``x_j`` per internal node ``j`` (boolean: node
  holds a replica), and
* one assignment variable ``y_{i,j}`` per (client ``i``, ancestor ``j``)
  pair -- boolean "``j`` is the server of ``i``" in the single-server
  formulation, integer "number of requests of ``i`` processed by ``j``" in
  the multiple-server formulation.

Pairs whose ancestor violates the client's QoS bound are simply not created
(the paper sets those variables to zero), which keeps the matrices sparse.
Link-flow variables ``z_{i,l}`` are not materialised: each ``z_{i,l}``
equals the sum of the ``y_{i,j}`` of the servers located above link ``l``,
so bandwidth constraints are expressed directly over ``y`` (see
:mod:`repro.lp.formulation`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.problem import ReplicaPlacementProblem
from repro.core.tree import NodeId

__all__ = ["VariableSpace"]


class VariableSpace:
    """Dense indexing of the ``x_j`` and ``y_{i,j}`` variables of an instance."""

    def __init__(self, problem: ReplicaPlacementProblem):
        self.problem = problem
        tree = problem.tree

        #: internal nodes in a fixed order; ``x`` variables come first.
        self.node_ids: Tuple[NodeId, ...] = tuple(tree.node_ids)
        self._x_index: Dict[NodeId, int] = {
            node_id: index for index, node_id in enumerate(self.node_ids)
        }

        #: (client, server) pairs with an eligible (QoS-respecting) ancestor.
        pairs: List[Tuple[NodeId, NodeId]] = []
        for client_id in tree.client_ids:
            for server_id in problem.eligible_servers(client_id):
                pairs.append((client_id, server_id))
        self.pairs: Tuple[Tuple[NodeId, NodeId], ...] = tuple(pairs)
        offset = len(self.node_ids)
        self._y_index: Dict[Tuple[NodeId, NodeId], int] = {
            pair: offset + index for index, pair in enumerate(self.pairs)
        }

    # ------------------------------------------------------------------ #
    @property
    def num_x(self) -> int:
        """Number of placement variables."""
        return len(self.node_ids)

    @property
    def num_y(self) -> int:
        """Number of assignment variables."""
        return len(self.pairs)

    @property
    def num_variables(self) -> int:
        """Total number of variables in the program."""
        return self.num_x + self.num_y

    def x_index(self, node_id: NodeId) -> int:
        """Column index of ``x_{node_id}``."""
        return self._x_index[node_id]

    def y_index(self, client_id: NodeId, server_id: NodeId) -> int:
        """Column index of ``y_{client_id, server_id}``."""
        return self._y_index[(client_id, server_id)]

    def has_pair(self, client_id: NodeId, server_id: NodeId) -> bool:
        """``True`` when the (client, server) pair is eligible (variable exists)."""
        return (client_id, server_id) in self._y_index

    def pairs_for_client(self, client_id: NodeId) -> List[Tuple[NodeId, NodeId]]:
        """Eligible pairs of a given client."""
        return [pair for pair in self.pairs if pair[0] == client_id]

    def pairs_for_server(self, server_id: NodeId) -> List[Tuple[NodeId, NodeId]]:
        """Eligible pairs served by a given node."""
        return [pair for pair in self.pairs if pair[1] == server_id]

    def describe(self) -> str:
        """Short description used in solver diagnostics."""
        return (
            f"{self.num_x} placement variables, {self.num_y} assignment variables "
            f"({self.num_variables} total)"
        )
