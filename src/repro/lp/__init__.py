"""Linear-programming formulations of the Replica Placement problem.

Paper Section 5 formulates the problem as an integer linear program for each
of the three access policies, including QoS and bandwidth constraints, and
Section 7.1 derives the lower bound used as the reference of every
experiment: the **Multiple** formulation with integer placement variables
``x_j`` but rational assignment variables ``y_{i,j}``.

This package reproduces those formulations on top of
:func:`scipy.optimize.milp` / :func:`scipy.optimize.linprog` (HiGHS), which
substitutes for the GLPK solver used by the authors -- the mathematical
programs are identical, only the backend differs.

Contents
--------
* :mod:`repro.lp.variables` -- variable indexing (``x_j`` and sparse
  ``y_{i,j}`` restricted to QoS-eligible ancestors);
* :mod:`repro.lp.formulation` -- objective and constraint assembly for the
  single-server (Closest / Upwards) and multiple-server formulations;
* :mod:`repro.lp.solver` -- thin wrappers around the scipy backends;
* :mod:`repro.lp.bounds` -- the paper's refined lower bound and the fully
  rational relaxation;
* :mod:`repro.lp.ipfp` -- the fast iterative-proportional-fitting
  Lagrangian bound on the transportation relaxation (``method="ipfp"``);
* :mod:`repro.lp.exact` -- exact ILP solutions (small instances), returning
  regular :class:`~repro.core.solution.Solution` objects.
"""

from repro.lp.variables import VariableSpace
from repro.lp.formulation import (
    LinearProgramData,
    build_program,
    build_program_reference,
)
from repro.lp.solver import LPResult, solve_program
from repro.lp.bounds import (
    LowerBoundResult,
    bound_for_program,
    bound_program,
    lp_lower_bound,
    rational_relaxation_bound,
)
from repro.lp.ipfp import (
    IPFPConfig,
    IPFPProgram,
    ipfp_bound,
    ipfp_defaults,
    ipfp_program,
)
from repro.lp.exact import exact_solution, exact_cost

__all__ = [
    "IPFPConfig",
    "IPFPProgram",
    "ipfp_bound",
    "ipfp_defaults",
    "ipfp_program",
    "VariableSpace",
    "LinearProgramData",
    "build_program",
    "build_program_reference",
    "LPResult",
    "solve_program",
    "lp_lower_bound",
    "rational_relaxation_bound",
    "bound_for_program",
    "bound_program",
    "LowerBoundResult",
    "exact_solution",
    "exact_cost",
]
