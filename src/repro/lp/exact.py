"""Exact ILP solutions of the Replica Placement problem (small instances).

Solving the full integer programs of paper Section 5 yields provably optimal
placements for each access policy.  The paper notes this is only practical
for small trees (they report ``s <= 50`` with GLPK); the same order of
magnitude applies to the HiGHS backend used here, and the package mainly
uses these exact solutions to

* validate the optimal Multiple/homogeneous greedy algorithm,
* measure the optimality gap of the heuristics on small instances
  (Table 1 style experiments),
* cross-check the refined lower bound (it can never exceed the exact
  optimum).

:func:`exact_solution` converts the ILP output back into a regular
:class:`~repro.core.solution.Solution` (placement + integral assignment) so
it flows through the same validation pipeline as every heuristic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Assignment, Placement, Solution
from repro.core.tree import NodeId
from repro.lp.formulation import build_program
from repro.lp.solver import solve_program

__all__ = ["exact_solution", "exact_cost"]

_BINARY_THRESHOLD = 0.5
_VALUE_TOLERANCE = 1e-6


def exact_solution(
    problem: ReplicaPlacementProblem,
    policy: Policy,
    *,
    time_limit: Optional[float] = None,
) -> Solution:
    """Optimal placement and assignment for ``policy`` via the exact ILP.

    Raises
    ------
    InfeasibleError
        When the ILP is infeasible (the instance has no valid solution
        under ``policy``).
    """
    policy = Policy.parse(policy)
    # Assignment variables are only forced to be integral when the request
    # rates themselves are integral: single-server y variables are booleans
    # regardless, but the Multiple formulation's y counts requests, and a
    # fractional request rate must be allowed to split fractionally.
    integral_requests = all(
        abs(problem.requests(cid) - round(problem.requests(cid))) <= 1e-9
        for cid in problem.tree.client_ids
    )
    program = build_program(
        problem,
        policy,
        integral_placement=True,
        integral_assignment=(True if policy.single_server else integral_requests),
    )
    result = solve_program(program, time_limit=time_limit)
    if result.infeasible:
        raise InfeasibleError(
            f"the exact {policy.value} ILP is infeasible", policy=policy
        )
    if not result.optimal:
        raise InfeasibleError(
            f"the exact {policy.value} ILP did not reach optimality "
            f"(status {result.status})",
            policy=policy,
        )

    values = result.values
    space = program.space
    # Bulk extraction over the dense pair arrays: only the (typically few)
    # active variables ever touch Python-level id lookups.
    replicas = {
        space.node_ids[position]
        for position in np.flatnonzero(values[: space.num_x] > _BINARY_THRESHOLD)
    }

    amounts: Dict[Tuple[NodeId, NodeId], float] = {}
    single = policy.single_server
    y_values = values[space.num_x :]
    clients, nodes = space.client_ids, space.node_ids
    pair_client, pair_server = space.pair_client_pos, space.pair_server_pos
    for position in np.flatnonzero(y_values > _VALUE_TOLERANCE).tolist():
        raw = y_values[position]
        client_id = clients[pair_client[position]]
        server_id = nodes[pair_server[position]]
        amount = problem.requests(client_id) * raw if single else raw
        # Clean numerical noise: integral programs should produce integers.
        rounded = round(amount)
        if abs(amount - rounded) <= 1e-6:
            amount = float(rounded)
        if amount > 0:
            amounts[(client_id, server_id)] = amount

    return Solution(
        placement=Placement(replicas),
        assignment=Assignment(amounts),
        policy=policy,
        algorithm=f"ilp-{policy.value}",
        metadata={"objective": result.objective, "variables": space.num_variables},
    )


def exact_cost(
    problem: ReplicaPlacementProblem,
    policy: Policy,
    *,
    time_limit: Optional[float] = None,
) -> float:
    """Optimal cost for ``policy`` (see :func:`exact_solution`)."""
    return exact_solution(problem, policy, time_limit=time_limit).cost(problem)
