"""Thin wrappers around the scipy (HiGHS) LP / MILP backends.

:func:`solve_program` dispatches a :class:`~repro.lp.formulation.LinearProgramData`
to :func:`scipy.optimize.milp` when any variable is integral and to
:func:`scipy.optimize.linprog` otherwise, and normalises the outcome into an
:class:`LPResult`:

* ``status == "optimal"`` -- an optimal solution was found;
* ``status == "infeasible"`` -- the program has no feasible point (which for
  the exact ILPs means the instance has no valid replica placement);
* any other failure raises :class:`~repro.core.exceptions.SolverError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from repro.core.exceptions import SolverError
from repro.lp.formulation import LinearProgramData

__all__ = ["LPResult", "solve_program"]


@dataclass
class LPResult:
    """Outcome of an LP / MILP solve."""

    status: str
    objective: Optional[float]
    values: Optional[np.ndarray]
    message: str = ""

    @property
    def optimal(self) -> bool:
        """``True`` when an optimal solution is available."""
        return self.status == "optimal"

    @property
    def infeasible(self) -> bool:
        """``True`` when the program was proven infeasible."""
        return self.status == "infeasible"


def solve_program(program: LinearProgramData, *, time_limit: Optional[float] = None) -> LPResult:
    """Solve ``program`` and normalise the backend outcome.

    Parameters
    ----------
    time_limit:
        Optional wall-clock limit (seconds) forwarded to the backend (both
        the MILP and the pure-LP HiGHS paths honour it).
    """
    has_integer = bool(np.any(program.integrality > 0))
    if has_integer:
        return _solve_milp(program, time_limit)
    return _solve_linprog(program, time_limit)


def _solve_milp(program: LinearProgramData, time_limit: Optional[float]) -> LPResult:
    constraints = optimize.LinearConstraint(
        program.constraint_matrix, program.lower, program.upper
    )
    bounds = optimize.Bounds(program.variable_lower, program.variable_upper)
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = optimize.milp(
        c=program.objective,
        constraints=[constraints],
        integrality=program.integrality,
        bounds=bounds,
        options=options,
    )
    return _normalise(result)


def _solve_linprog(program: LinearProgramData, time_limit: Optional[float] = None) -> LPResult:
    # linprog only accepts one-sided inequality rows plus equality rows, so
    # split the two-sided rows of the generic formulation.  The split (and
    # the sliced matrices) is structural and cached on the program, so
    # epoch-patched programs built by ``with_requests`` skip the per-epoch
    # re-slicing entirely; only the RHS vectors below are re-gathered.
    (eq_rows, ub_rows, lb_rows), (a_eq, a_ub) = program.linprog_split()
    lower, upper = program.lower, program.upper

    b_eq = upper[eq_rows] if len(eq_rows) else None
    rhs = []
    if len(ub_rows):
        rhs.append(upper[ub_rows])
    if len(lb_rows):
        rhs.append(-lower[lb_rows])
    b_ub = np.concatenate(rhs) if rhs else None

    options = {}
    if time_limit is not None:
        # The rational relaxations go through this pure-LP path; dropping the
        # caller's limit here let pathological instances run unbounded.
        options["time_limit"] = float(time_limit)
    result = optimize.linprog(
        c=program.objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        # One (n, 2) array instead of n per-variable tuples.
        bounds=np.column_stack((program.variable_lower, program.variable_upper)),
        method="highs",
        options=options,
    )
    return _normalise(result)


def _normalise(result) -> LPResult:
    """Convert a scipy OptimizeResult into an :class:`LPResult`."""
    status = getattr(result, "status", None)
    message = getattr(result, "message", "") or ""
    if getattr(result, "success", False):
        return LPResult(
            status="optimal",
            objective=float(result.fun),
            values=np.asarray(result.x, dtype=float),
            message=message,
        )
    # scipy status codes: milp/linprog use 2 for infeasible, 3 for unbounded.
    if status == 2 or "infeasible" in message.lower():
        return LPResult(status="infeasible", objective=None, values=None, message=message)
    if status == 3 or "unbounded" in message.lower():
        return LPResult(status="unbounded", objective=None, values=None, message=message)
    raise SolverError(f"LP backend failed: status={status!r}, message={message!r}")
