"""LP-based lower bounds on the replica cost (paper Sections 5.3 and 7.1).

Two bounds are provided, both computed from the **Multiple** formulation
(the least constrained of the three policies, hence a valid lower bound for
all of them):

* :func:`rational_relaxation_bound` -- the fully rational relaxation
  (both ``x`` and ``y`` continuous).  Cheap but loose: half a replica can be
  paid for half its cost.
* :func:`lp_lower_bound` -- the paper's *refined* bound of Section 7.1:
  the placement variables ``x_j`` stay integer (a replica is either paid in
  full or not at all) while the assignment variables ``y_{i,j}`` are
  rational.  This is the reference value against which the relative cost of
  every heuristic is measured in the experiments (Figures 10 and 12).

Both functions return a :class:`LowerBoundResult`, whose ``value`` is
``math.inf`` when the Multiple instance itself is infeasible (no placement
can absorb the requests, so every policy is infeasible too).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.lp.formulation import LinearProgramData, build_program
from repro.lp.solver import LPResult, solve_program

__all__ = [
    "LowerBoundResult",
    "lp_lower_bound",
    "rational_relaxation_bound",
    "bound_for_program",
    "bound_program",
]


@dataclass
class LowerBoundResult:
    """A lower bound on the optimal replica cost.

    Attributes
    ----------
    value:
        The bound itself (``math.inf`` when the instance is infeasible even
        under the Multiple policy).
    feasible:
        Whether the Multiple formulation admits a solution.
    method:
        ``"mixed"`` (integer placement, rational assignment),
        ``"rational"`` (full relaxation) or ``"ipfp"`` (Lagrangian bound of
        the transportation relaxation, see :mod:`repro.lp.ipfp`).
    policy:
        The policy whose formulation was relaxed (always Multiple by
        default).
    certificate:
        Human-readable infeasibility certificate (``ipfp`` only): which
        client or subtree makes the instance infeasible.  ``None`` for
        feasible instances and for the LP methods.
    """

    value: float
    feasible: bool
    method: str
    policy: Policy
    objective: Optional[float] = None
    certificate: Optional[str] = None

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.value

    def to_dict(self) -> dict:
        """JSON-compatible payload (part of the result protocol)."""
        from repro.core.results import encode_float

        payload = {
            "value": encode_float(self.value),
            "feasible": self.feasible,
            "method": self.method,
            "policy": self.policy.value,
            "objective": encode_float(self.objective),
        }
        if self.certificate is not None:
            payload["certificate"] = self.certificate
        return payload

    @classmethod
    def from_dict(cls, payload) -> "LowerBoundResult":
        """Rebuild a bound from a :meth:`to_dict` payload."""
        from repro.core.results import decode_float

        certificate = payload.get("certificate")
        return cls(
            value=decode_float(payload["value"]),
            feasible=bool(payload["feasible"]),
            method=str(payload["method"]),
            policy=Policy.parse(payload["policy"]),
            objective=decode_float(payload.get("objective")),
            certificate=None if certificate is None else str(certificate),
        )


def lp_lower_bound(
    problem: ReplicaPlacementProblem,
    *,
    policy: Policy = Policy.MULTIPLE,
    time_limit: Optional[float] = None,
) -> LowerBoundResult:
    """Paper Section 7.1 refined bound: integer ``x_j``, rational ``y_{i,j}``.

    Forbidding fractional replicas makes the bound markedly tighter than the
    full relaxation while remaining solvable for trees of several hundred
    nodes (the mixed program has one binary variable per internal node).
    """
    program = build_program(
        problem,
        policy,
        integral_placement=True,
        integral_assignment=False,
    )
    result = solve_program(program, time_limit=time_limit)
    return _to_bound(result, method="mixed", policy=Policy.parse(policy))


def bound_program(
    problem: ReplicaPlacementProblem,
    *,
    policy: Policy = Policy.MULTIPLE,
    method: str = "mixed",
) -> LinearProgramData:
    """Assemble (without solving) the program behind an LP lower bound.

    The epoch bounder of :mod:`repro.algorithms.incremental` keeps this
    program across epochs and re-targets it with
    :meth:`~repro.lp.formulation.LinearProgramData.with_requests` whenever
    only request rates moved.  ``method="ipfp"`` returns an
    :class:`~repro.lp.ipfp.IPFPProgram`, which exposes the same
    ``with_requests`` re-targeting contract.
    """
    if method == "ipfp":
        from repro.lp.ipfp import ipfp_program

        return ipfp_program(problem, policy=policy)
    if method not in ("mixed", "rational"):
        raise ValueError(f"unknown lower-bound method {method!r}")
    return build_program(
        problem,
        policy,
        integral_placement=(method == "mixed"),
        integral_assignment=False,
    )


def bound_for_program(
    program: LinearProgramData,
    *,
    method: str = "mixed",
    time_limit: Optional[float] = None,
) -> LowerBoundResult:
    """Solve an already-assembled bound program (see :func:`bound_program`)."""
    if method == "ipfp":
        return program.solve(time_limit=time_limit)
    result = solve_program(program, time_limit=time_limit)
    return _to_bound(result, method=method, policy=program.policy)


def rational_relaxation_bound(
    problem: ReplicaPlacementProblem,
    *,
    policy: Policy = Policy.MULTIPLE,
) -> LowerBoundResult:
    """Fully rational relaxation (both ``x`` and ``y`` continuous)."""
    program = build_program(
        problem,
        policy,
        integral_placement=False,
        integral_assignment=False,
    )
    result = solve_program(program)
    return _to_bound(result, method="rational", policy=Policy.parse(policy))


def _to_bound(result: LPResult, *, method: str, policy: Policy) -> LowerBoundResult:
    if result.optimal:
        return LowerBoundResult(
            value=float(result.objective),
            feasible=True,
            method=method,
            policy=policy,
            objective=result.objective,
        )
    if result.infeasible:
        return LowerBoundResult(
            value=math.inf, feasible=False, method=method, policy=policy
        )
    # Unbounded programs cannot occur (costs are non-negative); treat any
    # other status as infeasible but surface it in the method string.
    return LowerBoundResult(
        value=math.inf, feasible=False, method=f"{method}:{result.status}", policy=policy
    )
