"""Iterative-proportional-fitting lower bounds (the ``ipfp`` method).

The LP bounds of :mod:`repro.lp.bounds` solve a (mixed-integer) program per
epoch; on large dynamic workloads that cost dominates the whole pipeline.
This module trades a little tightness for a lot of speed: it lower-bounds
the *transportation relaxation* of the Multiple formulation by Lagrangian
duality, steering the duals with an IPFP-style primal scaling loop.

Relaxation chain
----------------

With rational placement ``x_j >= load_j / W_j`` the objective satisfies
``sum_j s_j x_j >= sum_j (s_j / W_j) load_j``, so

.. code-block:: text

    transportation := min sum_j c_j * load_j        c_j = s_j / W_j
                      s.t. sum_j y_ij = r_i         (cover every client)
                           load_j    <= W_j         (server capacity)
                           flow_l    <= BW_l        (link bandwidth)
                           y_ij >= 0 over eligible (client, ancestor) pairs

is a relaxation of the rational LP, which itself relaxes the paper's mixed
bound: ``transportation <= rational <= mixed <= optimal``.  For any
multipliers ``lambda_j, mu_l >= 0`` weak duality gives the valid bound

.. code-block:: text

    L(lambda, mu) = sum_i r_i * min_{j in E_i} (c_j + lambda_j + path_mu_ij)
                    - sum_j lambda_j W_j - sum_l mu_l BW_l

where ``path_mu_ij`` sums the duals of the bandwidth-limited links between
client ``i`` and server ``j``.  The solver alternates

* **row scaling** of the primal iterate ``y`` to the client rates,
* **column scaling** down to the server capacities,
* **link scaling** down to the link bandwidths,

and pushes the duals along the constraint-violation subgradient measured on
the scaled iterate, keeping the best ``L`` seen.  Every iterate yields a
*valid* bound -- stopping early (stall detection, time limit) never
produces a wrong value, only a looser one.

Client uplinks are handled structurally rather than dually: every eligible
server sits strictly above its client, so the flow on a client's uplink is
exactly ``r_i`` -- either it fits, or the instance is infeasible and the
solver returns a certificate naming the link.  The remaining certificates
(no eligible server, zero-capacity chains, Hall-style subtree overload) are
likewise exact pre-checks; a stalled scaling loop without a certificate
simply returns the best Lagrangian value with ``feasible=True``.

When every storage cost is integral the mixed bound is an integer, so the
best ``L`` is tightened to its ceiling before being clamped from below by
:func:`repro.core.costs.trivial_lower_bound` -- guaranteeing the sandwich
``trivial <= ipfp <= mixed`` that the test suite asserts.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.lp.bounds import LowerBoundResult
from repro.lp.variables import VariableSpace

__all__ = ["IPFPConfig", "IPFPProgram", "ipfp_program", "ipfp_bound", "ipfp_defaults"]

#: Relative tolerance used by the feasibility pre-checks.
_EPS = 1e-9


@dataclass(frozen=True)
class IPFPConfig:
    """Tuning knobs of the IPFP bound (defaults reported by ``repro doctor``)."""

    #: Maximum scaling / dual iterations.
    max_iterations: int = 48
    #: Relative improvement below which an iteration counts as stalled.
    tolerance: float = 1e-6
    #: Consecutive stalled iterations that stop the loop.
    stall_iterations: int = 6
    #: Dual step-size multiplier (the schedule is ``step * c_ref / (1 + it)``).
    step: float = 1.0

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if not (self.tolerance > 0.0 and math.isfinite(self.tolerance)):
            raise ValueError("tolerance must be a positive finite float")
        if self.stall_iterations < 1:
            raise ValueError("stall_iterations must be at least 1")
        if not (self.step > 0.0 and math.isfinite(self.step)):
            raise ValueError("step must be a positive finite float")


def ipfp_defaults() -> dict:
    """Default IPFP parameters as a JSON-compatible dict (``repro doctor``)."""
    config = IPFPConfig()
    return {
        "max_iterations": config.max_iterations,
        "tolerance": config.tolerance,
        "stall_iterations": config.stall_iterations,
        "step": config.step,
    }


class IPFPProgram:
    """Pre-assembled state of the IPFP bound for one problem instance.

    Mirrors the role :class:`~repro.lp.formulation.LinearProgramData` plays
    for the LP bounds: build once, :meth:`solve` per epoch, and re-target
    rate-only epoch forks with :meth:`with_requests` (structure shared,
    rates re-gathered) through the same
    :class:`~repro.algorithms.incremental.IncrementalBounder` ladder.
    """

    def __init__(
        self,
        problem: ReplicaPlacementProblem,
        *,
        policy: Union[Policy, str] = Policy.MULTIPLE,
        config: Optional[IPFPConfig] = None,
    ) -> None:
        self.problem = problem
        self.policy = Policy.parse(policy)
        self.config = config or IPFPConfig()
        self.space = VariableSpace(problem)
        self._build_static()

    # ------------------------------------------------------------------ #
    # static structure
    # ------------------------------------------------------------------ #
    def _build_static(self) -> None:
        space = self.space
        index = space.index
        num_y = space.num_y

        capacities = space.node_capacities
        costs = space.storage_costs
        #: per-server cost of one unit of processed load (inf when W_j = 0:
        #: a zero-capacity server can process nothing in the relaxation).
        with np.errstate(divide="ignore", invalid="ignore"):
            cost_rate = np.where(capacities > 0.0, costs / capacities, np.inf)
        self._cost_rate = cost_rate
        #: pairs whose server can actually absorb load.
        self._pair_active = (
            capacities[space.pair_server_pos] > 0.0
            if num_y
            else np.zeros(0, dtype=bool)
        )
        positive = cost_rate[np.isfinite(cost_rate) & (cost_rate > 0.0)]
        #: reference cost magnitude scaling the dual steps.
        self._cost_ref = float(positive.mean()) if positive.size else 1.0

        # Bandwidth-limited *internal* links, each with the indices of the
        # pairs whose client->server path crosses it: the clients of the
        # link's subtree are one contiguous DFS span, hence one contiguous
        # pair run, filtered by "server strictly above the link".
        self._links: List[Tuple[object, float, np.ndarray]] = []
        enforce = self.problem.constraints.enforce_bandwidth
        if enforce and num_y:
            tree = self.problem.tree
            node_depth = index.node_depth
            starts = space.client_pair_start
            ends = space.client_pair_end
            for pos, node_id in enumerate(index.node_order):
                if pos == 0:  # the root has no uplink
                    continue
                bandwidth = tree.link(node_id).bandwidth
                if not math.isfinite(bandwidth):
                    continue
                c_lo = index.client_span_start[pos]
                c_hi = index.client_span_end[pos]
                if c_hi <= c_lo:
                    continue
                lo = int(starts[c_lo])
                hi = int(ends[c_hi - 1])
                depths = space.pair_server_depth[lo:hi]
                crossing = np.nonzero(depths < node_depth[pos])[0] + lo
                if crossing.size:
                    self._links.append((node_id, float(bandwidth), crossing))

    # ------------------------------------------------------------------ #
    # exact feasibility pre-checks (sound certificates only)
    # ------------------------------------------------------------------ #
    def _certificate(self) -> Optional[str]:
        space = self.space
        index = space.index
        rates = space.client_requests
        active_clients = rates > 0.0
        if not bool(active_clients.any()):
            return None
        counts = (space.client_pair_end - space.client_pair_start).astype(np.intp)

        starved = active_clients & (counts == 0)
        if bool(starved.any()):
            client = space.client_ids[int(np.argmax(starved))]
            return (
                f"client {client!r} has positive rate but no eligible server "
                "under the QoS constraint"
            )

        # All-zero-capacity eligible chains: the max eligible capacity per
        # client (reduceat is safe here: every surviving client has pairs).
        num_y = space.num_y
        if num_y:
            starts = np.minimum(space.client_pair_start, num_y - 1)
            best_cap = np.maximum.reduceat(
                space.node_capacities[space.pair_server_pos], starts
            )
            dead = active_clients & (counts > 0) & (best_cap <= 0.0)
            if bool(dead.any()):
                client = space.client_ids[int(np.argmax(dead))]
                return (
                    f"client {client!r} has positive rate but only "
                    "zero-capacity eligible servers"
                )

        if self.problem.constraints.enforce_bandwidth:
            # Client uplink flows are structural: every eligible server is a
            # proper ancestor, so the uplink must carry the full rate.
            tree = self.problem.tree
            for ci in np.nonzero(active_clients)[0]:
                client_id = space.client_ids[int(ci)]
                bandwidth = tree.link(client_id).bandwidth
                if rates[ci] > bandwidth * (1.0 + _EPS):
                    return (
                        f"client {client_id!r} rate {rates[ci]:g} exceeds its "
                        f"uplink bandwidth {bandwidth:g}"
                    )

        # Hall-style subtree check: a client whose topmost eligible server
        # lies inside subtree(a) forces its whole rate into that subtree.
        if num_y:
            if space.prefix_chains:
                topmost = space.pair_server_pos[space.client_pair_end - 1]
            else:
                topmost = np.empty(len(rates), dtype=np.intp)
                depths = space.pair_server_depth
                for ci in range(len(rates)):
                    lo, hi = space.client_pair_start[ci], space.client_pair_end[ci]
                    if hi > lo:
                        topmost[ci] = space.pair_server_pos[
                            lo + int(np.argmin(depths[lo:hi]))
                        ]
            attach = np.zeros(space.num_x)
            chosen = active_clients & (counts > 0)
            np.add.at(attach, topmost[chosen], rates[chosen])
            demand = np.concatenate(([0.0], np.cumsum(attach)))
            supply = np.concatenate(([0.0], np.cumsum(space.node_capacities)))
            span_end = np.asarray(index.node_span_end, dtype=np.intp)
            positions = np.arange(space.num_x, dtype=np.intp)
            sub_demand = demand[span_end] - demand[positions]
            sub_supply = supply[span_end] - supply[positions]
            overloaded = sub_demand > sub_supply * (1.0 + _EPS) + _EPS
            if bool(overloaded.any()):
                pos = int(np.argmax(sub_demand - sub_supply))
                node = space.node_ids[pos]
                return (
                    f"subtree of {node!r} must absorb {sub_demand[pos]:g} "
                    f"requests but offers only {sub_supply[pos]:g} capacity"
                )
        return None

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(self, *, time_limit: Optional[float] = None) -> LowerBoundResult:
        """Run the scaling / dual loop and return the best Lagrangian bound."""
        certificate = self._certificate()
        if certificate is not None:
            return LowerBoundResult(
                value=math.inf,
                feasible=False,
                method="ipfp",
                policy=self.policy,
                certificate=certificate,
            )
        value, objective = self._iterate(time_limit=time_limit)
        return LowerBoundResult(
            value=value,
            feasible=True,
            method="ipfp",
            policy=self.policy,
            objective=objective,
        )

    def _iterate(self, *, time_limit: Optional[float]) -> Tuple[float, float]:
        from repro.core.costs import trivial_lower_bound

        space = self.space
        config = self.config
        rates = space.client_requests
        active_clients = rates > 0.0
        trivial = float(trivial_lower_bound(self.problem))
        if not bool(active_clients.any()) or not space.num_y:
            return max(0.0, trivial), 0.0

        num_y = space.num_y
        pcp = space.pair_client_pos
        psp = space.pair_server_pos
        capacities = space.node_capacities
        capacitated = capacities > 0.0
        base = self._cost_rate[psp]
        active_pairs = self._pair_active
        # inf base costs only sit on inactive pairs; zero them so the primal
        # arithmetic stays finite (the eval path re-masks them to inf).
        base = np.where(active_pairs, base, 0.0)

        starts = np.minimum(space.client_pair_start, num_y - 1)
        eval_rows = np.nonzero(active_clients)[0]
        row_rates = rates[eval_rows]

        # Duals always start at zero: a re-targeted epoch must reproduce the
        # cold-run bound bit for bit (only the array assembly is reused).
        lam = np.zeros(space.num_x)
        n_links = len(self._links)
        mu = np.zeros(n_links)

        # Uniform-over-eligible start for the primal iterate.
        per_client = np.bincount(pcp[active_pairs], minlength=len(rates)).astype(float)
        share = np.divide(
            rates, per_client, out=np.zeros_like(rates), where=per_client > 0.0
        )
        y = np.where(active_pairs, share[pcp], 0.0)

        inf_mask = np.where(active_pairs, 0.0, np.inf)
        step = config.step * self._cost_ref
        best = -math.inf
        stalled = 0
        deadline = None if time_limit is None else time.perf_counter() + time_limit

        for iteration in range(config.max_iterations):
            # ---- dual value (valid bound at every iterate) ------------- #
            eff = base + lam[psp] + inf_mask
            for li, (_, _, crossing) in enumerate(self._links):
                if mu[li]:
                    eff[crossing] += mu[li]
            row_min = np.minimum.reduceat(eff, starts)[eval_rows]
            value = float(row_rates @ row_min) - float(lam @ capacities)
            for li, (_, bandwidth, _) in enumerate(self._links):
                value -= mu[li] * bandwidth
            if value > best + config.tolerance * max(1.0, abs(value)):
                best = max(best, value)
                stalled = 0
            else:
                best = max(best, value)
                stalled += 1
                if stalled >= config.stall_iterations:
                    break
            if deadline is not None and time.perf_counter() >= deadline:
                break

            # ---- IPFP primal scaling ----------------------------------- #
            row_sum = np.bincount(pcp, weights=y, minlength=len(rates))
            row_scale = np.divide(
                rates, row_sum, out=np.zeros_like(rates), where=row_sum > 0.0
            )
            y *= row_scale[pcp]
            load = np.bincount(psp, weights=y, minlength=space.num_x)
            over = load > capacities
            col_scale = np.ones(space.num_x)
            np.divide(capacities, load, out=col_scale, where=over & (load > 0.0))
            y *= col_scale[psp]
            flows = np.empty(n_links)
            for li, (_, bandwidth, crossing) in enumerate(self._links):
                flow = float(y[crossing].sum())
                flows[li] = flow
                if flow > bandwidth > 0.0:
                    y[crossing] *= bandwidth / flow

            # ---- dual subgradient -------------------------------------- #
            rate = step / (1.0 + iteration)
            violation = np.divide(
                load, capacities, out=np.zeros_like(load), where=capacitated
            )
            lam = np.maximum(0.0, lam + rate * (violation - 1.0) * capacitated)
            for li, (_, bandwidth, _) in enumerate(self._links):
                mu[li] = max(0.0, mu[li] + rate * (flows[li] / bandwidth - 1.0))

        objective = max(best, 0.0)
        value = objective
        costs = space.storage_costs
        if bool(np.all(np.isfinite(costs))) and bool(
            np.all(costs == np.floor(costs))
        ):
            # The mixed optimum is a sum of integral storage costs.
            value = math.ceil(value - _EPS)
        return max(float(value), trivial), objective

    # ------------------------------------------------------------------ #
    # epoch re-targeting
    # ------------------------------------------------------------------ #
    def with_requests(self, problem: ReplicaPlacementProblem) -> "IPFPProgram":
        """Re-target to a rate-only epoch fork of this program's problem.

        The eligibility layout, cost rates and link crossing indices are all
        rate-independent and shared verbatim; only the request vectors are
        re-gathered (through :meth:`VariableSpace.patched`), so solving the
        fork returns a value bit-identical to a cold run on the forked
        problem.  Raises :class:`ValueError` when the diff is not rate-only,
        matching :meth:`~repro.lp.formulation.LinearProgramData.with_requests`
        so the :class:`~repro.algorithms.incremental.IncrementalBounder`
        falls back to a rebuild on structural epochs.
        """
        from repro.algorithms.incremental import diff_problems

        delta = diff_problems(self.problem, problem)
        if not (delta.unchanged or delta.rates_only):
            raise ValueError(
                "with_requests requires a rate-only epoch diff "
                "(topology/capacity/constraint changes need a rebuild)"
            )
        fork = IPFPProgram.__new__(IPFPProgram)
        fork.problem = problem
        fork.policy = self.policy
        fork.config = self.config
        fork.space = self.space.patched(problem)
        fork._cost_rate = self._cost_rate
        fork._pair_active = self._pair_active
        fork._cost_ref = self._cost_ref
        fork._links = self._links
        return fork

    def describe(self) -> str:
        """Short description used in solver diagnostics."""
        return (
            f"ipfp over {self.space.describe()}, "
            f"{len(self._links)} bandwidth-limited internal links"
        )


def ipfp_program(
    problem: ReplicaPlacementProblem,
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    config: Optional[IPFPConfig] = None,
) -> IPFPProgram:
    """Assemble (without solving) the IPFP bound state of an instance."""
    return IPFPProgram(problem, policy=policy, config=config)


def ipfp_bound(
    problem: ReplicaPlacementProblem,
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    config: Optional[IPFPConfig] = None,
    time_limit: Optional[float] = None,
) -> LowerBoundResult:
    """One-shot IPFP lower bound (``trivial <= ipfp <= mixed`` guaranteed)."""
    return ipfp_program(problem, policy=policy, config=config).solve(
        time_limit=time_limit
    )
