"""Structural statistics of a distribution tree.

Used by the experiment reports to characterise the generated workloads
(depth, branching, client spread, load) and by the examples to describe the
platform before solving it.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict

from repro.core.tree import TreeNetwork

__all__ = ["TreeStatistics", "tree_statistics"]


@dataclass(frozen=True)
class TreeStatistics:
    """Summary statistics of a tree network."""

    size: int
    internal_nodes: int
    clients: int
    height: int
    mean_client_depth: float
    max_branching: int
    mean_requests: float
    max_requests: float
    total_requests: float
    total_capacity: float
    load_factor: float
    homogeneous: bool

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view (used by the reporting helpers)."""
        return {
            "size": self.size,
            "internal_nodes": self.internal_nodes,
            "clients": self.clients,
            "height": self.height,
            "mean_client_depth": self.mean_client_depth,
            "max_branching": self.max_branching,
            "mean_requests": self.mean_requests,
            "max_requests": self.max_requests,
            "total_requests": self.total_requests,
            "total_capacity": self.total_capacity,
            "load_factor": self.load_factor,
            "homogeneous": float(self.homogeneous),
        }


def tree_statistics(tree: TreeNetwork) -> TreeStatistics:
    """Compute :class:`TreeStatistics` for a tree network."""
    client_depths = [tree.depth(cid) for cid in tree.client_ids]
    requests = [c.requests for c in tree.clients()]
    branching = [len(tree.children(nid)) for nid in tree.node_ids]
    return TreeStatistics(
        size=tree.size,
        internal_nodes=len(tree.node_ids),
        clients=len(tree.client_ids),
        height=tree.height(),
        mean_client_depth=statistics.fmean(client_depths) if client_depths else 0.0,
        max_branching=max(branching) if branching else 0,
        mean_requests=statistics.fmean(requests) if requests else 0.0,
        max_requests=max(requests) if requests else 0.0,
        total_requests=tree.total_requests(),
        total_capacity=tree.total_capacity(),
        load_factor=tree.load_factor(),
        homogeneous=tree.is_homogeneous(),
    )
