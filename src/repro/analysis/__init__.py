"""Analysis helpers: tree statistics and policy comparisons."""

from repro.analysis.tree_stats import tree_statistics, TreeStatistics
from repro.analysis.comparison import (
    policy_costs,
    dominance_holds,
    policy_gap,
)

__all__ = [
    "tree_statistics",
    "TreeStatistics",
    "policy_costs",
    "dominance_holds",
    "policy_gap",
]
