"""Empirical policy comparisons.

The central qualitative claims of the paper are the dominance chain
``cost(Multiple) <= cost(Upwards) <= cost(Closest)`` (for optimal costs) and
the fact that the gaps can be arbitrarily large.  These helpers evaluate the
chain on concrete instances, using either the exact solvers (small trees) or
the heuristic portfolio (large trees).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.api import solve
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem

__all__ = ["policy_costs", "dominance_holds", "policy_gap"]


def policy_costs(
    problem: ReplicaPlacementProblem, *, exact: bool = False
) -> Dict[Policy, float]:
    """Best-known cost per policy (``math.inf`` when no solution was found).

    With ``exact=True`` the exact ILP is used (small instances); otherwise
    the heuristic portfolio of :func:`repro.api.solve`.
    """
    costs: Dict[Policy, float] = {}
    for policy in Policy.ordered():
        try:
            if exact:
                from repro.lp.exact import exact_cost

                costs[policy] = exact_cost(problem, policy)
            else:
                costs[policy] = solve(problem, policy=policy).cost(problem)
        except InfeasibleError:
            costs[policy] = math.inf
    return costs


def dominance_holds(costs: Dict[Policy, float], *, tolerance: float = 1e-6) -> bool:
    """Check ``cost(Multiple) <= cost(Upwards) <= cost(Closest)``.

    Infinite costs (infeasible policies) respect the chain by convention as
    long as no *more permissive* policy is infeasible while a more
    restrictive one is feasible.
    """
    closest = costs.get(Policy.CLOSEST, math.inf)
    upwards = costs.get(Policy.UPWARDS, math.inf)
    multiple = costs.get(Policy.MULTIPLE, math.inf)
    return multiple <= upwards + tolerance and upwards <= closest + tolerance


def policy_gap(
    costs: Dict[Policy, float], better: Policy, worse: Policy
) -> Optional[float]:
    """Cost ratio ``worse / better`` (``None`` when either is infeasible)."""
    better_cost = costs.get(better, math.inf)
    worse_cost = costs.get(worse, math.inf)
    if not math.isfinite(better_cost) or not math.isfinite(worse_cost) or better_cost <= 0:
        return None
    return worse_cost / better_cost
