"""High-level convenience API.

The session model
-----------------

The package's public surface is organised around one stateful object and a
set of stateless shims over it.  :class:`repro.session.PlacementSession` is
the primary entry point for anything that issues *more than one* query
against the same tree: construct it once and it owns every cache the fast
layers provide -- the :class:`~repro.core.index.TreeIndex`, the assembled
LP programs (re-targeted in place across rate-only epochs via
:meth:`~repro.lp.formulation.LinearProgramData.with_requests`), the
incremental resolver/bounder state, and the per-epoch results themselves.
A ``session.solve()`` followed by ``session.bound()`` never re-indexes the
tree or re-assembles the program; ``session.update(requests=...)`` steps to
the next epoch with an incremental re-solve; ``session.compare()`` and
``session.simulate()`` ride the same warm caches.

The free functions below are **thin shims**: each constructs a throwaway
session and forwards.  They remain the convenient one-shot spelling and are
bit-identical to the session calls (pinned by ``tests/test_session_api.py``):

* :func:`solve` -- place replicas on a tree under a chosen access policy,
  automatically picking the best available algorithm;
* :func:`solve_many` -- batch variant of :func:`solve`, optionally fanned
  out over worker processes with per-worker chunking;
* :func:`solve_sequence` -- dynamic-workload variant: one session consumes
  the epochs, so unchanged epochs are reused and rate-only epochs run on
  patched tree indexes (``mode="patch"`` additionally keeps the placement
  frozen and re-routes only the changed clients);
* :func:`bound_sequence` -- the LP companion of :func:`solve_sequence`:
  per-epoch lower bounds on a resident, epoch-patched program;
* :func:`lower_bound` -- the LP-based lower bound of paper Section 7.1;
* :func:`compare_policies` -- solve the same instance under Closest,
  Upwards and Multiple side by side, optionally with the per-policy
  cost-vs-LP-bound gap (``bounds=True``).

Every result object -- :class:`~repro.session.SolveResult`,
:class:`~repro.session.BoundResult`, :class:`~repro.session.CompareResult`,
:class:`SequenceResult`, :class:`BoundSequenceResult` and the campaign
results of :mod:`repro.experiments.harness` -- implements the unified
protocol of :mod:`repro.core.results`: ``describe()`` for a one-line human
summary, ``to_dict()`` / ``to_json()`` for machine-readable payloads (what
the CLI emits under ``--json``), round-trippable through
:func:`repro.core.results.result_from_dict`.

Scaling up
----------

Every solve runs on the indexed flat-tree engine
(:class:`repro.core.index.TreeIndex` + the array-backed state of
:mod:`repro.algorithms.fast_state`), cross-validated bit-for-bit against
the paper-faithful dict engine (``REPRO_ENGINE=dict``, ``engine="dict"``,
or :func:`repro.algorithms.common.set_default_engine` switch back).  When
a C compiler is available, ``REPRO_ENGINE=native`` (or ``engine="native"``)
moves the hot loops -- span scans, drain/cover, the heuristic sweeps --
into a small compiled kernel library (:mod:`repro.algorithms.native_state`,
built on first use, cached under ``build/native/``) that is pinned
bit-identical to the other two engines; without a compiler the name stays
valid and quietly degrades to ``fast``.  For
campaign-scale workloads, :func:`solve_many` with ``workers=N`` forks a
process pool and splits the instance list into per-worker chunks.  For
long-lived serving, keep a :class:`~repro.session.PlacementSession` per
tree: the caches that a one-shot call pays for on every invocation are paid
once and then patched, which is what
``benchmarks/test_session_reuse.py`` measures.

Past ~10^4 clients the whole-tree index and dense LP assembly become the
wall, and the answer is **sharding** (``solve(..., shards=N)``,
``PlacementSession(shards=N)``, ``repro solve --shards N``): the tree is
partitioned at a small cut of high-level nodes
(:func:`repro.core.partition.partition_problem`), each subtree shard is
solved on its own sliced index
(:meth:`repro.core.index.TreeIndex.sliced` -- contiguous DFS spans, the
whole-tree dense index is never built), and shards that overflow their
local capacity are reconciled at the cut before the per-shard solutions
are stitched into one validated global solution
(:func:`repro.algorithms.sharded.solve_sharded`).  Shard when trees are
large enough that index/LP memory dominates, or when updates are
*regional*: a sharded session re-solves only the shards owning changed
clients, so a rate change confined to one subtree costs one small solve
instead of a whole-tree pass (``benchmarks/test_shard_scaling.py`` pins
both wins).  Keep the whole-tree path (the default, and the one-shard
special case) when the tree is small or optimal cost matters more than
footprint: shard-local solving trades a bounded amount of placement
sharing across the cut for locality.

Lower bounds scale along their own ladder.  The paper's refined bound
(``method="mixed"``: integer placement, rational assignment) is the
tightest and the slowest; the fully rational relaxation (``"rational"``)
drops the integrality; and ``method="ipfp"`` (:mod:`repro.lp.ipfp`) skips
the LP solver entirely, lower-bounding the transportation relaxation by
Lagrangian duality with an iterative-proportional-fitting scaling loop
over the same :class:`~repro.lp.variables.VariableSpace` pair arrays.
IPFP is the per-epoch gap estimate of choice on dynamic workloads: a
rate-only epoch re-targets the resident program (same ``with_requests``
contract as the LP bounds) and reproduces the cold-run value bit for bit,
at a fraction of a rebuild-and-resolve LP epoch
(``benchmarks/test_ipfp_bound.py`` pins the >= 5x one-shot win and the
churn-trajectory win; the ``trivial <= ipfp <= mixed`` sandwich is
asserted across the instance matrix).  Every method is reachable from
:meth:`PlacementSession.bound`, :func:`lower_bound`,
:func:`bound_sequence` and ``repro solve/compare/dynamic --bounds``.

For *many* tenants behind one process, :mod:`repro.serving` turns the
session model into a service: a :class:`~repro.serving.pool.SessionPool`
keeps resident sessions keyed by content fingerprint
(:func:`~repro.serving.fingerprint.problem_fingerprint` -- equivalent
problems share a session, however they were built) under an LRU capacity
and optional byte budget, and ``repro serve`` exposes the pool over
newline-delimited JSON on stdio or HTTP, speaking request envelopes whose
replies are exactly the ``to_dict()`` payloads of this module's result
types (:func:`repro.serving.connect` hands back decoded result objects).
``--snapshot-dir`` persists resident sessions across restarts and restores
them warm: cached epochs answer bit-identically and the next rate-only
bound *patches* the re-assembled program instead of rebuilding it.
Epoch updates can be SLA-aware
(``update(..., resolve="on_saturation")``): the frozen placement is kept
while the replayed epoch stays free of violations and link-saturation
events, so steady traffic drift costs no re-solves at all
(``benchmarks/test_serving_pool.py`` pins the warm-pool win).

At the serving edge, throughput comes from amortising per-request
overhead rather than from more threads.  A **batch envelope**
(``{"op": "batch", "requests": [...]}``) ships many ops -- a whole epoch
trajectory -- through one parse/reply cycle; consecutive items on the
same session share one pool checkout, and unaddressed items inherit the
previous item's session even as in-batch updates re-key it
(:meth:`repro.serving.ServingClient.batch` returns the decoded results,
order-matched, with per-item errors in place).  ``repro serve --loop`` /
``--tcp HOST:PORT`` runs the same protocol on a single-threaded
``selectors`` event loop (:class:`repro.serving.LoopServer`) that never
blocks on a slow client, ``GET /metrics`` exposes the pool's per-op
latency/throughput counters as Prometheus text, and ``repro loadtest``
replays an open-loop inhomogeneous-Poisson arrival schedule against any
endpoint, reporting p50/p99 latency and requests/sec
(``benchmarks/test_serving_throughput.py`` pins the batched-envelope
rate at >= 2x the per-envelope rate on the same workload).

Real workloads enter through **traces** (:mod:`repro.workloads.traces`):
a timestamped request log (CSV/JSONL, gzip-transparent) ingests into a
:class:`~repro.workloads.traces.Trace`,
:func:`~repro.workloads.traces.detect_epochs` places epoch boundaries
where the traffic actually shifts (greedy mean-shift changepoints over
binned counts; :func:`~repro.workloads.traces.fixed_epochs` is the
deterministic fallback) and estimates piecewise-constant per-client
rates, and the resulting epoch model replays through everything above:
:meth:`~repro.workloads.traces.TraceEpochs.problems` emits the same
structure-shared epoch sequence :func:`solve_sequence` consumes
(``repro dynamic --trace LOG``), while
:meth:`~repro.workloads.traces.TraceEpochs.arrival_schedule` rebuilds the
trace's piecewise-constant intensity and samples exact IPPP arrivals for
the load harness (``repro loadtest --trace LOG``).  ``repro trace info``
prints the ingest/epoch report as a first-class
:class:`~repro.workloads.traces.TraceSummary` result, and
:func:`~repro.workloads.traces.sample_trace` inverts the pipeline --
sampling a synthetic log from any rate trajectory -- which is how the
test suite pins estimate/export round-trips within Poisson tolerance
(``benchmarks/test_trace_replay.py`` pins ingest+detection throughput).
"""

from __future__ import annotations

import contextlib
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.results import ResultBase, encode_float, register_result
from repro.core.solution import Solution
from repro.core.tree import TreeNetwork
from repro.session import (
    SESSION_MODES,
    BoundResult,
    CompareResult,
    PlacementSession,
    SolveResult,
    as_problem,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.incremental import BoundStats, ResolveStats
    from repro.lp.bounds import LowerBoundResult

__all__ = [
    "PlacementSession",
    "solve",
    "solve_many",
    "solve_sequence",
    "SequenceResult",
    "bound_sequence",
    "BoundSequenceResult",
    "lower_bound",
    "compare_policies",
    "SolveResult",
    "BoundResult",
    "CompareResult",
    "as_problem",
]


def solve(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    shards: Optional[Union[int, Sequence]] = None,
) -> Solution:
    """Solve a replica-placement instance under the given access policy.

    A shim over a throwaway :class:`~repro.session.PlacementSession`; use a
    session directly when issuing several queries against the same tree.

    Parameters
    ----------
    instance:
        A :class:`~repro.core.tree.TreeNetwork` or a fully-specified
        :class:`~repro.core.problem.ReplicaPlacementProblem`.
    policy:
        Access policy (``"closest"``, ``"upwards"`` or ``"multiple"``).
    algorithm:
        Name of a registered heuristic to force; by default the optimal
        algorithm is used for Multiple on homogeneous platforms and the best
        result of the policy's heuristic portfolio otherwise.
    shards:
        Optional sharded-solve spec (target shard count or explicit cut
        node sequence): partition the tree into subtree shards, solve each
        on its own sliced index and reconcile at the cut (see
        :func:`repro.algorithms.sharded.solve_sharded`).  ``None``/``1``
        is the whole-tree path.

    Raises
    ------
    InfeasibleError
        When no algorithm produces a valid solution.
    """
    session = PlacementSession(
        instance,
        constraints=constraints,
        kind=kind,
        policy=policy,
        algorithm=algorithm,
        shards=shards,
    )
    return session.solve().solution


def _solve_chunk(
    problems: Sequence[Union[TreeNetwork, ReplicaPlacementProblem]],
    policy: Union[Policy, str],
    algorithm: Optional[str],
    constraints: Optional[ConstraintSet],
    kind: Optional[ProblemKind],
    on_error: str,
    engine: Optional[str],
) -> List[Tuple[Optional[Solution], Optional[Exception]]]:
    """Solve a contiguous chunk of instances (runs inside a worker process).

    Returns one ``(solution, error)`` pair per instance so the parent can
    re-raise in input order under ``on_error="raise"``.
    """
    from repro.algorithms.common import use_engine

    results: List[Tuple[Optional[Solution], Optional[Exception]]] = []
    with use_engine(engine) if engine else contextlib.nullcontext():
        for problem in problems:
            try:
                solution = solve(
                    problem,
                    policy=policy,
                    algorithm=algorithm,
                    constraints=constraints,
                    kind=kind,
                )
                results.append((solution, None))
            except InfeasibleError as error:
                if on_error == "none":
                    results.append((None, None))
                else:
                    # The caller raises the first in-order error and discards
                    # everything after it: stop solving this chunk now.
                    results.append((None, error))
                    break
    return results


#: Per-call payloads inherited by forked workers (see :func:`chunked_pool_map`):
#: on fork platforms the work items travel to the pool via the copy-on-write
#: process image instead of being pickled per chunk, which matters for large
#: trees.  Keyed by a per-call token so concurrent batch calls from several
#: threads never observe each other's payloads; entries are removed as soon
#: as the owning pool has returned.
_FORK_PAYLOADS: Dict[str, Tuple[Callable, Sequence]] = {}


def _fork_chunk_entry(token: str, start: int, end: int):
    """Worker-side entry for fork pools: apply the payload fn to its slice."""
    chunk_fn, items = _FORK_PAYLOADS[token]
    return chunk_fn(items[start:end])


def chunked_pool_map(chunk_fn: Callable, items: Sequence, workers: int) -> List:
    """Apply ``chunk_fn`` to contiguous chunks of ``items`` over a process pool.

    ``chunk_fn`` receives a list slice and returns a list of per-item
    results; the concatenated results preserve input order.  The batch is
    split into one chunk per worker, so each process pays the dispatch cost
    once.  On fork platforms the items reach the workers through the
    inherited process image (only ``(token, start, end)`` triples and the
    results are pickled); elsewhere each chunk is pickled into the pool.

    ``items`` must be non-empty and ``workers >= 2`` (callers handle the
    sequential cases); used by :func:`solve_many` and the experiment
    harness's parallel campaigns.
    """
    import multiprocessing
    import threading

    worker_count = min(workers, len(items))
    chunk_size = (len(items) + worker_count - 1) // worker_count
    bounds = [
        (start, min(start + chunk_size, len(items)))
        for start in range(0, len(items), chunk_size)
    ]
    # fork() from a multi-threaded parent can deadlock a child on a lock held
    # by another thread, so the zero-copy payload path is only taken from a
    # single-threaded process; otherwise fall back to the platform default
    # context with pickled chunks.
    can_fork = (
        "fork" in multiprocessing.get_all_start_methods()
        and threading.active_count() == 1
    )
    context = multiprocessing.get_context("fork") if can_fork else None
    with ProcessPoolExecutor(max_workers=worker_count, mp_context=context) as pool:
        if can_fork:
            token = uuid.uuid4().hex
            _FORK_PAYLOADS[token] = (chunk_fn, items)
            try:
                futures = [
                    pool.submit(_fork_chunk_entry, token, start, end)
                    for start, end in bounds
                ]
                return [result for future in futures for result in future.result()]
            finally:
                _FORK_PAYLOADS.pop(token, None)
        else:  # non-fork platforms, or a multi-threaded parent process
            futures = [
                pool.submit(chunk_fn, list(items[start:end])) for start, end in bounds
            ]
            return [result for future in futures for result in future.result()]


def solve_many(
    problems: Iterable[Union[TreeNetwork, ReplicaPlacementProblem]],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    workers: Optional[int] = None,
    on_error: str = "none",
    engine: Optional[str] = None,
) -> List[Optional[Solution]]:
    """Solve a batch of instances, optionally over a process pool.

    Results are **order-preserving**: ``result[i]`` always corresponds to
    ``problems[i]`` and is identical to ``solve(problems[i], ...)`` whatever
    the worker count (the solvers are deterministic).

    Parameters
    ----------
    problems:
        Trees or fully-specified problems; coerced like :func:`solve`.
    policy, algorithm, constraints, kind:
        Forwarded to :func:`solve` for every instance.
    workers:
        ``None`` or ``<= 1`` solves sequentially in-process.  Larger values
        fork a :class:`~concurrent.futures.ProcessPoolExecutor` and split
        the batch into one contiguous chunk per worker, so each process
        pays the serialisation cost once per chunk rather than per
        instance.
    on_error:
        ``"none"`` (default) maps infeasible instances to ``None`` in the
        result list, mirroring the success-rate accounting of the paper's
        campaigns; ``"raise"`` re-raises the first
        :class:`~repro.core.exceptions.InfeasibleError` in input order.
        Any other exception always propagates.
    engine:
        Optional request-state engine override -- any name from
        :func:`repro.algorithms.common.available_engines` (``"dict"``,
        ``"fast"`` or the compiled ``"native"``) -- applied inside the
        workers; defaults to the process-wide engine.

    Returns
    -------
    list of Solution or None
        One entry per instance, ``None`` where no valid solution exists and
        ``on_error="none"``.
    """
    if on_error not in ("none", "raise"):
        raise ValueError(f"on_error must be 'none' or 'raise', got {on_error!r}")
    batch = list(problems)
    if not batch:
        return []

    if workers is None or workers <= 1:
        pairs = _solve_chunk(batch, policy, algorithm, constraints, kind, on_error, engine)
    else:
        pairs = chunked_pool_map(
            partial(
                _solve_chunk,
                policy=policy,
                algorithm=algorithm,
                constraints=constraints,
                kind=kind,
                on_error=on_error,
                engine=engine,
            ),
            batch,
            workers,
        )

    solutions: List[Optional[Solution]] = []
    for solution, error in pairs:
        if error is not None:
            raise error
        solutions.append(solution)
    return solutions


@register_result
@dataclass
class SequenceResult(ResultBase):
    """Outcome of :func:`solve_sequence` over one epoch sequence.

    ``solutions[t]`` is the epoch-``t`` solution (``None`` when infeasible
    and ``on_error="none"``); ``stats[t]`` records the strategy used and the
    migration cost relative to epoch ``t - 1`` (epoch 0 migrates from an
    empty placement: its stats are the cold-start deployment).
    """

    payload_type = "sequence_result"

    mode: str
    policy: Policy
    solutions: List[Optional[Solution]]
    stats: List["ResolveStats"]

    # ------------------------------------------------------------------ #
    @property
    def costs(self) -> List[Optional[float]]:
        """Per-epoch storage costs (``None`` for infeasible epochs)."""
        return [entry.cost for entry in self.stats]

    @property
    def solved_epochs(self) -> int:
        """Number of epochs with a valid solution."""
        return sum(solution is not None for solution in self.solutions)

    def strategy_counts(self) -> Dict[str, int]:
        """How many epochs were reused / patched / solved."""
        counts: Dict[str, int] = {}
        for entry in self.stats:
            counts[entry.strategy] = counts.get(entry.strategy, 0) + 1
        return counts

    def total_migrations(self) -> Dict[str, float]:
        """Aggregate migration cost over the sequence, excluding epoch 0.

        Epoch 0 is the cold-start deployment, not a migration; including it
        would make every trajectory look churn-heavy.
        """
        tail = self.stats[1:]
        return {
            "replicas_added": sum(entry.replicas_added for entry in tail),
            "replicas_dropped": sum(entry.replicas_dropped for entry in tail),
            "requests_reassigned": sum(entry.requests_reassigned for entry in tail),
        }

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        counts = self.strategy_counts()
        strategies = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        migrations = self.total_migrations()
        return (
            f"{len(self.solutions)} epochs ({self.solved_epochs} solved: {strategies}), "
            f"+{migrations['replicas_added']}/-{migrations['replicas_dropped']} replicas, "
            f"{migrations['requests_reassigned']:g} requests re-routed"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible payload (unified result protocol)."""
        from repro.core.serialization import solution_to_dict

        return self._tagged(
            {
                "mode": self.mode,
                "policy": self.policy.value,
                "epochs": len(self.solutions),
                "solved_epochs": self.solved_epochs,
                "costs": [encode_float(cost) for cost in self.costs],
                "strategies": self.strategy_counts(),
                "migrations": self.total_migrations(),
                "stats": [entry.to_dict() for entry in self.stats],
                "solutions": [
                    solution_to_dict(solution) if solution is not None else None
                    for solution in self.solutions
                ],
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SequenceResult":
        """Rebuild a sequence result from a :meth:`to_dict` payload."""
        from repro.algorithms.incremental import ResolveStats
        from repro.core.serialization import solution_from_dict

        return cls(
            mode=str(payload["mode"]),
            policy=Policy.parse(payload["policy"]),
            solutions=[
                solution_from_dict(entry) if entry is not None else None
                for entry in payload["solutions"]
            ],
            stats=[ResolveStats.from_dict(entry) for entry in payload["stats"]],
        )


def solve_sequence(
    epochs: Iterable[Union[TreeNetwork, ReplicaPlacementProblem]],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    mode: str = "incremental",
    resolve: Union[bool, str] = "always",
    on_error: str = "none",
    engine: Optional[str] = None,
    shards: Optional[Union[int, Sequence]] = None,
) -> SequenceResult:
    """Solve a dynamic-workload epoch sequence with warm starts.

    A shim over one :class:`~repro.session.PlacementSession` fed every
    epoch through :meth:`~repro.session.PlacementSession.update`.

    Parameters
    ----------
    epochs:
        Trees or problems, one per epoch, e.g. a trajectory built by
        :mod:`repro.workloads.dynamic`.  Epochs forked with
        :meth:`TreeNetwork.with_requests` (as the trajectory generators do)
        get the cheapest incremental treatment.
    policy, algorithm, constraints, kind:
        Forwarded to the session for every epoch.
    mode:
        ``"incremental"`` (default) -- reuse unchanged epochs, re-solve the
        rest; per-epoch results are cost-identical to ``"scratch"``.
        ``"patch"`` -- additionally keep the placement frozen across
        rate-only epochs and re-route just the changed clients (minimal
        migrations, possibly higher cost, falls back to a full re-solve
        when the frozen placement cannot absorb the new rates).
        ``"scratch"`` -- plain per-epoch solving (the baseline).
    resolve:
        Epoch re-solve discipline forwarded to
        :meth:`~repro.session.PlacementSession.update`: ``"always"`` (the
        default) re-solves every epoch; ``"on_saturation"`` is SLA-aware --
        the previous placement is kept frozen (routes re-scaled to the new
        rates) unless the replayed epoch violates a constraint or
        saturates a link, and only then re-solved.  Kept epochs report
        strategy ``"kept"``.  Epoch 0 always solves.
    on_error:
        ``"none"`` records infeasible epochs as ``None``; ``"raise"``
        re-raises the first :class:`~repro.core.exceptions.InfeasibleError`
        in epoch order.
    engine:
        Optional request-state engine override -- any name from
        :func:`repro.algorithms.common.available_engines` (``"dict"``,
        ``"fast"`` or the compiled ``"native"``).
    shards:
        Optional sharded-solve spec forwarded to the session: epochs are
        solved shard-by-shard and a rate change confined to one shard
        re-solves only that shard (the others report ``"reused"``).

    Returns
    -------
    SequenceResult
        Per-epoch solutions plus strategy and migration statistics.
    """
    # Validate up front (the session re-validates, but an empty epoch
    # iterable would otherwise let a bad mode through unreported).
    if mode not in SESSION_MODES:
        raise ValueError(
            f"unknown mode {mode!r}; expected one of {sorted(SESSION_MODES)}"
        )
    if resolve not in (True, "always", "on_saturation"):
        raise ValueError(
            f"resolve must be 'always' or 'on_saturation', got {resolve!r}"
        )
    if on_error not in ("none", "raise"):
        raise ValueError(f"on_error must be 'none' or 'raise', got {on_error!r}")

    session: Optional[PlacementSession] = None
    solutions: List[Optional[Solution]] = []
    stats: List["ResolveStats"] = []
    for epoch in epochs:
        if session is None:
            session = PlacementSession(
                epoch,
                constraints=constraints,
                kind=kind,
                policy=policy,
                algorithm=algorithm,
                mode=mode,
                engine=engine,
                shards=shards,
            )
            result = session.solve(on_error="none")
        else:
            result = session.update(epoch, resolve=resolve)
        if result.solution is None and on_error == "raise":
            raise InfeasibleError(
                f"epoch {result.stats.epoch} has no valid solution under the "
                f"{session.policy.value} policy",
                policy=session.policy,
            )
        solutions.append(result.solution)
        stats.append(result.stats)
    resolved_policy = session.policy if session is not None else Policy.parse(policy)
    return SequenceResult(
        mode=mode, policy=resolved_policy, solutions=solutions, stats=stats
    )


@register_result
@dataclass
class BoundSequenceResult(ResultBase):
    """Outcome of :func:`bound_sequence` over one epoch sequence.

    ``values[t]`` is the epoch-``t`` lower bound (``math.inf`` when even the
    Multiple formulation is infeasible); ``stats[t]`` records how it was
    obtained (``reused`` / ``patched`` / ``built``) and its runtime.
    """

    payload_type = "bound_sequence_result"

    method: str
    policy: Policy
    results: List["LowerBoundResult"]
    stats: List["BoundStats"]

    # ------------------------------------------------------------------ #
    @property
    def values(self) -> List[float]:
        """Per-epoch lower bounds (``math.inf`` on infeasible epochs)."""
        return [entry.value for entry in self.results]

    def strategy_counts(self) -> Dict[str, int]:
        """How many epochs were reused / patched / built."""
        counts: Dict[str, int] = {}
        for entry in self.stats:
            counts[entry.strategy] = counts.get(entry.strategy, 0) + 1
        return counts

    def gaps(self, costs: Sequence[Optional[float]]) -> List[Optional[float]]:
        """Per-epoch relative cost-vs-bound gaps ``cost / bound``.

        ``costs`` is typically :attr:`SequenceResult.costs` from
        :func:`solve_sequence` over the same epochs.  Epochs without a cost,
        without a finite positive bound, or with mismatched feasibility map
        to ``None``.
        """
        if len(costs) != len(self.results):
            raise ValueError(
                f"{len(costs)} costs for {len(self.results)} bounded epochs"
            )
        gaps: List[Optional[float]] = []
        for cost, entry in zip(costs, self.results):
            if cost is None or not entry.feasible or entry.value <= 0:
                gaps.append(None)
            else:
                gaps.append(cost / entry.value)
        return gaps

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        counts = self.strategy_counts()
        strategies = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        finite = sum(1 for entry in self.results if entry.feasible)
        return (
            f"{len(self.results)} epochs bounded ({strategies}), "
            f"{finite} feasible, method={self.method}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible payload (unified result protocol)."""
        return self._tagged(
            {
                "method": self.method,
                "policy": self.policy.value,
                "epochs": len(self.results),
                "values": [encode_float(value) for value in self.values],
                "strategies": self.strategy_counts(),
                "results": [entry.to_dict() for entry in self.results],
                "stats": [entry.to_dict() for entry in self.stats],
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BoundSequenceResult":
        """Rebuild a bound-sequence result from a :meth:`to_dict` payload."""
        from repro.algorithms.incremental import BoundStats
        from repro.lp.bounds import LowerBoundResult

        return cls(
            method=str(payload["method"]),
            policy=Policy.parse(payload["policy"]),
            results=[LowerBoundResult.from_dict(entry) for entry in payload["results"]],
            stats=[BoundStats.from_dict(entry) for entry in payload["stats"]],
        )


def bound_sequence(
    epochs: Iterable[Union[TreeNetwork, ReplicaPlacementProblem]],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    method: str = "mixed",
    mode: str = "incremental",
    time_limit: Optional[float] = None,
) -> BoundSequenceResult:
    """Per-epoch LP lower bounds over a dynamic-workload epoch sequence.

    The companion of :func:`solve_sequence` (and a shim over one
    bound-only :class:`~repro.session.PlacementSession`): where that
    function tracks what the heuristics *achieve* across epochs, this one
    tracks what the LP says is *achievable*, making per-epoch
    cost-vs-bound gaps a first-class series (see
    :meth:`BoundSequenceResult.gaps`).

    Parameters
    ----------
    epochs:
        Trees or problems, one per epoch, as accepted by
        :func:`solve_sequence`.
    policy:
        Policy whose formulation is relaxed; the default Multiple is a valid
        lower bound for every policy (the paper's choice).
    method:
        ``"mixed"`` (default) -- the paper's refined bound: integer
        placement, rational assignment.  ``"rational"`` -- the fully
        rational relaxation (cheaper, looser).  ``"ipfp"`` -- the
        scaling-based Lagrangian bound of :mod:`repro.lp.ipfp` (no LP
        solve at all; looser still, but near-heuristic speed and the same
        rate-only re-targeting across epochs).
    mode:
        ``"incremental"`` (default) -- reuse the bound of unchanged epochs,
        re-target the cached program via
        :meth:`~repro.lp.formulation.LinearProgramData.with_requests` for
        rate-only epochs, rebuild otherwise.  Bounds are identical to
        ``"scratch"`` (per-epoch rebuilds) -- cross-validated by the test
        suite -- while skipping most of the per-epoch assembly work.
    time_limit:
        Optional per-epoch wall-clock limit forwarded to the backend.
    """
    if mode not in ("incremental", "scratch"):
        raise ValueError(
            f"unknown mode {mode!r}; expected one of ('incremental', 'scratch')"
        )
    if method not in ("mixed", "rational", "ipfp"):
        raise ValueError(
            f"unknown lower-bound method {method!r}; expected one of "
            f"('mixed', 'rational', 'ipfp')"
        )

    session: Optional[PlacementSession] = None
    results: List["LowerBoundResult"] = []
    stats: List["BoundStats"] = []
    for epoch in epochs:
        if session is None:
            session = PlacementSession(
                epoch, constraints=constraints, kind=kind, mode=mode
            )
        else:
            session.update(epoch, resolve=False)
        entry = session.bound(policy=policy, method=method, time_limit=time_limit)
        results.append(entry.result)
        stats.append(entry.stats)
    resolved_policy = Policy.parse(policy)
    return BoundSequenceResult(
        method=method, policy=resolved_policy, results=results, stats=stats
    )


def lower_bound(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    method: str = "mixed",
) -> float:
    """LP-based lower bound on the optimal replica cost.

    ``method`` selects the refined bound of the paper (``"mixed"``: integer
    placement variables, rational assignments), the fully rational
    relaxation (``"rational"``), the IPFP Lagrangian bound (``"ipfp"``) or
    the purely combinatorial bound (``"trivial"``, no LP solve at all).  A
    shim over :meth:`PlacementSession.bound`.
    """
    session = PlacementSession(instance, constraints=constraints, kind=kind)
    return session.bound(method=method).value


def compare_policies(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    policies: Iterable[Union[Policy, str]] = Policy.ordered(),
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    engine: Optional[str] = None,
    bounds: bool = False,
    bound_method: str = "mixed",
) -> CompareResult:
    """Solve the same instance under several policies.

    Returns a :class:`~repro.session.CompareResult`: a mapping from policy
    to the best solution found (or ``None`` when the policy admits no
    solution / every algorithm failed) -- mirroring the paper's observation
    that Multiple solves strictly more instances than Upwards, which solves
    strictly more than Closest -- plus per-policy costs and, with
    ``bounds=True``, the Multiple LP lower bound and the per-policy
    cost-vs-bound gaps.

    Parameters
    ----------
    engine:
        Optional request-state engine override (any name from
        :func:`repro.algorithms.common.available_engines`), matching the
        :func:`solve_many` / :func:`solve_sequence` convention.
    bounds:
        Also compute the LP lower bound (method ``bound_method``) and
        report per-policy gaps via :meth:`CompareResult.gaps`.
    """
    session = PlacementSession(
        instance, constraints=constraints, kind=kind, engine=engine
    )
    return session.compare(policies=policies, bounds=bounds, bound_method=bound_method)
