"""High-level convenience API.

Most users only need three calls:

* :func:`solve` -- place replicas on a tree under a chosen access policy,
  automatically picking the best available algorithm (the optimal greedy for
  Multiple on homogeneous platforms, the best of the paper's heuristics
  otherwise);
* :func:`lower_bound` -- the LP-based lower bound of paper Section 7.1,
  used to judge how far a solution is from the optimum;
* :func:`compare_policies` -- solve the same instance under Closest, Upwards
  and Multiple and report the costs side by side (the experiment of the
  paper in miniature).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Union

from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.tree import TreeNetwork

__all__ = ["solve", "lower_bound", "compare_policies", "as_problem"]

#: Heuristics tried (in order) per policy when no explicit algorithm is given.
_DEFAULT_PORTFOLIO = {
    Policy.CLOSEST: ("CTDA", "CTDLF", "CBU"),
    Policy.UPWARDS: ("UBCF", "UTD"),
    Policy.MULTIPLE: ("MTD", "MBU", "MG"),
}


def as_problem(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
) -> ReplicaPlacementProblem:
    """Coerce a tree or problem into a :class:`ReplicaPlacementProblem`."""
    if isinstance(instance, ReplicaPlacementProblem):
        problem = instance
        if constraints is not None:
            problem = problem.with_constraints(constraints)
        if kind is not None:
            problem = problem.with_kind(kind)
        return problem
    return ReplicaPlacementProblem(
        tree=instance,
        constraints=constraints or ConstraintSet.none(),
        kind=kind or ProblemKind.REPLICA_COST,
    )


def solve(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
) -> Solution:
    """Solve a replica-placement instance under the given access policy.

    Parameters
    ----------
    instance:
        A :class:`~repro.core.tree.TreeNetwork` or a fully-specified
        :class:`~repro.core.problem.ReplicaPlacementProblem`.
    policy:
        Access policy (``"closest"``, ``"upwards"`` or ``"multiple"``).
    algorithm:
        Name of a registered heuristic to force; by default the optimal
        algorithm is used for Multiple on homogeneous platforms and the best
        result of the policy's heuristic portfolio otherwise.

    Raises
    ------
    InfeasibleError
        When no algorithm produces a valid solution.
    """
    from repro.algorithms.base import get_heuristic

    problem = as_problem(instance, constraints=constraints, kind=kind)
    policy = Policy.parse(policy)

    if algorithm is not None:
        return get_heuristic(algorithm).solve(problem)

    candidates = list(_DEFAULT_PORTFOLIO[policy])
    if policy is Policy.MULTIPLE and problem.is_homogeneous:
        candidates = ["MultipleOptimalHomogeneous"] + candidates

    best: Optional[Solution] = None
    best_cost = math.inf
    for name in candidates:
        candidate = get_heuristic(name).try_solve(problem)
        if candidate is None:
            continue
        cost = candidate.cost(problem)
        if cost < best_cost:
            best, best_cost = candidate, cost
        if name == "MultipleOptimalHomogeneous":
            # Provably optimal: no need to try the heuristics.
            break
    if best is None:
        raise InfeasibleError(
            f"no valid solution found under the {policy.value} policy", policy=policy
        )
    return best


def lower_bound(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    method: str = "mixed",
) -> float:
    """LP-based lower bound on the optimal replica cost.

    ``method`` selects the refined bound of the paper (``"mixed"``: integer
    placement variables, rational assignments), the fully rational
    relaxation (``"rational"``) or the purely combinatorial bound
    (``"trivial"``, no LP solve at all).
    """
    problem = as_problem(instance, constraints=constraints, kind=kind)
    if method == "trivial":
        from repro.core.costs import trivial_lower_bound

        return trivial_lower_bound(problem)
    from repro.lp.bounds import lp_lower_bound, rational_relaxation_bound

    if method == "mixed":
        return lp_lower_bound(problem).value
    if method == "rational":
        return rational_relaxation_bound(problem).value
    raise ValueError(f"unknown lower-bound method {method!r}")


def compare_policies(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    policies: Iterable[Union[Policy, str]] = Policy.ordered(),
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
) -> Dict[Policy, Optional[Solution]]:
    """Solve the same instance under several policies.

    Returns a mapping from policy to the best solution found (or ``None``
    when the policy admits no solution / every algorithm failed), mirroring
    the paper's observation that Multiple solves strictly more instances
    than Upwards, which solves strictly more than Closest.
    """
    problem = as_problem(instance, constraints=constraints, kind=kind)
    results: Dict[Policy, Optional[Solution]] = {}
    for policy in policies:
        policy = Policy.parse(policy)
        try:
            results[policy] = solve(problem, policy=policy)
        except InfeasibleError:
            results[policy] = None
    return results
