"""High-level convenience API.

Most users only need four calls:

* :func:`solve` -- place replicas on a tree under a chosen access policy,
  automatically picking the best available algorithm (the optimal greedy for
  Multiple on homogeneous platforms, the best of the paper's heuristics
  otherwise);
* :func:`solve_many` -- batch variant of :func:`solve`: solve a sequence of
  instances, optionally fanned out over worker processes with per-worker
  chunking.  Results are order-preserving, and infeasible instances are
  reported as ``None`` or raised depending on ``on_error``;
* :func:`solve_sequence` -- dynamic-workload variant: solve a sequence of
  *epochs* (e.g. built by :mod:`repro.workloads.dynamic`) with the
  incremental re-solver, returning per-epoch solutions plus migration
  statistics;
* :func:`lower_bound` -- the LP-based lower bound of paper Section 7.1,
  used to judge how far a solution is from the optimum;
* :func:`compare_policies` -- solve the same instance under Closest, Upwards
  and Multiple and report the costs side by side (the experiment of the
  paper in miniature).

Scaling up
----------

Every solve runs on the indexed flat-tree engine
(:class:`repro.core.index.TreeIndex` + the array-backed state of
:mod:`repro.algorithms.fast_state`), which interns node ids to dense
integers once per tree and is cross-validated bit-for-bit against the
paper-faithful dict engine.  ``REPRO_ENGINE=dict`` (or
:func:`repro.algorithms.common.set_default_engine`) switches back to the
seed implementation.  For campaign-scale workloads, :func:`solve_many`
with ``workers=N`` forks a process pool and splits the instance list into
per-worker chunks, turning a load sweep over hundreds of trees into an
embarrassingly parallel map.

For *time-varying* workloads, :func:`solve_sequence` replaces the naive
per-epoch loop: epochs that did not change are reused outright, rate-only
epochs run on patched tree indexes instead of fresh DFS builds, and
``mode="patch"`` keeps the placement frozen and re-routes only the changed
clients (migration-minimal operation).  The default ``mode="incremental"``
is cost-identical to from-scratch solves -- cross-validated per epoch by
the dynamic-workload suite -- while doing measurably less work on
low-churn sequences (see ``benchmarks/test_incremental_speed.py``).

The LP layer scales the same way.  :func:`repro.lp.build_program` emits the
Section 5 programs as bulk COO/CSR gathers over the
:class:`~repro.core.index.TreeIndex` spans (several times faster than the
row-by-row reference builder it is cross-validated against, see
``benchmarks/test_lp_speed.py``), and :func:`bound_sequence` tracks the LP
lower bound across a dynamic trajectory: unchanged epochs reuse the
previous bound, rate-only epochs re-target the cached program through
:meth:`~repro.lp.formulation.LinearProgramData.with_requests` (constraint
sparsity shared verbatim, only the RHS and variable uppers rewritten)
instead of re-assembling it.  Pairing :func:`solve_sequence` with
:func:`bound_sequence` makes per-epoch cost-vs-bound gaps cheap enough to
monitor on every trajectory (``repro dynamic --bounds``).
"""

from __future__ import annotations

import math
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.tree import TreeNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.incremental import BoundStats, ResolveStats
    from repro.lp.bounds import LowerBoundResult

__all__ = [
    "solve",
    "solve_many",
    "solve_sequence",
    "SequenceResult",
    "bound_sequence",
    "BoundSequenceResult",
    "lower_bound",
    "compare_policies",
    "as_problem",
]

#: Heuristics tried (in order) per policy when no explicit algorithm is given.
_DEFAULT_PORTFOLIO = {
    Policy.CLOSEST: ("CTDA", "CTDLF", "CBU"),
    Policy.UPWARDS: ("UBCF", "UTD"),
    Policy.MULTIPLE: ("MTD", "MBU", "MG"),
}


def as_problem(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
) -> ReplicaPlacementProblem:
    """Coerce a tree or problem into a :class:`ReplicaPlacementProblem`."""
    if isinstance(instance, ReplicaPlacementProblem):
        problem = instance
        if constraints is not None:
            problem = problem.with_constraints(constraints)
        if kind is not None:
            problem = problem.with_kind(kind)
        return problem
    return ReplicaPlacementProblem(
        tree=instance,
        constraints=constraints or ConstraintSet.none(),
        kind=kind or ProblemKind.REPLICA_COST,
    )


def solve(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
) -> Solution:
    """Solve a replica-placement instance under the given access policy.

    Parameters
    ----------
    instance:
        A :class:`~repro.core.tree.TreeNetwork` or a fully-specified
        :class:`~repro.core.problem.ReplicaPlacementProblem`.
    policy:
        Access policy (``"closest"``, ``"upwards"`` or ``"multiple"``).
    algorithm:
        Name of a registered heuristic to force; by default the optimal
        algorithm is used for Multiple on homogeneous platforms and the best
        result of the policy's heuristic portfolio otherwise.

    Raises
    ------
    InfeasibleError
        When no algorithm produces a valid solution.
    """
    from repro.algorithms.base import get_heuristic

    problem = as_problem(instance, constraints=constraints, kind=kind)
    policy = Policy.parse(policy)

    if algorithm is not None:
        return get_heuristic(algorithm).solve(problem)

    candidates = list(_DEFAULT_PORTFOLIO[policy])
    if policy is Policy.MULTIPLE and problem.is_homogeneous:
        candidates = ["MultipleOptimalHomogeneous"] + candidates

    best: Optional[Solution] = None
    best_cost = math.inf
    for name in candidates:
        candidate = get_heuristic(name).try_solve(problem)
        if candidate is None:
            continue
        cost = candidate.cost(problem)
        if cost < best_cost:
            best, best_cost = candidate, cost
        if name == "MultipleOptimalHomogeneous":
            # Provably optimal: no need to try the heuristics.
            break
    if best is None:
        raise InfeasibleError(
            f"no valid solution found under the {policy.value} policy", policy=policy
        )
    return best


def _solve_chunk(
    problems: Sequence[Union[TreeNetwork, ReplicaPlacementProblem]],
    policy: Union[Policy, str],
    algorithm: Optional[str],
    constraints: Optional[ConstraintSet],
    kind: Optional[ProblemKind],
    on_error: str,
    engine: Optional[str],
) -> List[Tuple[Optional[Solution], Optional[Exception]]]:
    """Solve a contiguous chunk of instances (runs inside a worker process).

    Returns one ``(solution, error)`` pair per instance so the parent can
    re-raise in input order under ``on_error="raise"``.
    """
    import contextlib

    from repro.algorithms.common import use_engine

    results: List[Tuple[Optional[Solution], Optional[Exception]]] = []
    with use_engine(engine) if engine else contextlib.nullcontext():
        for problem in problems:
            try:
                solution = solve(
                    problem,
                    policy=policy,
                    algorithm=algorithm,
                    constraints=constraints,
                    kind=kind,
                )
                results.append((solution, None))
            except InfeasibleError as error:
                if on_error == "none":
                    results.append((None, None))
                else:
                    # The caller raises the first in-order error and discards
                    # everything after it: stop solving this chunk now.
                    results.append((None, error))
                    break
    return results


#: Per-call payloads inherited by forked workers (see :func:`chunked_pool_map`):
#: on fork platforms the work items travel to the pool via the copy-on-write
#: process image instead of being pickled per chunk, which matters for large
#: trees.  Keyed by a per-call token so concurrent batch calls from several
#: threads never observe each other's payloads; entries are removed as soon
#: as the owning pool has returned.
_FORK_PAYLOADS: Dict[str, Tuple[Callable, Sequence]] = {}


def _fork_chunk_entry(token: str, start: int, end: int):
    """Worker-side entry for fork pools: apply the payload fn to its slice."""
    chunk_fn, items = _FORK_PAYLOADS[token]
    return chunk_fn(items[start:end])


def chunked_pool_map(chunk_fn: Callable, items: Sequence, workers: int) -> List:
    """Apply ``chunk_fn`` to contiguous chunks of ``items`` over a process pool.

    ``chunk_fn`` receives a list slice and returns a list of per-item
    results; the concatenated results preserve input order.  The batch is
    split into one chunk per worker, so each process pays the dispatch cost
    once.  On fork platforms the items reach the workers through the
    inherited process image (only ``(token, start, end)`` triples and the
    results are pickled); elsewhere each chunk is pickled into the pool.

    ``items`` must be non-empty and ``workers >= 2`` (callers handle the
    sequential cases); used by :func:`solve_many` and the experiment
    harness's parallel campaigns.
    """
    import multiprocessing
    import threading

    worker_count = min(workers, len(items))
    chunk_size = (len(items) + worker_count - 1) // worker_count
    bounds = [
        (start, min(start + chunk_size, len(items)))
        for start in range(0, len(items), chunk_size)
    ]
    # fork() from a multi-threaded parent can deadlock a child on a lock held
    # by another thread, so the zero-copy payload path is only taken from a
    # single-threaded process; otherwise fall back to the platform default
    # context with pickled chunks.
    can_fork = (
        "fork" in multiprocessing.get_all_start_methods()
        and threading.active_count() == 1
    )
    context = multiprocessing.get_context("fork") if can_fork else None
    with ProcessPoolExecutor(max_workers=worker_count, mp_context=context) as pool:
        if can_fork:
            token = uuid.uuid4().hex
            _FORK_PAYLOADS[token] = (chunk_fn, items)
            try:
                futures = [
                    pool.submit(_fork_chunk_entry, token, start, end)
                    for start, end in bounds
                ]
                return [result for future in futures for result in future.result()]
            finally:
                _FORK_PAYLOADS.pop(token, None)
        else:  # non-fork platforms, or a multi-threaded parent process
            futures = [
                pool.submit(chunk_fn, list(items[start:end])) for start, end in bounds
            ]
            return [result for future in futures for result in future.result()]


def solve_many(
    problems: Iterable[Union[TreeNetwork, ReplicaPlacementProblem]],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    workers: Optional[int] = None,
    on_error: str = "none",
    engine: Optional[str] = None,
) -> List[Optional[Solution]]:
    """Solve a batch of instances, optionally over a process pool.

    Results are **order-preserving**: ``result[i]`` always corresponds to
    ``problems[i]`` and is identical to ``solve(problems[i], ...)`` whatever
    the worker count (the solvers are deterministic).

    Parameters
    ----------
    problems:
        Trees or fully-specified problems; coerced like :func:`solve`.
    policy, algorithm, constraints, kind:
        Forwarded to :func:`solve` for every instance.
    workers:
        ``None`` or ``<= 1`` solves sequentially in-process.  Larger values
        fork a :class:`~concurrent.futures.ProcessPoolExecutor` and split
        the batch into one contiguous chunk per worker, so each process
        pays the serialisation cost once per chunk rather than per
        instance.
    on_error:
        ``"none"`` (default) maps infeasible instances to ``None`` in the
        result list, mirroring the success-rate accounting of the paper's
        campaigns; ``"raise"`` re-raises the first
        :class:`~repro.core.exceptions.InfeasibleError` in input order.
        Any other exception always propagates.
    engine:
        Optional request-state engine override (``"fast"`` or ``"dict"``)
        applied inside the workers; defaults to the process-wide engine.

    Returns
    -------
    list of Solution or None
        One entry per instance, ``None`` where no valid solution exists and
        ``on_error="none"``.
    """
    if on_error not in ("none", "raise"):
        raise ValueError(f"on_error must be 'none' or 'raise', got {on_error!r}")
    batch = list(problems)
    if not batch:
        return []

    if workers is None or workers <= 1:
        pairs = _solve_chunk(batch, policy, algorithm, constraints, kind, on_error, engine)
    else:
        pairs = chunked_pool_map(
            partial(
                _solve_chunk,
                policy=policy,
                algorithm=algorithm,
                constraints=constraints,
                kind=kind,
                on_error=on_error,
                engine=engine,
            ),
            batch,
            workers,
        )

    solutions: List[Optional[Solution]] = []
    for solution, error in pairs:
        if error is not None:
            raise error
        solutions.append(solution)
    return solutions


#: solve_sequence mode -> IncrementalResolver mode.
_SEQUENCE_MODES = {"incremental": "exact", "patch": "patch", "scratch": "scratch"}


@dataclass
class SequenceResult:
    """Outcome of :func:`solve_sequence` over one epoch sequence.

    ``solutions[t]`` is the epoch-``t`` solution (``None`` when infeasible
    and ``on_error="none"``); ``stats[t]`` records the strategy used and the
    migration cost relative to epoch ``t - 1`` (epoch 0 migrates from an
    empty placement: its stats are the cold-start deployment).
    """

    mode: str
    policy: Policy
    solutions: List[Optional[Solution]]
    stats: List["ResolveStats"]

    # ------------------------------------------------------------------ #
    @property
    def costs(self) -> List[Optional[float]]:
        """Per-epoch storage costs (``None`` for infeasible epochs)."""
        return [entry.cost for entry in self.stats]

    @property
    def solved_epochs(self) -> int:
        """Number of epochs with a valid solution."""
        return sum(solution is not None for solution in self.solutions)

    def strategy_counts(self) -> Dict[str, int]:
        """How many epochs were reused / patched / solved."""
        counts: Dict[str, int] = {}
        for entry in self.stats:
            counts[entry.strategy] = counts.get(entry.strategy, 0) + 1
        return counts

    def total_migrations(self) -> Dict[str, float]:
        """Aggregate migration cost over the sequence, excluding epoch 0.

        Epoch 0 is the cold-start deployment, not a migration; including it
        would make every trajectory look churn-heavy.
        """
        tail = self.stats[1:]
        return {
            "replicas_added": sum(entry.replicas_added for entry in tail),
            "replicas_dropped": sum(entry.replicas_dropped for entry in tail),
            "requests_reassigned": sum(entry.requests_reassigned for entry in tail),
        }

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        counts = self.strategy_counts()
        strategies = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        migrations = self.total_migrations()
        return (
            f"{len(self.solutions)} epochs ({self.solved_epochs} solved: {strategies}), "
            f"+{migrations['replicas_added']}/-{migrations['replicas_dropped']} replicas, "
            f"{migrations['requests_reassigned']:g} requests re-routed"
        )


def solve_sequence(
    epochs: Iterable[Union[TreeNetwork, ReplicaPlacementProblem]],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    mode: str = "incremental",
    on_error: str = "none",
    engine: Optional[str] = None,
) -> SequenceResult:
    """Solve a dynamic-workload epoch sequence with warm starts.

    Parameters
    ----------
    epochs:
        Trees or problems, one per epoch, e.g. a trajectory built by
        :mod:`repro.workloads.dynamic`.  Epochs forked with
        :meth:`TreeNetwork.with_requests` (as the trajectory generators do)
        get the cheapest incremental treatment.
    policy, algorithm, constraints, kind:
        Forwarded to :func:`solve` whenever a full solve runs.
    mode:
        ``"incremental"`` (default) -- reuse unchanged epochs, re-solve the
        rest; per-epoch results are cost-identical to ``"scratch"``.
        ``"patch"`` -- additionally keep the placement frozen across
        rate-only epochs and re-route just the changed clients (minimal
        migrations, possibly higher cost, falls back to a full re-solve
        when the frozen placement cannot absorb the new rates).
        ``"scratch"`` -- plain per-epoch solving (the baseline).
    on_error:
        ``"none"`` records infeasible epochs as ``None``; ``"raise"``
        re-raises the first :class:`~repro.core.exceptions.InfeasibleError`
        in epoch order.
    engine:
        Optional request-state engine override (``"fast"`` or ``"dict"``).

    Returns
    -------
    SequenceResult
        Per-epoch solutions plus strategy and migration statistics.
    """
    import contextlib

    from repro.algorithms.common import use_engine
    from repro.algorithms.incremental import IncrementalResolver

    if mode not in _SEQUENCE_MODES:
        raise ValueError(
            f"unknown mode {mode!r}; expected one of {sorted(_SEQUENCE_MODES)}"
        )
    if on_error not in ("none", "raise"):
        raise ValueError(f"on_error must be 'none' or 'raise', got {on_error!r}")

    resolver = IncrementalResolver(
        policy=policy, algorithm=algorithm, mode=_SEQUENCE_MODES[mode]
    )
    solutions: List[Optional[Solution]] = []
    stats: List[ResolveStats] = []
    with use_engine(engine) if engine else contextlib.nullcontext():
        for epoch in epochs:
            problem = as_problem(epoch, constraints=constraints, kind=kind)
            solution, entry = resolver.resolve(problem)
            if solution is None and on_error == "raise":
                raise InfeasibleError(
                    f"epoch {entry.epoch} has no valid solution under the "
                    f"{resolver.policy.value} policy",
                    policy=resolver.policy,
                )
            solutions.append(solution)
            stats.append(entry)
    return SequenceResult(
        mode=mode, policy=resolver.policy, solutions=solutions, stats=stats
    )


@dataclass
class BoundSequenceResult:
    """Outcome of :func:`bound_sequence` over one epoch sequence.

    ``values[t]`` is the epoch-``t`` lower bound (``math.inf`` when even the
    Multiple formulation is infeasible); ``stats[t]`` records how it was
    obtained (``reused`` / ``patched`` / ``built``) and its runtime.
    """

    method: str
    policy: Policy
    results: List["LowerBoundResult"]
    stats: List["BoundStats"]

    # ------------------------------------------------------------------ #
    @property
    def values(self) -> List[float]:
        """Per-epoch lower bounds (``math.inf`` on infeasible epochs)."""
        return [entry.value for entry in self.results]

    def strategy_counts(self) -> Dict[str, int]:
        """How many epochs were reused / patched / built."""
        counts: Dict[str, int] = {}
        for entry in self.stats:
            counts[entry.strategy] = counts.get(entry.strategy, 0) + 1
        return counts

    def gaps(self, costs: Sequence[Optional[float]]) -> List[Optional[float]]:
        """Per-epoch relative cost-vs-bound gaps ``cost / bound``.

        ``costs`` is typically :attr:`SequenceResult.costs` from
        :func:`solve_sequence` over the same epochs.  Epochs without a cost,
        without a finite positive bound, or with mismatched feasibility map
        to ``None``.
        """
        if len(costs) != len(self.results):
            raise ValueError(
                f"{len(costs)} costs for {len(self.results)} bounded epochs"
            )
        gaps: List[Optional[float]] = []
        for cost, entry in zip(costs, self.results):
            if cost is None or not entry.feasible or entry.value <= 0:
                gaps.append(None)
            else:
                gaps.append(cost / entry.value)
        return gaps

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        counts = self.strategy_counts()
        strategies = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        finite = sum(1 for entry in self.results if entry.feasible)
        return (
            f"{len(self.results)} epochs bounded ({strategies}), "
            f"{finite} feasible, method={self.method}"
        )


def bound_sequence(
    epochs: Iterable[Union[TreeNetwork, ReplicaPlacementProblem]],
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    method: str = "mixed",
    mode: str = "incremental",
    time_limit: Optional[float] = None,
) -> BoundSequenceResult:
    """Per-epoch LP lower bounds over a dynamic-workload epoch sequence.

    The companion of :func:`solve_sequence`: where that function tracks what
    the heuristics *achieve* across epochs, this one tracks what the LP says
    is *achievable*, making per-epoch cost-vs-bound gaps a first-class
    series (see :meth:`BoundSequenceResult.gaps`).

    Parameters
    ----------
    epochs:
        Trees or problems, one per epoch, as accepted by
        :func:`solve_sequence`.
    policy:
        Policy whose formulation is relaxed; the default Multiple is a valid
        lower bound for every policy (the paper's choice).
    method:
        ``"mixed"`` (default) -- the paper's refined bound: integer
        placement, rational assignment.  ``"rational"`` -- the fully
        rational relaxation (cheaper, looser).
    mode:
        ``"incremental"`` (default) -- reuse the bound of unchanged epochs,
        re-target the cached program via
        :meth:`~repro.lp.formulation.LinearProgramData.with_requests` for
        rate-only epochs, rebuild otherwise.  Bounds are identical to
        ``"scratch"`` (per-epoch rebuilds) -- cross-validated by the test
        suite -- while skipping most of the per-epoch assembly work.
    time_limit:
        Optional per-epoch wall-clock limit forwarded to the backend.
    """
    from repro.algorithms.incremental import IncrementalBounder

    bounder = IncrementalBounder(
        policy=policy, method=method, mode=mode, time_limit=time_limit
    )
    results: List["LowerBoundResult"] = []
    stats: List["BoundStats"] = []
    for epoch in epochs:
        problem = as_problem(epoch, constraints=constraints, kind=kind)
        result, entry = bounder.bound(problem)
        results.append(result)
        stats.append(entry)
    return BoundSequenceResult(
        method=method, policy=bounder.policy, results=results, stats=stats
    )


def lower_bound(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
    method: str = "mixed",
) -> float:
    """LP-based lower bound on the optimal replica cost.

    ``method`` selects the refined bound of the paper (``"mixed"``: integer
    placement variables, rational assignments), the fully rational
    relaxation (``"rational"``) or the purely combinatorial bound
    (``"trivial"``, no LP solve at all).
    """
    problem = as_problem(instance, constraints=constraints, kind=kind)
    if method == "trivial":
        from repro.core.costs import trivial_lower_bound

        return trivial_lower_bound(problem)
    from repro.lp.bounds import lp_lower_bound, rational_relaxation_bound

    if method == "mixed":
        return lp_lower_bound(problem).value
    if method == "rational":
        return rational_relaxation_bound(problem).value
    raise ValueError(f"unknown lower-bound method {method!r}")


def compare_policies(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    policies: Iterable[Union[Policy, str]] = Policy.ordered(),
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
) -> Dict[Policy, Optional[Solution]]:
    """Solve the same instance under several policies.

    Returns a mapping from policy to the best solution found (or ``None``
    when the policy admits no solution / every algorithm failed), mirroring
    the paper's observation that Multiple solves strictly more instances
    than Upwards, which solves strictly more than Closest.
    """
    problem = as_problem(instance, constraints=constraints, kind=kind)
    results: Dict[Policy, Optional[Solution]] = {}
    for policy in policies:
        policy = Policy.parse(policy)
        try:
            results[policy] = solve(problem, policy=policy)
        except InfeasibleError:
            results[policy] = None
    return results
