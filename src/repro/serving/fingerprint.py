"""Stable content fingerprints of placement problems.

A serving pool (:mod:`repro.serving.pool`) keys resident
:class:`~repro.session.PlacementSession`\\ s by *what problem they answer*:
two requests carrying equivalent problems -- same topology, request rates,
capacities, storage costs, QoS bounds, link attributes, constraint set and
cost mode -- must land on the same warm session, however the problem object
was built.  :func:`problem_fingerprint` provides that key: a SHA-256 hex
digest of a canonical byte encoding of the problem content.

Canonical form
--------------

Identifiers are encoded through ``repr`` and every element population
(nodes, clients, links) is hashed in sorted-``repr`` order, so the digest
does not depend on construction order: a tree rebuilt from
:func:`~repro.core.serialization.tree_to_dict` output, an epoch fork made
with :meth:`~repro.core.tree.TreeNetwork.with_requests`, and the original
tree all hash identically when their content matches (pinned by the serving
test suite).  Floats are hashed through their IEEE-754 bytes with ``-0.0``
normalised to ``+0.0``, matching the ``==`` semantics the epoch differ
uses.

Fast path
---------

The digest splits into a *structural* part (everything except request
rates) and the per-epoch rate vector.  When the tree already carries a
:class:`~repro.core.index.TreeIndex`, the structural part is hashed once
and memoised in the index's structural cache -- which epoch forks made with
``with_requests`` share -- so fingerprinting epoch ``t+1`` of a resident
tenant costs one pass over the client rates instead of a full re-hash.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Optional, Tuple, Union

from repro.core.constraints import ConstraintSet
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.tree import NodeId, TreeNetwork

__all__ = ["problem_fingerprint", "tree_fingerprint"]

#: Bump when the canonical encoding changes: digests are persisted in
#: snapshot files and must never silently collide across encodings.
_VERSION = b"repro-fingerprint-1\x00"

_PACK_DOUBLE = struct.Struct("<d").pack


def _float_bytes(value: float) -> bytes:
    """IEEE-754 bytes of ``value`` with ``-0.0`` folded onto ``+0.0``.

    The fold keeps the fingerprint aligned with ``==`` comparisons (the
    epoch differ treats ``-0.0`` and ``0.0`` as the same rate).
    """
    return _PACK_DOUBLE(float(value) + 0.0)


def _constraints_token(constraints: ConstraintSet) -> bytes:
    """Canonical byte token of a constraint set.

    Plain :class:`ConstraintSet` instances reduce to their two fields; a
    subclass carries code, so its fully-qualified type name joins the token
    -- equivalent-looking custom constraints from different classes must
    not collide onto one resident session.
    """
    if type(constraints) is ConstraintSet:
        return (
            f"cs:{constraints.qos_mode.value}:"
            f"{int(constraints.enforce_bandwidth)}"
        ).encode()
    return (
        f"custom:{type(constraints).__module__}."
        f"{type(constraints).__qualname__}:{constraints!r}"
    ).encode()


def _sorted_clients(tree: TreeNetwork) -> Tuple[NodeId, ...]:
    return tuple(sorted(tree.client_ids, key=repr))


def _structural_hasher(
    tree: TreeNetwork, constraints: ConstraintSet, kind: ProblemKind
) -> "hashlib._Hash":
    """Hash everything except the per-epoch request rates."""
    digest = hashlib.sha256(_VERSION)
    update = digest.update
    update(_constraints_token(constraints))
    update(b"\x00")
    update(kind.value.encode())
    update(b"\x00")
    for node_id in sorted(tree.node_ids, key=repr):
        node = tree.node(node_id)
        update(f"n:{node_id!r}".encode())
        update(_float_bytes(node.capacity))
        update(_float_bytes(node.storage_cost))
    for client_id in _sorted_clients(tree):
        client = tree.client(client_id)
        update(f"c:{client_id!r}".encode())
        update(_float_bytes(client.qos))
    links: List[Tuple[str, str, float, float, object]] = [
        (
            repr(link.child),
            repr(link.parent),
            link.comm_time,
            link.bandwidth,
            link.metrics,
        )
        for link in tree.links()
    ]
    links.sort(key=lambda entry: entry[:4])
    for child_repr, parent_repr, comm_time, bandwidth, metrics in links:
        update(f"l:{child_repr}>{parent_repr}".encode())
        update(_float_bytes(comm_time))
        update(_float_bytes(bandwidth))
        if metrics is not None:
            # Only annotated links contribute, so pre-metric trees keep
            # their historical digests.
            update(b"m")
            update(_float_bytes(metrics.latency))
            update(_float_bytes(metrics.jitter))
            update(_float_bytes(metrics.loss))
            update(_float_bytes(metrics.bandwidth))
    return digest


def problem_fingerprint(problem: ReplicaPlacementProblem) -> str:
    """SHA-256 content fingerprint of a fully-specified problem.

    Equivalent problems -- equal trees (whatever their construction
    history), equal constraint sets and equal cost modes -- map to the same
    digest; any content difference (a single request rate, a QoS bound, a
    link bandwidth, the cost mode) changes it.
    """
    tree = problem.tree
    index = tree._index_cache
    if index is not None:
        # The structural cache is shared by every rate-only epoch fork of
        # this tree (TreeIndex.patched), so across a tenant's epochs the
        # structural part is hashed exactly once.
        cache = index._np_cache
        try:
            key = ("fingerprint_struct", problem.constraints, problem.kind)
            cached = cache.get(key)
        except TypeError:  # unhashable custom constraint subclass
            key = None
            cached = None
        if cached is None:
            cached = (
                _structural_hasher(tree, problem.constraints, problem.kind),
                _sorted_clients(tree),
            )
            if key is not None:
                cache[key] = cached
        base, client_order = cached
        digest = base.copy()
    else:
        digest = _structural_hasher(tree, problem.constraints, problem.kind)
        client_order = _sorted_clients(tree)

    clients = tree._clients
    digest.update(
        b"".join(_float_bytes(clients[cid].requests) for cid in client_order)
    )
    return digest.hexdigest()


def tree_fingerprint(
    instance: Union[TreeNetwork, ReplicaPlacementProblem],
    *,
    constraints: Optional[ConstraintSet] = None,
    kind: Optional[ProblemKind] = None,
) -> str:
    """Fingerprint a bare tree (or problem) with optional coercions.

    Convenience wrapper matching the coercion convention of the public API:
    a tree is wrapped into a Replica Cost problem with no optional
    constraints unless overridden, then fingerprinted.
    """
    from repro.session import as_problem

    return problem_fingerprint(
        as_problem(instance, constraints=constraints, kind=kind)
    )
