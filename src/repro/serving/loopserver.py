"""Single-threaded ``selectors`` event loop over the serving protocol.

The threaded transports in :mod:`repro.serving.server` dedicate a worker
to each connection, which couples the server's health to its *slowest*
client: a reader that stops draining its socket parks a whole thread (and,
on the 1-CPU hosts the serving benchmarks target, thread switches are pure
overhead anyway).  :class:`LoopServer` serves the same newline-delimited
JSON envelopes -- including batch envelopes -- from **one** thread:

* every socket and pipe is non-blocking; readiness comes from
  :class:`selectors.DefaultSelector` (epoll/kqueue where available);
* replies buffer per connection and drain as the peer accepts them, so a
  slow client never blocks the loop -- it only grows its own buffer, and
  a buffer past ``max_buffer`` gets the connection dropped with one
  stderr line (back-pressure by eviction, not by stalling everyone else);
* the loop serves **both** stdio pipes (:meth:`LoopServer.add_stream`,
  what ``repro serve --stdio --loop`` uses) and TCP connections
  (:meth:`LoopServer.listen`, ``repro serve --loop HOST:PORT``) at the
  same time, all against one shared :class:`~repro.serving.server.ReproServer`.

Request handling itself is synchronous -- a solve runs to completion
before the next envelope is parsed -- which is the right trade for this
workload: placement ops are CPU-bound, so interleaving them buys nothing,
while batched envelopes amortise the parse/reply cycle around them.

``epoll`` refuses regular files, so registering a redirected-from-a-file
stdin raises :class:`PermissionError`; callers should fall back to the
blocking :func:`~repro.serving.server.serve_stdio` (the CLI does).
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import sys
from typing import Dict, List, Optional, Tuple

from repro.serving.server import ReproServer

__all__ = ["LoopServer", "MAX_LINE_BYTES"]

#: Longest accepted request line; a line still unterminated past this is a
#: protocol violation (or a hostile stream) and drops the connection.
MAX_LINE_BYTES = 16 * 1024 * 1024

_READ_CHUNK = 65536


class _Connection:
    """One peer: separate read/write fds, an input and an output buffer."""

    __slots__ = ("rfd", "wfd", "sock", "name", "inbuf", "outbuf", "eof")

    def __init__(
        self,
        rfd: int,
        wfd: int,
        *,
        sock: Optional[socket.socket] = None,
        name: str = "stream",
    ) -> None:
        self.rfd = rfd
        self.wfd = wfd
        self.sock = sock  # kept so close() releases the socket object
        self.name = name
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.eof = False


class LoopServer:
    """Serve newline-delimited envelopes from one ``selectors`` loop.

    Parameters
    ----------
    server:
        The :class:`~repro.serving.server.ReproServer` answering envelopes.
    max_buffer:
        Per-connection cap on *buffered, undelivered* reply bytes.  A peer
        that falls further behind than this is dropped (one stderr line)
        instead of growing the buffer without bound.

    Typical use::

        loop = LoopServer(server)
        host, port = loop.listen("127.0.0.1", 8485)
        loop.serve()            # until shutdown() or KeyboardInterrupt

    or, for a supervisor pipe::

        loop.add_stream(sys.stdin.fileno(), sys.stdout.fileno())
        loop.serve()            # until EOF on the pipe
    """

    def __init__(self, server: ReproServer, *, max_buffer: int = 8 * 1024 * 1024) -> None:
        if max_buffer <= 0:
            raise ValueError(f"max_buffer must be positive, got {max_buffer}")
        self.server = server
        self.max_buffer = max_buffer
        self._selector = selectors.DefaultSelector()
        self._registered: Dict[int, int] = {}  # fd -> event mask
        self._connections: List[_Connection] = []
        self._listener: Optional[socket.socket] = None
        self._running = False
        # Self-pipe so shutdown() from another thread wakes the select.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, "wake")

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def listen(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind a TCP listener; returns the bound ``(host, port)``."""
        if self._listener is not None:
            raise RuntimeError("LoopServer already has a listener")
        listener = socket.create_server((host, port))
        listener.setblocking(False)
        self._listener = listener
        self._selector.register(listener, selectors.EVENT_READ, "accept")
        return listener.getsockname()[:2]

    def add_stream(self, rfd: int, wfd: int, *, name: str = "stdio") -> None:
        """Adopt a read/write fd pair (e.g. stdin/stdout) as one peer.

        Raises :class:`PermissionError` when the read end is a regular
        file (epoll only multiplexes pipes, sockets and ttys) -- callers
        fall back to the blocking transport in that case.
        """
        os.set_blocking(rfd, False)
        os.set_blocking(wfd, False)
        conn = _Connection(rfd, wfd, name=name)
        self._connections.append(conn)
        try:
            self._update_interest(conn)
        except PermissionError:
            self._connections.remove(conn)
            raise

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def serve(self) -> int:
        """Run until :meth:`shutdown`, ``KeyboardInterrupt`` or -- with no
        listener -- until the last adopted stream hits EOF.  Snapshots the
        pool on the way out; returns 0."""
        self._running = True
        try:
            while self._running and (self._listener or self._connections):
                for key, _mask in self._selector.select():
                    self._dispatch(key)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            self._running = False
            self._close_all()
            self.server.snapshot_all()
        return 0

    def shutdown(self) -> None:
        """Stop :meth:`serve` from any thread (idempotent)."""
        self._running = False
        try:
            self._wake_send.send(b"x")
        except OSError:  # pragma: no cover - already torn down
            pass

    def _dispatch(self, key: selectors.SelectorKey) -> None:
        if key.data == "wake":
            try:
                self._wake_recv.recv(64)
            except BlockingIOError:  # pragma: no cover - spurious wake
                pass
            return
        if key.data == "accept":
            self._accept()
            return
        conn = key.data
        if conn not in self._connections:
            return  # closed earlier in this same select batch
        if key.fd == conn.rfd and not conn.eof:
            self._read(conn)
        if conn in self._connections and conn.outbuf and key.fd == conn.wfd:
            self._write(conn)

    def _accept(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, address = self._listener.accept()
            except (BlockingIOError, ConnectionAbortedError):
                return
            except OSError:  # pragma: no cover - listener torn down
                return
            sock.setblocking(False)
            # Replies are whole JSON lines (a batch_result spans many TCP
            # segments); Nagle would hold each line's tail segment for the
            # peer's delayed ACK, adding ~40ms to every large reply.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            fd = sock.fileno()
            conn = _Connection(fd, fd, sock=sock, name=f"{address[0]}:{address[1]}")
            self._connections.append(conn)
            self._update_interest(conn)

    # ------------------------------------------------------------------ #
    # per-connection I/O
    # ------------------------------------------------------------------ #
    def _read(self, conn: _Connection) -> None:
        try:
            chunk = os.read(conn.rfd, _READ_CHUNK)
        except BlockingIOError:
            return
        except (ConnectionResetError, BrokenPipeError, OSError):
            self._drop(conn, "connection lost")
            return
        if not chunk:
            conn.eof = True
            if not conn.outbuf:
                self._close(conn)
            else:
                self._update_interest(conn)  # flush what's queued, then close
            return
        conn.inbuf += chunk
        self._consume_lines(conn)
        if conn in self._connections and conn.outbuf:
            # Try to ship replies immediately -- the peer is usually
            # waiting -- falling back to write-readiness when the fd is
            # full (_write arms EVENT_WRITE in that case).
            self._write(conn)

    def _consume_lines(self, conn: _Connection) -> None:
        while True:
            newline = conn.inbuf.find(b"\n")
            if newline < 0:
                if len(conn.inbuf) > MAX_LINE_BYTES:
                    self._drop(
                        conn,
                        f"request line exceeds {MAX_LINE_BYTES} bytes",
                    )
                return
            line = bytes(conn.inbuf[:newline])
            del conn.inbuf[: newline + 1]
            if not line.strip():
                continue
            try:
                text = line.decode("utf-8")
            except UnicodeDecodeError as error:
                reply = json.dumps(
                    {
                        "type": "error",
                        "error": {
                            "code": "bad_request",
                            "message": f"request line is not UTF-8: {error}",
                        },
                    },
                    sort_keys=True,
                )
            else:
                reply = self.server.handle_line(text)
            conn.outbuf += reply.encode("utf-8") + b"\n"
            if len(conn.outbuf) > self.max_buffer:
                self._drop(
                    conn,
                    f"slow client: {len(conn.outbuf)} undelivered bytes "
                    f"exceed the {self.max_buffer}-byte buffer cap",
                )
                return
        # unreachable

    def _write(self, conn: _Connection) -> None:
        try:
            sent = os.write(conn.wfd, conn.outbuf)
        except BlockingIOError:
            self._update_interest(conn)  # wait for write readiness
            return
        except (BrokenPipeError, ConnectionResetError, OSError):
            self._drop(conn, "client disconnected mid-reply")
            return
        del conn.outbuf[:sent]
        if not conn.outbuf and conn.eof:
            self._close(conn)
        else:
            self._update_interest(conn)

    # ------------------------------------------------------------------ #
    # selector bookkeeping
    # ------------------------------------------------------------------ #
    def _update_interest(self, conn: _Connection) -> None:
        """(Re)register ``conn``'s fds for exactly the events it needs."""
        read_mask = 0 if conn.eof else selectors.EVENT_READ
        write_mask = selectors.EVENT_WRITE if conn.outbuf else 0
        if conn.rfd == conn.wfd:
            self._set_mask(conn.rfd, read_mask | write_mask, conn)
        else:
            self._set_mask(conn.rfd, read_mask, conn)
            self._set_mask(conn.wfd, write_mask, conn)

    def _set_mask(self, fd: int, mask: int, conn: _Connection) -> None:
        current = self._registered.get(fd)
        if mask == 0:
            if current is not None:
                self._selector.unregister(fd)
                del self._registered[fd]
            return
        if current is None:
            self._selector.register(fd, mask, conn)
        elif current != mask:
            self._selector.modify(fd, mask, conn)
        self._registered[fd] = mask

    def _drop(self, conn: _Connection, reason: str) -> None:
        print(f"loopserver: dropping {conn.name}: {reason}", file=sys.stderr)
        self._close(conn)

    def _close(self, conn: _Connection) -> None:
        for fd in {conn.rfd, conn.wfd}:
            if fd in self._registered:
                try:
                    self._selector.unregister(fd)
                except KeyError:  # pragma: no cover - defensive
                    pass
                del self._registered[fd]
        if conn in self._connections:
            self._connections.remove(conn)
        if conn.sock is not None:
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
        else:
            for fd in {conn.rfd, conn.wfd}:
                try:
                    os.close(fd)
                except OSError:
                    pass

    def _close_all(self) -> None:
        for conn in list(self._connections):
            self._close(conn)
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except KeyError:  # pragma: no cover - defensive
                pass
            self._listener.close()
            self._listener = None
        try:
            self._selector.unregister(self._wake_recv)
        except KeyError:  # pragma: no cover - defensive
            pass
        self._wake_recv.close()
        self._wake_send.close()
        self._selector.close()
