"""Multi-tenant serving layer over resident placement sessions.

The ROADMAP's serving milestone: turn the session API into a long-running
service.  Four layers, each usable on its own:

* :mod:`repro.serving.fingerprint` -- stable content hashes of problems,
  so equivalent requests share one resident session;
* :mod:`repro.serving.pool` -- :class:`SessionPool`, a thread-safe,
  fingerprint-keyed LRU of :class:`~repro.session.PlacementSession`\\ s
  with byte budgets, eviction hooks and :class:`PoolStats` aggregation;
* :mod:`repro.serving.protocol` / :mod:`repro.serving.server` -- the JSON
  request envelopes and the dependency-free stdio / HTTP transports behind
  ``repro serve``;
* :mod:`repro.serving.snapshot` -- cross-restart persistence of resident
  sessions (warm boots via ``repro serve --snapshot-dir``);
* :mod:`repro.serving.client` -- :func:`connect`, returning a session-like
  proxy that decodes replies back into the standard result objects.
"""

from repro.serving.client import RemoteSession, ServingClient, ServingError, connect
from repro.serving.fingerprint import problem_fingerprint, tree_fingerprint
from repro.serving.pool import (
    PooledSession,
    PoolStats,
    SessionPool,
    UnknownSessionError,
)
from repro.serving.protocol import OPS, ProtocolError, error_envelope, handle_envelope
from repro.serving.server import ReproServer, make_http_server, serve_http, serve_stdio
from repro.serving.snapshot import restore_pool, save_pool, save_session

__all__ = [
    "problem_fingerprint",
    "tree_fingerprint",
    "SessionPool",
    "PooledSession",
    "PoolStats",
    "UnknownSessionError",
    "OPS",
    "ProtocolError",
    "error_envelope",
    "handle_envelope",
    "ReproServer",
    "serve_stdio",
    "serve_http",
    "make_http_server",
    "save_session",
    "save_pool",
    "restore_pool",
    "connect",
    "ServingClient",
    "RemoteSession",
    "ServingError",
]
