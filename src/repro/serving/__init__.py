"""Multi-tenant serving layer over resident placement sessions.

The ROADMAP's serving milestone: turn the session API into a long-running
service.  The layers, each usable on its own:

* :mod:`repro.serving.fingerprint` -- stable content hashes of problems,
  so equivalent requests share one resident session;
* :mod:`repro.serving.pool` -- :class:`SessionPool`, a thread-safe,
  fingerprint-keyed LRU of :class:`~repro.session.PlacementSession`\\ s
  with byte budgets, eviction hooks, per-op request metrics and
  :class:`PoolStats` aggregation;
* :mod:`repro.serving.protocol` / :mod:`repro.serving.server` -- the JSON
  request envelopes (including batched envelopes that group same-session
  items under one checkout) and the dependency-free stdio / HTTP
  transports behind ``repro serve``;
* :mod:`repro.serving.loopserver` -- :class:`LoopServer`, the
  single-threaded ``selectors`` event loop serving the same protocol over
  many sockets/pipes without ever blocking on a slow client
  (``repro serve --loop`` / ``--tcp``);
* :mod:`repro.serving.metrics` -- :func:`render_prometheus`, the
  ``GET /metrics`` text exposition of :class:`PoolStats`;
* :mod:`repro.serving.snapshot` -- cross-restart persistence of resident
  sessions (warm boots via ``repro serve --snapshot-dir``);
* :mod:`repro.serving.client` -- :func:`connect`, returning a session-like
  proxy that decodes replies back into the standard result objects;
* :mod:`repro.serving.loadgen` -- the open-loop inhomogeneous-Poisson load
  harness behind ``repro loadtest`` and the serving throughput benchmark.
"""

from repro.serving.client import (
    RemoteSession,
    ServingClient,
    ServingError,
    TcpTransport,
    connect,
)
from repro.serving.fingerprint import problem_fingerprint, tree_fingerprint
from repro.serving.loadgen import LoadgenConfig, LoadtestReport, run_loadtest
from repro.serving.loopserver import LoopServer
from repro.serving.metrics import render_prometheus
from repro.serving.pool import (
    PooledSession,
    PoolStats,
    SessionPool,
    UnknownSessionError,
)
from repro.serving.protocol import (
    MAX_BATCH_ITEMS,
    OPS,
    ProtocolError,
    error_envelope,
    handle_envelope,
)
from repro.serving.server import ReproServer, make_http_server, serve_http, serve_stdio
from repro.serving.snapshot import restore_pool, save_pool, save_session

__all__ = [
    "problem_fingerprint",
    "tree_fingerprint",
    "SessionPool",
    "PooledSession",
    "PoolStats",
    "UnknownSessionError",
    "OPS",
    "MAX_BATCH_ITEMS",
    "ProtocolError",
    "error_envelope",
    "handle_envelope",
    "ReproServer",
    "serve_stdio",
    "serve_http",
    "make_http_server",
    "LoopServer",
    "render_prometheus",
    "save_session",
    "save_pool",
    "restore_pool",
    "connect",
    "ServingClient",
    "RemoteSession",
    "ServingError",
    "TcpTransport",
    "LoadgenConfig",
    "LoadtestReport",
    "run_loadtest",
]
