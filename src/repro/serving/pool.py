"""Fingerprint-keyed LRU pool of resident :class:`PlacementSession`\\ s.

A serving process answers placement queries for *many* tenants, each with
their own distribution tree, but memory is bounded: every resident session
carries a tree, a :class:`~repro.core.index.TreeIndex`, assembled LP
programs and per-epoch result caches.  :class:`SessionPool` keeps the hot
tenants warm and evicts the cold ones:

* sessions are keyed by :func:`~repro.serving.fingerprint.problem_fingerprint`,
  so equivalent problems -- however the request spelled them -- share one
  resident session;
* the pool holds at most ``capacity`` sessions (and, optionally, at most
  ``max_bytes`` estimated bytes, via
  :meth:`~repro.session.PlacementSession.memory_estimate`), evicting in
  least-recently-used order;
* :meth:`SessionPool.checkout` hands out a session under a **per-session**
  lock: concurrent requests against different tenants proceed in parallel,
  only same-tenant requests serialise (the session caches are not
  thread-safe);
* eviction hooks fire for every evicted session (the server uses them to
  flush a final snapshot to disk);
* :meth:`SessionPool.stats` aggregates the per-session
  :class:`~repro.session.SessionStats` into a :class:`PoolStats` -- a
  registered result type, so the serving ``stats`` op round-trips through
  :func:`repro.core.results.result_from_json` like every other reply.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.exceptions import ReproError
from repro.core.problem import ReplicaPlacementProblem
from repro.core.results import ResultBase, register_result
from repro.serving.fingerprint import problem_fingerprint
from repro.session import PlacementSession

__all__ = ["PooledSession", "PoolStats", "SessionPool", "UnknownSessionError"]


class UnknownSessionError(ReproError, KeyError):
    """A fingerprint-only request named a session that is not resident.

    Also a :class:`KeyError`: the pool is a mapping of fingerprints and
    callers may treat a miss as an ordinary missing key (the serving client
    reacts by re-sending the full problem).
    """

    def __init__(self, fingerprint: str) -> None:
        super().__init__(
            f"no resident session for fingerprint {fingerprint!r}; "
            "re-send the full problem to (re)create it"
        )
        self.fingerprint = fingerprint


class PooledSession:
    """A resident session plus its pool bookkeeping (key, lock, size)."""

    __slots__ = ("fingerprint", "session", "lock", "bytes_estimate")

    def __init__(self, fingerprint: str, session: PlacementSession) -> None:
        self.fingerprint = fingerprint
        self.session = session
        #: serialises same-tenant requests; different tenants never share it.
        self.lock = threading.Lock()
        self.bytes_estimate = session.memory_estimate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PooledSession({self.fingerprint[:12]}…, {self.session!r})"


@register_result
@dataclass
class PoolStats(ResultBase):
    """Aggregate view of a pool: occupancy, traffic and cache reuse.

    The solver counters (``solves``/``bounds``/``*_cache_hits``/``epochs``)
    aggregate over the *lifetime* of the pool: evicted sessions fold their
    :class:`~repro.session.SessionStats` into running totals before they
    leave, so the numbers never shrink when memory pressure rotates
    tenants.  ``sessions`` describes the currently-resident sessions in
    LRU-to-MRU order.
    """

    payload_type = "pool_stats"

    capacity: int
    resident: int
    hits: int
    misses: int
    evictions: int
    restored: int
    bytes_estimate: int
    max_bytes: Optional[int]
    epochs: int
    solves: int
    solve_cache_hits: int
    bounds: int
    bound_cache_hits: int
    sessions: List[Dict[str, Any]] = field(default_factory=list)
    #: per-op request counters fed by the protocol layer: ``op ->
    #: {count, errors, seconds_total, seconds_max}``.  ``GET /metrics``
    #: renders exactly these numbers (see :mod:`repro.serving.metrics`),
    #: so the Prometheus exposition and the ``stats`` op can never drift.
    ops: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary used by the CLI and the serving examples."""
        budget = (
            f"~{self.bytes_estimate} bytes"
            if self.max_bytes is None
            else f"~{self.bytes_estimate}/{self.max_bytes} bytes"
        )
        line = (
            f"{self.resident}/{self.capacity} resident sessions ({budget}), "
            f"{self.hits} hits / {self.misses} misses, "
            f"{self.evictions} evicted, {self.restored} restored | "
            f"{self.solves} solves ({self.solve_cache_hits} cached), "
            f"{self.bounds} bounds ({self.bound_cache_hits} cached), "
            f"{self.epochs} epoch steps"
        )
        if self.ops:
            served = sum(int(m.get("count", 0)) for m in self.ops.values())
            errors = sum(int(m.get("errors", 0)) for m in self.ops.values())
            line += f" | {served} envelopes served ({errors} errors)"
        return line

    def to_dict(self) -> Dict[str, Any]:
        return self._tagged(
            {
                "capacity": self.capacity,
                "resident": self.resident,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "restored": self.restored,
                "bytes_estimate": self.bytes_estimate,
                "max_bytes": self.max_bytes,
                "epochs": self.epochs,
                "solves": self.solves,
                "solve_cache_hits": self.solve_cache_hits,
                "bounds": self.bounds,
                "bound_cache_hits": self.bound_cache_hits,
                "sessions": list(self.sessions),
                "ops": {op: dict(metric) for op, metric in self.ops.items()},
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PoolStats":
        max_bytes = payload.get("max_bytes")
        return cls(
            capacity=int(payload["capacity"]),
            resident=int(payload["resident"]),
            hits=int(payload["hits"]),
            misses=int(payload["misses"]),
            evictions=int(payload["evictions"]),
            restored=int(payload.get("restored", 0)),
            bytes_estimate=int(payload.get("bytes_estimate", 0)),
            max_bytes=None if max_bytes is None else int(max_bytes),
            epochs=int(payload.get("epochs", 0)),
            solves=int(payload["solves"]),
            solve_cache_hits=int(payload["solve_cache_hits"]),
            bounds=int(payload["bounds"]),
            bound_cache_hits=int(payload["bound_cache_hits"]),
            sessions=[dict(entry) for entry in payload.get("sessions", [])],
            ops={
                str(op): dict(metric)
                for op, metric in (payload.get("ops") or {}).items()
            },
        )


class SessionPool:
    """Bounded, thread-safe, fingerprint-keyed cache of placement sessions.

    Parameters
    ----------
    capacity:
        Maximum number of resident sessions (LRU eviction beyond it).
    max_bytes:
        Optional budget over the summed
        :meth:`~repro.session.PlacementSession.memory_estimate` of the
        resident sessions; the LRU tail is evicted until the estimate fits
        (the most recent session always stays, whatever its size).
    mode, engine, shards:
        Session construction defaults forwarded to every
        :class:`~repro.session.PlacementSession` the pool creates.  With
        ``shards`` set, tenant sessions solve shard-by-shard and their
        :meth:`~repro.session.PlacementSession.memory_estimate` (and so the
        ``max_bytes`` budget) reflects only the shard indexes actually
        built, never the whole-tree index.
    on_evict:
        Iterable of ``hook(entry)`` callables fired (outside the pool lock)
        for every evicted :class:`PooledSession`.
    """

    def __init__(
        self,
        capacity: int = 8,
        *,
        max_bytes: Optional[int] = None,
        mode: str = "incremental",
        engine: Optional[str] = None,
        shards: Optional[Any] = None,
        on_evict: Tuple[Callable[[PooledSession], None], ...] = (),
    ) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.mode = mode
        self.engine = engine
        self.shards = shards
        self._entries: "OrderedDict[str, PooledSession]" = OrderedDict()
        self._lock = threading.RLock()
        self._hooks: List[Callable[[PooledSession], None]] = list(on_evict)
        # lifetime counters (see PoolStats)
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._restored = 0
        self._retired_epochs = 0
        self._retired_solves = 0
        self._retired_solve_hits = 0
        self._retired_bounds = 0
        self._retired_bound_hits = 0
        # per-op request counters (protocol layer feeds these via observe_op)
        self._op_metrics: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------ #
    # mapping-ish surface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def resident_fingerprints(self) -> Tuple[str, ...]:
        """Resident fingerprints in LRU-to-MRU order (tests assert on this)."""
        with self._lock:
            return tuple(self._entries)

    def add_evict_hook(self, hook: Callable[[PooledSession], None]) -> None:
        """Register an additional eviction hook."""
        self._hooks.append(hook)

    # ------------------------------------------------------------------ #
    # request metrics
    # ------------------------------------------------------------------ #
    def observe_op(self, op: str, seconds: float, *, error: bool = False) -> None:
        """Record one served envelope: latency plus success/error counts.

        The protocol layer calls this for every envelope it answers (and
        for every item inside a batch envelope), labelling it with the op
        name.  The counters surface in :attr:`PoolStats.ops` and therefore
        in both the ``stats`` op and the ``GET /metrics`` exposition.
        """
        with self._lock:
            metric = self._op_metrics.get(op)
            if metric is None:
                metric = self._op_metrics[op] = {
                    "count": 0,
                    "errors": 0,
                    "seconds_total": 0.0,
                    "seconds_max": 0.0,
                }
            metric["count"] += 1
            if error:
                metric["errors"] += 1
            metric["seconds_total"] += seconds
            if seconds > metric["seconds_max"]:
                metric["seconds_max"] = seconds

    # ------------------------------------------------------------------ #
    # checkout
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def checkout(
        self,
        problem: Optional[ReplicaPlacementProblem] = None,
        *,
        fingerprint: Optional[str] = None,
    ) -> Iterator[PooledSession]:
        """Check a session out for exclusive use (context manager).

        Exactly one of ``problem`` (create the session if absent) or
        ``fingerprint`` (resident sessions only;
        :class:`UnknownSessionError` on a miss) must be given.  The
        session's lock is held for the duration of the ``with`` block, so
        holders may freely call session methods; its byte estimate is
        refreshed on release and the pool rebalanced against the byte
        budget.

        Residency is re-checked once the lock is held: a concurrent
        insert may evict the entry in the window between the lookup and
        the lock acquisition, and handing out an already-retired session
        would double-count its stats on re-insertion (and orphan it from
        fingerprint addressing).  Eviction itself skips locked entries, so
        a session can never be evicted *while* checked out.
        """
        entry, evicted = self._acquire(problem, fingerprint)
        self._fire_hooks(evicted)
        entry.lock.acquire()
        while not self._is_resident(entry):
            # Evicted in the lookup-to-lock window: retry.  A problem keyed
            # retry re-creates the session at MRU (never evicted while we
            # race); a fingerprint-keyed retry raises UnknownSessionError,
            # which is exactly what the miss now is.
            entry.lock.release()
            entry, evicted = self._acquire(problem, fingerprint)
            self._fire_hooks(evicted)
            entry.lock.acquire()
        try:
            yield entry
        finally:
            entry.bytes_estimate = entry.session.memory_estimate()
            entry.lock.release()
            self._fire_hooks(self._rebalance())

    def _is_resident(self, entry: PooledSession) -> bool:
        with self._lock:
            return self._entries.get(entry.fingerprint) is entry

    def _acquire(
        self,
        problem: Optional[ReplicaPlacementProblem],
        fingerprint: Optional[str],
    ) -> Tuple[PooledSession, List[PooledSession]]:
        if (problem is None) == (fingerprint is None):
            raise ValueError(
                "checkout() needs exactly one of a problem or a fingerprint"
            )
        # Hash outside the pool lock: the fingerprint is a pure function of
        # the problem, and an O(n) tree hash under the global lock would
        # serialise every tenant's first contact.
        key = None if problem is None else problem_fingerprint(problem)
        with self._lock:
            if fingerprint is not None:
                entry = self._entries.get(fingerprint)
                if entry is None:
                    raise UnknownSessionError(fingerprint)
                self._entries.move_to_end(fingerprint)
                self._hits += 1
                return entry, []
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry, []
            entry = PooledSession(
                key,
                PlacementSession(
                    problem,
                    mode=self.mode,
                    engine=self.engine,
                    shards=self.shards,
                ),
            )
            self._entries[key] = entry
            self._misses += 1
            return entry, self._rebalance_locked()

    # ------------------------------------------------------------------ #
    # insertion paths used by restore / rekey
    # ------------------------------------------------------------------ #
    def adopt(self, entry: PooledSession, *, restored: bool = False) -> None:
        """Insert an externally-built entry (snapshot restore) at MRU."""
        with self._lock:
            self._entries[entry.fingerprint] = entry
            self._entries.move_to_end(entry.fingerprint)
            if restored:
                self._restored += 1
            evicted = self._rebalance_locked()
        self._fire_hooks(evicted)

    def rekey(self, entry: PooledSession) -> str:
        """Re-register ``entry`` under its problem's *current* fingerprint.

        An epoch :meth:`~repro.session.PlacementSession.update` changes the
        session's problem -- and therefore its content fingerprint -- so
        the server re-keys the entry after every update (while holding the
        entry's checkout lock).  If another *idle* resident session already
        answers to the new fingerprint it is displaced (counted as an
        eviction, hooks fired): the freshly updated session is the one its
        tenant keeps talking to.  A busy same-content session (mid-op on
        another thread) is never yanked -- like eviction, displacement
        respects the per-session locks -- so in that rare convergence the
        entry keeps its old fingerprint (still addressable; the reply
        carries it) until a later update re-keys it again.

        Because both eviction and displacement skip locked entries, an
        entry whose checkout lock is held is always still resident here --
        its map slot just moves.
        """
        new_key = problem_fingerprint(entry.session.problem)
        displaced: List[PooledSession] = []
        with self._lock:
            if new_key != entry.fingerprint:
                existing = self._entries.get(new_key)
                if existing is not None and existing is not entry:
                    if not existing.lock.acquire(blocking=False):
                        # Converged onto a session another thread is using:
                        # leave both resident, ours under its old key.
                        self._entries.move_to_end(entry.fingerprint)
                        return entry.fingerprint
                    try:
                        del self._entries[new_key]
                        self._retire_locked(existing)
                        self._evictions += 1
                        displaced.append(existing)
                    finally:
                        existing.lock.release()
                self._entries.pop(entry.fingerprint, None)
                entry.fingerprint = new_key
                self._entries[new_key] = entry
            self._entries.move_to_end(new_key)
        self._fire_hooks(displaced)
        return new_key

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #
    def _over_budget_locked(self) -> bool:
        if len(self._entries) > self.capacity:
            return True
        if self.max_bytes is None or len(self._entries) <= 1:
            return False
        total = sum(entry.bytes_estimate for entry in self._entries.values())
        return total > self.max_bytes

    def _rebalance_locked(self) -> List[PooledSession]:
        """Evict LRU entries until capacity and byte budget hold.

        Entries whose lock is currently held (a request is mid-flight on
        another thread) are skipped rather than yanked from under the
        holder; the overshoot is temporary -- the next release rebalances
        again.  The MRU entry is never evicted.
        """
        evicted: List[PooledSession] = []
        while self._over_budget_locked() and len(self._entries) > 1:
            victim = None
            for key, entry in self._entries.items():
                if key == next(reversed(self._entries)):
                    break  # never evict the MRU entry
                if entry.lock.acquire(blocking=False):
                    entry.lock.release()
                    victim = key
                    break
            if victim is None:
                break  # everything evictable is busy; try again later
            entry = self._entries.pop(victim)
            self._retire_locked(entry)
            self._evictions += 1
            evicted.append(entry)
        return evicted

    def _rebalance(self) -> List[PooledSession]:
        with self._lock:
            return self._rebalance_locked()

    def _retire_locked(self, entry: PooledSession) -> None:
        """Fold a leaving session's counters into the lifetime totals."""
        stats = entry.session.stats
        self._retired_epochs += stats.epochs
        self._retired_solves += stats.solves
        self._retired_solve_hits += stats.solve_cache_hits
        self._retired_bounds += stats.bounds
        self._retired_bound_hits += stats.bound_cache_hits

    def _fire_hooks(self, entries: List[PooledSession]) -> None:
        for entry in entries:
            for hook in self._hooks:
                hook(entry)

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def stats(self) -> PoolStats:
        """Aggregate the pool and per-session counters into a snapshot."""
        with self._lock:
            epochs = self._retired_epochs
            solves = self._retired_solves
            solve_hits = self._retired_solve_hits
            bounds = self._retired_bounds
            bound_hits = self._retired_bound_hits
            sessions: List[Dict[str, Any]] = []
            total_bytes = 0
            for entry in self._entries.values():
                stats = entry.session.stats
                epochs += stats.epochs
                solves += stats.solves
                solve_hits += stats.solve_cache_hits
                bounds += stats.bounds
                bound_hits += stats.bound_cache_hits
                total_bytes += entry.bytes_estimate
                sessions.append(
                    {
                        "fingerprint": entry.fingerprint,
                        "epoch": entry.session.epoch,
                        "size": entry.session.problem.size,
                        "policy": entry.session.policy.value,
                        "mode": entry.session.mode,
                        "solves": stats.solves,
                        "solve_cache_hits": stats.solve_cache_hits,
                        "bounds": stats.bounds,
                        "bound_cache_hits": stats.bound_cache_hits,
                        "bytes_estimate": entry.bytes_estimate,
                    }
                )
            return PoolStats(
                capacity=self.capacity,
                resident=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                restored=self._restored,
                bytes_estimate=total_bytes,
                max_bytes=self.max_bytes,
                epochs=epochs,
                solves=solves,
                solve_cache_hits=solve_hits,
                bounds=bounds,
                bound_cache_hits=bound_hits,
                sessions=sessions,
                ops={
                    op: dict(metric) for op, metric in self._op_metrics.items()
                },
            )

    # ------------------------------------------------------------------ #
    def entries(self) -> List[PooledSession]:
        """The resident entries in LRU-to-MRU order (snapshot helper)."""
        with self._lock:
            return list(self._entries.values())

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SessionPool(resident={len(self._entries)}/{self.capacity}, "
                f"hits={self._hits}, misses={self._misses}, "
                f"evictions={self._evictions})"
            )
