"""Cross-restart persistence of a serving pool's resident sessions.

A restarted server should not greet its tenants with cold caches.  Each
resident session persists to one JSON file named after its content
fingerprint::

    <snapshot-dir>/<fingerprint>.session.json

holding a tagged envelope around
:meth:`~repro.session.PlacementSession.export_state` -- the problem, the
session configuration and every cached per-epoch result, encoded through
the same tagged result payloads :func:`~repro.core.serialization.save_result`
uses.  On boot, ``repro serve --snapshot-dir`` feeds every file through
:meth:`~repro.session.PlacementSession.restore_state` and adopts the warm
sessions into the pool: repeated current-epoch queries answer from cache,
and the next rate-only epoch *patches* the re-assembled LP program instead
of rebuilding it (the serving test suite pins both).

Writes are atomic (temp file + ``os.replace``), so a crash mid-snapshot
leaves the previous snapshot intact.  Corrupt or undecodable files are
skipped with a warning on ``stderr`` -- a damaged snapshot directory must
never stop a server from booting cold.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.exceptions import ReproError, SerializationError
from repro.serving.fingerprint import problem_fingerprint
from repro.serving.pool import PooledSession, SessionPool
from repro.session import PlacementSession

__all__ = [
    "SNAPSHOT_SUFFIX",
    "snapshot_path",
    "save_session",
    "load_session",
    "save_pool",
    "restore_pool",
]

SNAPSHOT_SUFFIX = ".session.json"

#: payload tag of a snapshot file (bump with the envelope layout).
_SNAPSHOT_TYPE = "session_snapshot"


def snapshot_path(directory: Union[str, Path], fingerprint: str) -> Path:
    """The snapshot file a session with ``fingerprint`` persists to."""
    return Path(directory) / f"{fingerprint}{SNAPSHOT_SUFFIX}"


def save_session(
    session: PlacementSession,
    directory: Union[str, Path],
    *,
    fingerprint: Optional[str] = None,
) -> Path:
    """Persist one session; returns the written path.

    ``fingerprint`` defaults to the session problem's content fingerprint
    (the pool key).  The write is atomic.
    """
    if fingerprint is None:
        fingerprint = problem_fingerprint(session.problem)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "type": _SNAPSHOT_TYPE,
        "fingerprint": fingerprint,
        "state": session.export_state(),
    }
    path = snapshot_path(directory, fingerprint)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_session(
    path: Union[str, Path], *, warm_programs: bool = True
) -> Tuple[str, PlacementSession]:
    """Rebuild ``(fingerprint, session)`` from one snapshot file.

    Raises
    ------
    SerializationError
        When the file is not a decodable snapshot; the message names the
        file.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise SerializationError(f"{path}: unreadable snapshot ({error})") from None
    if not isinstance(payload, dict) or payload.get("type") != _SNAPSHOT_TYPE:
        raise SerializationError(
            f"{path}: not a session snapshot (missing "
            f'"type": "{_SNAPSHOT_TYPE}" tag)'
        )
    try:
        session = PlacementSession.restore_state(
            payload["state"], warm_programs=warm_programs
        )
    except (ReproError, KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"{path}: corrupt snapshot state ({error})") from None
    fingerprint = payload.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        fingerprint = problem_fingerprint(session.problem)
    return fingerprint, session


def save_pool(pool: SessionPool, directory: Union[str, Path]) -> List[Path]:
    """Persist every resident session of ``pool``; returns the paths.

    Sessions whose state cannot be serialised (custom constraint
    subclasses) are skipped with a warning -- a single exotic tenant must
    not veto persistence for the rest.
    """
    paths: List[Path] = []
    for entry in pool.entries():
        with entry.lock:
            try:
                paths.append(
                    save_session(
                        entry.session, directory, fingerprint=entry.fingerprint
                    )
                )
            except SerializationError as error:
                print(
                    f"warning: skipping snapshot of session "
                    f"{entry.fingerprint[:12]}…: {error}",
                    file=sys.stderr,
                )
    return paths


def restore_pool(
    pool: SessionPool,
    directory: Union[str, Path],
    *,
    warm_programs: bool = True,
) -> int:
    """Adopt every decodable snapshot under ``directory`` into ``pool``.

    Only the ``pool.capacity`` most recently written files are decoded --
    older tenants would be LRU-evicted the moment they were adopted, so
    paying their JSON decode and eager program re-assembly at boot would be
    pure startup cost.  The survivors restore in modification-time order
    (oldest first), so the pool's LRU order mirrors the snapshot ages.
    Returns the number of sessions restored.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    restored = 0
    # stat() each candidate defensively: a concurrent server retiring a
    # superseded snapshot can unlink a file in the glob-to-stat window, and
    # one vanished file must not abort the whole restore.
    stamped: List[Tuple[float, Path]] = []
    for path in directory.glob(f"*{SNAPSHOT_SUFFIX}"):
        try:
            stamped.append((path.stat().st_mtime, path))
        except FileNotFoundError:
            continue
    paths = [path for _, path in sorted(stamped)][-pool.capacity :]
    for path in paths:
        try:
            fingerprint, session = load_session(path, warm_programs=warm_programs)
        except SerializationError as error:
            print(f"warning: skipping {error}", file=sys.stderr)
            continue
        pool.adopt(PooledSession(fingerprint, session), restored=True)
        restored += 1
    return restored
