"""Cross-restart persistence of a serving pool's resident sessions.

A restarted server should not greet its tenants with cold caches.  Each
resident session persists to one JSON file named after its content
fingerprint::

    <snapshot-dir>/<fingerprint>.session.json

holding a tagged envelope around
:meth:`~repro.session.PlacementSession.export_state` -- the problem, the
session configuration and every cached per-epoch result, encoded through
the same tagged result payloads :func:`~repro.core.serialization.save_result`
uses.  On boot, ``repro serve --snapshot-dir`` feeds every file through
:meth:`~repro.session.PlacementSession.restore_state` and adopts the warm
sessions into the pool: repeated current-epoch queries answer from cache,
and the next rate-only epoch *patches* the re-assembled LP program instead
of rebuilding it (the serving test suite pins both).

Writes are atomic (temp file + ``os.replace``), so a crash mid-snapshot
leaves the previous snapshot intact.  Corrupt or undecodable files are
skipped with a warning on ``stderr`` -- a damaged snapshot directory must
never stop a server from booting cold.

Long-lived directories are **compacted**: a sidecar meta file
(``snapshots.meta.json``) counts server restarts and remembers, per
fingerprint, the last restart at which the tenant was seen (restored at
boot, or written by a snapshot pass).  With ``retain_restarts=N`` (the
``repro serve --snapshot-retain N`` flag), :func:`restore_pool` and
:func:`save_pool` delete snapshot files whose tenants have not been seen
for ``N`` consecutive restarts, so departed tenants stop accumulating
disk forever while any tenant that returns within the window still boots
warm.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.exceptions import ReproError, SerializationError
from repro.serving.fingerprint import problem_fingerprint
from repro.serving.pool import PooledSession, SessionPool
from repro.session import PlacementSession

__all__ = [
    "SNAPSHOT_SUFFIX",
    "SNAPSHOT_META",
    "snapshot_path",
    "save_session",
    "load_session",
    "save_pool",
    "restore_pool",
]

SNAPSHOT_SUFFIX = ".session.json"

#: sidecar file tracking restart counts and per-tenant last-seen restarts.
SNAPSHOT_META = "snapshots.meta.json"

#: payload tag of a snapshot file (bump with the envelope layout).
_SNAPSHOT_TYPE = "session_snapshot"

#: payload tag of the retention meta file.
_META_TYPE = "snapshot_retention"


def _load_meta(directory: Path) -> Dict[str, object]:
    """The retention meta state, or a fresh one when absent/corrupt."""
    path = directory / SNAPSHOT_META
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        payload = None
    if (
        not isinstance(payload, dict)
        or payload.get("type") != _META_TYPE
        or not isinstance(payload.get("last_seen"), dict)
    ):
        return {"restarts": 0, "last_seen": {}}
    return {
        "restarts": int(payload.get("restarts", 0)),
        "last_seen": {
            str(fp): int(seen) for fp, seen in payload["last_seen"].items()
        },
    }


def _store_meta(directory: Path, meta: Dict[str, object]) -> None:
    path = directory / SNAPSHOT_META
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(
            {"type": _META_TYPE, **meta},
            indent=2,
            sort_keys=True,
        )
    )
    os.replace(tmp, path)


def _snapshot_fingerprint(path: Path) -> str:
    return path.name[: -len(SNAPSHOT_SUFFIX)]


def _age_out(
    directory: Path, meta: Dict[str, object], retain_restarts: int
) -> List[Path]:
    """Delete snapshots not seen for ``retain_restarts`` restarts."""
    restarts = int(meta["restarts"])
    last_seen: Dict[str, int] = meta["last_seen"]  # type: ignore[assignment]
    removed: List[Path] = []
    for fingerprint, seen_at in list(last_seen.items()):
        if restarts - seen_at < retain_restarts:
            continue
        path = snapshot_path(directory, fingerprint)
        try:
            path.unlink()
            removed.append(path)
        except FileNotFoundError:
            pass
        del last_seen[fingerprint]
    return removed


def snapshot_path(directory: Union[str, Path], fingerprint: str) -> Path:
    """The snapshot file a session with ``fingerprint`` persists to."""
    return Path(directory) / f"{fingerprint}{SNAPSHOT_SUFFIX}"


def save_session(
    session: PlacementSession,
    directory: Union[str, Path],
    *,
    fingerprint: Optional[str] = None,
) -> Path:
    """Persist one session; returns the written path.

    ``fingerprint`` defaults to the session problem's content fingerprint
    (the pool key).  The write is atomic.
    """
    if fingerprint is None:
        fingerprint = problem_fingerprint(session.problem)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "type": _SNAPSHOT_TYPE,
        "fingerprint": fingerprint,
        "state": session.export_state(),
    }
    path = snapshot_path(directory, fingerprint)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_session(
    path: Union[str, Path], *, warm_programs: bool = True
) -> Tuple[str, PlacementSession]:
    """Rebuild ``(fingerprint, session)`` from one snapshot file.

    Raises
    ------
    SerializationError
        When the file is not a decodable snapshot; the message names the
        file.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise SerializationError(f"{path}: unreadable snapshot ({error})") from None
    if not isinstance(payload, dict) or payload.get("type") != _SNAPSHOT_TYPE:
        raise SerializationError(
            f"{path}: not a session snapshot (missing "
            f'"type": "{_SNAPSHOT_TYPE}" tag)'
        )
    try:
        session = PlacementSession.restore_state(
            payload["state"], warm_programs=warm_programs
        )
    except (ReproError, KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"{path}: corrupt snapshot state ({error})") from None
    fingerprint = payload.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        fingerprint = problem_fingerprint(session.problem)
    return fingerprint, session


def save_pool(
    pool: SessionPool,
    directory: Union[str, Path],
    *,
    retain_restarts: Optional[int] = None,
) -> List[Path]:
    """Persist every resident session of ``pool``; returns the paths.

    Sessions whose state cannot be serialised (custom constraint
    subclasses) are skipped with a warning -- a single exotic tenant must
    not veto persistence for the rest.

    Every written tenant is marked *seen* at the current restart in the
    retention meta file; with ``retain_restarts`` set, snapshots of
    tenants unseen for that many restarts are deleted (see the module
    docstring).
    """
    paths: List[Path] = []
    for entry in pool.entries():
        with entry.lock:
            try:
                paths.append(
                    save_session(
                        entry.session, directory, fingerprint=entry.fingerprint
                    )
                )
            except SerializationError as error:
                print(
                    f"warning: skipping snapshot of session "
                    f"{entry.fingerprint[:12]}…: {error}",
                    file=sys.stderr,
                )
    if paths or retain_restarts is not None:
        directory = Path(directory)
        if directory.is_dir():
            meta = _load_meta(directory)
            last_seen: Dict[str, int] = meta["last_seen"]  # type: ignore[assignment]
            for path in paths:
                last_seen[_snapshot_fingerprint(path)] = int(meta["restarts"])
            if retain_restarts is not None:
                _age_out(directory, meta, retain_restarts)
            _store_meta(directory, meta)
    return paths


def restore_pool(
    pool: SessionPool,
    directory: Union[str, Path],
    *,
    warm_programs: bool = True,
    retain_restarts: Optional[int] = None,
) -> int:
    """Adopt every decodable snapshot under ``directory`` into ``pool``.

    Only the ``pool.capacity`` most recently written files are decoded --
    older tenants would be LRU-evicted the moment they were adopted, so
    paying their JSON decode and eager program re-assembly at boot would be
    pure startup cost.  The survivors restore in modification-time order
    (oldest first), so the pool's LRU order mirrors the snapshot ages.
    Returns the number of sessions restored.

    Each call counts as one server restart in the retention meta file.
    Restored tenants are marked *seen* at this restart; files present but
    not restored keep their last-seen restart (files the meta has never
    seen are graced at this restart, so pre-retention directories age from
    now rather than being wiped at once).  With ``retain_restarts=N``,
    snapshots unseen for ``N`` restarts are deleted.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    restored = 0
    # stat() each candidate defensively: a concurrent server retiring a
    # superseded snapshot can unlink a file in the glob-to-stat window, and
    # one vanished file must not abort the whole restore.
    stamped: List[Tuple[float, Path]] = []
    for path in directory.glob(f"*{SNAPSHOT_SUFFIX}"):
        try:
            stamped.append((path.stat().st_mtime, path))
        except FileNotFoundError:
            continue
    paths = [path for _, path in sorted(stamped)][-pool.capacity :]
    seen: set = set()
    for path in paths:
        try:
            fingerprint, session = load_session(path, warm_programs=warm_programs)
        except SerializationError as error:
            print(f"warning: skipping {error}", file=sys.stderr)
            continue
        pool.adopt(PooledSession(fingerprint, session), restored=True)
        seen.add(fingerprint)
        restored += 1

    meta = _load_meta(directory)
    meta["restarts"] = int(meta["restarts"]) + 1
    last_seen: Dict[str, int] = meta["last_seen"]  # type: ignore[assignment]
    present = {_snapshot_fingerprint(path) for _, path in stamped}
    for fingerprint in present:
        if fingerprint in seen or fingerprint not in last_seen:
            last_seen[fingerprint] = int(meta["restarts"])
    for fingerprint in list(last_seen):
        if fingerprint not in present:
            del last_seen[fingerprint]
    if retain_restarts is not None:
        _age_out(directory, meta, retain_restarts)
    _store_meta(directory, meta)
    return restored
