"""Dependency-free serving transports: stdio lines and stdlib HTTP.

:class:`ReproServer` binds a :class:`~repro.serving.pool.SessionPool` to a
snapshot directory and serves :mod:`repro.serving.protocol` envelopes over
two transports, both standard-library only:

**stdio** (:func:`serve_stdio`)
    Newline-delimited JSON: one request envelope per input line, one reply
    per output line, flushed after every reply.  The transport a supervisor
    or test harness drives through a pipe (``repro serve --stdio``); EOF
    shuts the server down cleanly (final snapshot included).

**HTTP** (:func:`make_http_server` / :func:`serve_http`)
    ``POST /`` with an envelope body returns the reply as
    ``application/json`` (status 200 even for error envelopes -- transport
    success, application-level error; an unreadable body is a 400 and an
    oversized one a 413).  ``GET /stats`` answers the ``stats`` op for
    dashboards (query strings tolerated) and ``GET /metrics`` renders the
    same counters as Prometheus text exposition.  Built on
    :class:`http.server.ThreadingHTTPServer`, so concurrent tenants are
    served in parallel (the pool's per-session locks serialise only
    same-tenant requests); a client that disconnects mid-reply costs one
    stderr line, never a traceback or a dead worker.

For the single-threaded ``selectors``-based event loop over the same
protocol (many sockets, one thread, no blocking on slow clients) see
:mod:`repro.serving.loopserver`.

With a snapshot directory configured, the server restores warm sessions on
construction and re-persists a session after every mutating op (epoch
updates) and on eviction and shutdown -- see :mod:`repro.serving.snapshot`.
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union
from urllib.parse import urlsplit

from repro.serving.metrics import render_prometheus
from repro.serving.pool import PooledSession, SessionPool
from repro.serving.protocol import error_envelope, handle_envelope
from repro.serving.snapshot import restore_pool, save_pool, save_session

__all__ = [
    "MAX_BODY_BYTES",
    "ReproServer",
    "serve_stdio",
    "make_http_server",
    "serve_http",
]

#: Upper bound on a POST body (16 MiB) -- far above any real envelope (a
#: 400-node problem serialises to a few hundred KiB) and small enough that
#: a hostile Content-Length cannot balloon a worker.
MAX_BODY_BYTES = 16 * 1024 * 1024


class ReproServer:
    """A session pool plus snapshot policy behind one ``handle()`` call.

    Parameters
    ----------
    pool:
        The session pool to serve from; built from ``capacity`` /
        ``max_bytes`` / ``mode`` when omitted.
    snapshot_dir:
        Optional persistence directory.  When given, decodable snapshots
        restore into the pool immediately (warm boot), every mutating op
        re-persists its session, and evicted sessions flush a final
        snapshot before leaving memory.
    snapshot_retain:
        Optional retention window in restarts: snapshot files of tenants
        not seen (restored or re-persisted) for this many server restarts
        are deleted at boot and on :meth:`snapshot_all` (see
        :mod:`repro.serving.snapshot`).  ``None`` keeps every file
        forever.
    """

    def __init__(
        self,
        pool: Optional[SessionPool] = None,
        *,
        capacity: int = 8,
        max_bytes: Optional[int] = None,
        mode: str = "incremental",
        snapshot_dir: Optional[Union[str, Path]] = None,
        snapshot_retain: Optional[int] = None,
    ) -> None:
        if snapshot_retain is not None and snapshot_retain < 1:
            raise ValueError(
                f"snapshot_retain must be >= 1 restarts, got {snapshot_retain}"
            )
        self.pool = pool if pool is not None else SessionPool(
            capacity, max_bytes=max_bytes, mode=mode
        )
        self.snapshot_dir = None if snapshot_dir is None else Path(snapshot_dir)
        self.snapshot_retain = snapshot_retain
        self.restored = 0
        if self.snapshot_dir is not None:
            self.restored = restore_pool(
                self.pool, self.snapshot_dir, retain_restarts=snapshot_retain
            )
            self.pool.add_evict_hook(self._snapshot_evicted)

    # ------------------------------------------------------------------ #
    # snapshot plumbing
    # ------------------------------------------------------------------ #
    def _snapshot_evicted(self, entry: PooledSession) -> None:
        """Eviction hook: flush a leaving session's final snapshot."""
        with entry.lock:
            self._snapshot_entry(entry)

    def _snapshot_entry(self, entry: PooledSession) -> None:
        if self.snapshot_dir is None:
            return
        try:
            save_session(entry.session, self.snapshot_dir, fingerprint=entry.fingerprint)
        except Exception as error:  # noqa: BLE001 - persistence is best-effort
            print(
                f"warning: snapshot of session {entry.fingerprint[:12]}… "
                f"failed: {error}",
                file=sys.stderr,
            )

    def snapshot_all(self) -> None:
        """Persist every resident session (shutdown path)."""
        if self.snapshot_dir is not None:
            save_pool(
                self.pool, self.snapshot_dir, retain_restarts=self.snapshot_retain
            )

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def handle(self, envelope: Any) -> Dict[str, Any]:
        """Serve one envelope; always returns a reply dictionary."""
        handled = handle_envelope(self.pool, envelope)
        if handled.mutations and self.snapshot_dir is not None:
            from repro.serving.snapshot import snapshot_path

            # A batch may mutate one session several times (and several
            # sessions once each): snapshot every mutated session once, at
            # its final state, and retire every snapshot left under a
            # superseded fingerprint -- a stale file would restore a
            # duplicate of the tenant on the next boot.
            snapshotted = set()
            for entry, previous in handled.mutations:
                if id(entry) not in snapshotted:
                    snapshotted.add(id(entry))
                    with entry.lock:
                        self._snapshot_entry(entry)
                if previous is not None and previous != entry.fingerprint:
                    snapshot_path(self.snapshot_dir, previous).unlink(
                        missing_ok=True
                    )
        return handled.reply

    def handle_line(self, line: str) -> str:
        """Serve one newline-delimited JSON request line."""
        try:
            envelope = json.loads(line)
        except ValueError as error:
            reply = error_envelope("bad_request", f"request is not JSON: {error}")
        else:
            reply = self.handle(envelope)
        return json.dumps(reply, sort_keys=True)


# --------------------------------------------------------------------------- #
# stdio transport
# --------------------------------------------------------------------------- #
def serve_stdio(
    server: ReproServer,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> int:
    """Serve newline-delimited JSON envelopes until EOF; returns 0.

    Blank lines are ignored; every other line -- malformed or not --
    produces exactly one reply line, so a pipelined client can match
    replies to requests by order alone.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    try:
        for line in stdin:
            if not line.strip():
                continue
            stdout.write(server.handle_line(line))
            stdout.write("\n")
            stdout.flush()
    finally:
        server.snapshot_all()
    return 0


# --------------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------------- #
class _Handler(BaseHTTPRequestHandler):
    """POST / -> serve an envelope; GET /stats | /metrics -> counters."""

    server_version = "repro-serve/1"
    #: a worker never hangs forever on a stalled client socket
    timeout = 60
    #: set by make_http_server
    repro_server: ReproServer = None  # type: ignore[assignment]

    def _send(self, body: bytes, content_type: str, status: int) -> None:
        """Write one response; a mid-reply disconnect costs one log line.

        A client that hangs up between its request and our reply raises
        ``BrokenPipeError``/``ConnectionResetError`` out of ``wfile`` --
        without the guard that traceback lands on stderr and (because the
        connection may be half-written) the keep-alive loop would try to
        parse the next request off a dead socket.
        """
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError) as error:
            self.close_connection = True
            print(
                f"{self.address_string()} - client disconnected mid-reply "
                f"({type(error).__name__})",
                file=sys.stderr,
            )

    def _reply(self, payload: Dict[str, Any], status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send(body, "application/json", status)

    def _read_body(self) -> Optional[str]:
        """Validate Content-Length and read the body; reply + None on error.

        ``int(headers.get("Content-Length", 0))`` -- the obvious spelling
        -- turns an *absent* header into a silent empty body and lets a
        *negative* one through, which ``rfile.read(-1)`` interprets as
        read-to-EOF: on a keep-alive socket that never sends EOF, the
        worker thread hangs until the client goes away.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            self._reply(
                error_envelope("bad_request", "Content-Length header required"),
                status=411,
            )
            return None
        try:
            length = int(raw)
        except ValueError:
            self._reply(
                error_envelope(
                    "bad_request", f"malformed Content-Length {raw!r}"
                ),
                status=400,
            )
            return None
        if length < 0:
            self._reply(
                error_envelope(
                    "bad_request", f"negative Content-Length {length}"
                ),
                status=400,
            )
            return None
        if length > MAX_BODY_BYTES:
            self._reply(
                error_envelope(
                    "bad_request",
                    f"body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte cap",
                ),
                status=413,
            )
            return None
        try:
            return self.rfile.read(length).decode("utf-8")
        except UnicodeDecodeError as error:
            self._reply(
                error_envelope("bad_request", f"body is not UTF-8: {error}"),
                status=400,
            )
            return None

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        body = self._read_body()
        if body is None:
            return
        try:
            envelope = json.loads(body)
        except ValueError as error:
            self._reply(
                error_envelope("bad_request", f"request body is not JSON: {error}"),
                status=400,
            )
            return
        self._reply(self.repro_server.handle(envelope))

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        # urlsplit, not rstrip: "GET /stats?format=json" carries its query
        # string in self.path, and rstrip("/") never removes it.
        route = urlsplit(self.path).path.rstrip("/")
        if route in ("", "/stats"):
            self._reply(self.repro_server.handle({"op": "stats"}))
            return
        if route == "/metrics":
            body = render_prometheus(self.repro_server.pool.stats()).encode()
            self._send(body, "text/plain; version=0.0.4; charset=utf-8", 200)
            return
        self._reply(
            error_envelope("bad_request", f"unknown path {self.path!r}"),
            status=404,
        )

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Access logs go to stderr (stdout stays machine-readable)."""
        print(
            f"{self.address_string()} - {format % args}", file=sys.stderr
        )


class _QuietHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that logs client disconnects in one line.

    ``_Handler._send`` guards writes *inside* a handler, but the base
    class's ``handle_one_request`` also flushes ``wfile`` after the handler
    returns; a disconnect there reaches ``handle_error``, whose default
    prints a 10-line traceback per dropped client.
    """

    def handle_error(self, request: Any, client_address: Any) -> None:
        error = sys.exc_info()[1]
        if isinstance(error, (BrokenPipeError, ConnectionResetError)):
            print(
                f"{client_address[0] if client_address else '?'} - client "
                f"disconnected ({type(error).__name__})",
                file=sys.stderr,
            )
            return
        super().handle_error(request, client_address)


def make_http_server(
    server: ReproServer, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind (but do not run) the HTTP transport; ``port=0`` picks a free one.

    The caller runs ``serve_forever()`` (or drives ``handle_request()``)
    and is responsible for ``server.snapshot_all()`` at shutdown --
    :func:`serve_http` does both.
    """
    handler = type("_BoundHandler", (_Handler,), {"repro_server": server})
    return _QuietHTTPServer((host, port), handler)


def serve_http(server: ReproServer, host: str = "127.0.0.1", port: int = 8485) -> int:
    """Serve HTTP until interrupted; snapshots on the way out; returns 0."""
    httpd = make_http_server(server, host, port)
    bound_host, bound_port = httpd.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}/ (POST envelopes; "
          f"GET /stats, /metrics)", file=sys.stderr)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        server.snapshot_all()
    return 0
