"""Dependency-free serving transports: stdio lines and stdlib HTTP.

:class:`ReproServer` binds a :class:`~repro.serving.pool.SessionPool` to a
snapshot directory and serves :mod:`repro.serving.protocol` envelopes over
two transports, both standard-library only:

**stdio** (:func:`serve_stdio`)
    Newline-delimited JSON: one request envelope per input line, one reply
    per output line, flushed after every reply.  The transport a supervisor
    or test harness drives through a pipe (``repro serve --stdio``); EOF
    shuts the server down cleanly (final snapshot included).

**HTTP** (:func:`make_http_server` / :func:`serve_http`)
    ``POST /`` with an envelope body returns the reply as
    ``application/json`` (status 200 even for error envelopes -- transport
    success, application-level error; only an unreadable body is a 400).
    ``GET /stats`` answers the ``stats`` op for dashboards.  Built on
    :class:`http.server.ThreadingHTTPServer`, so concurrent tenants are
    served in parallel (the pool's per-session locks serialise only
    same-tenant requests).

With a snapshot directory configured, the server restores warm sessions on
construction and re-persists a session after every mutating op (epoch
updates) and on eviction and shutdown -- see :mod:`repro.serving.snapshot`.
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.serving.pool import PooledSession, SessionPool
from repro.serving.protocol import error_envelope, handle_envelope
from repro.serving.snapshot import restore_pool, save_pool, save_session

__all__ = ["ReproServer", "serve_stdio", "make_http_server", "serve_http"]


class ReproServer:
    """A session pool plus snapshot policy behind one ``handle()`` call.

    Parameters
    ----------
    pool:
        The session pool to serve from; built from ``capacity`` /
        ``max_bytes`` / ``mode`` when omitted.
    snapshot_dir:
        Optional persistence directory.  When given, decodable snapshots
        restore into the pool immediately (warm boot), every mutating op
        re-persists its session, and evicted sessions flush a final
        snapshot before leaving memory.
    """

    def __init__(
        self,
        pool: Optional[SessionPool] = None,
        *,
        capacity: int = 8,
        max_bytes: Optional[int] = None,
        mode: str = "incremental",
        snapshot_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.pool = pool if pool is not None else SessionPool(
            capacity, max_bytes=max_bytes, mode=mode
        )
        self.snapshot_dir = None if snapshot_dir is None else Path(snapshot_dir)
        self.restored = 0
        if self.snapshot_dir is not None:
            self.restored = restore_pool(self.pool, self.snapshot_dir)
            self.pool.add_evict_hook(self._snapshot_evicted)

    # ------------------------------------------------------------------ #
    # snapshot plumbing
    # ------------------------------------------------------------------ #
    def _snapshot_evicted(self, entry: PooledSession) -> None:
        """Eviction hook: flush a leaving session's final snapshot."""
        with entry.lock:
            self._snapshot_entry(entry)

    def _snapshot_entry(self, entry: PooledSession) -> None:
        if self.snapshot_dir is None:
            return
        try:
            save_session(entry.session, self.snapshot_dir, fingerprint=entry.fingerprint)
        except Exception as error:  # noqa: BLE001 - persistence is best-effort
            print(
                f"warning: snapshot of session {entry.fingerprint[:12]}… "
                f"failed: {error}",
                file=sys.stderr,
            )

    def snapshot_all(self) -> None:
        """Persist every resident session (shutdown path)."""
        if self.snapshot_dir is not None:
            save_pool(self.pool, self.snapshot_dir)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def handle(self, envelope: Any) -> Dict[str, Any]:
        """Serve one envelope; always returns a reply dictionary."""
        handled = handle_envelope(self.pool, envelope)
        if handled.mutated and handled.entry is not None:
            with handled.entry.lock:
                self._snapshot_entry(handled.entry)
                # An epoch update re-keys the session; the snapshot under
                # the old fingerprint is superseded, and leaving it behind
                # would restore a stale duplicate of this tenant on boot.
                old = handled.previous_fingerprint
                if (
                    self.snapshot_dir is not None
                    and old is not None
                    and old != handled.entry.fingerprint
                ):
                    from repro.serving.snapshot import snapshot_path

                    snapshot_path(self.snapshot_dir, old).unlink(missing_ok=True)
        return handled.reply

    def handle_line(self, line: str) -> str:
        """Serve one newline-delimited JSON request line."""
        try:
            envelope = json.loads(line)
        except ValueError as error:
            reply = error_envelope("bad_request", f"request is not JSON: {error}")
        else:
            reply = self.handle(envelope)
        return json.dumps(reply, sort_keys=True)


# --------------------------------------------------------------------------- #
# stdio transport
# --------------------------------------------------------------------------- #
def serve_stdio(
    server: ReproServer,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> int:
    """Serve newline-delimited JSON envelopes until EOF; returns 0.

    Blank lines are ignored; every other line -- malformed or not --
    produces exactly one reply line, so a pipelined client can match
    replies to requests by order alone.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    try:
        for line in stdin:
            if not line.strip():
                continue
            stdout.write(server.handle_line(line))
            stdout.write("\n")
            stdout.flush()
    finally:
        server.snapshot_all()
    return 0


# --------------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------------- #
class _Handler(BaseHTTPRequestHandler):
    """POST / -> serve an envelope; GET /stats -> the stats op."""

    server_version = "repro-serve/1"
    #: set by make_http_server
    repro_server: ReproServer = None  # type: ignore[assignment]

    def _reply(self, payload: Dict[str, Any], status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length).decode("utf-8")
            envelope = json.loads(body)
        except (ValueError, UnicodeDecodeError) as error:
            self._reply(
                error_envelope("bad_request", f"request body is not JSON: {error}"),
                status=400,
            )
            return
        self._reply(self.repro_server.handle(envelope))

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") in ("", "/stats"):
            self._reply(self.repro_server.handle({"op": "stats"}))
            return
        self._reply(
            error_envelope("bad_request", f"unknown path {self.path!r}"),
            status=404,
        )

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Access logs go to stderr (stdout stays machine-readable)."""
        print(
            f"{self.address_string()} - {format % args}", file=sys.stderr
        )


def make_http_server(
    server: ReproServer, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind (but do not run) the HTTP transport; ``port=0`` picks a free one.

    The caller runs ``serve_forever()`` (or drives ``handle_request()``)
    and is responsible for ``server.snapshot_all()`` at shutdown --
    :func:`serve_http` does both.
    """
    handler = type("_BoundHandler", (_Handler,), {"repro_server": server})
    return ThreadingHTTPServer((host, port), handler)


def serve_http(server: ReproServer, host: str = "127.0.0.1", port: int = 8485) -> int:
    """Serve HTTP until interrupted; snapshots on the way out; returns 0."""
    httpd = make_http_server(server, host, port)
    bound_host, bound_port = httpd.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}/ (POST envelopes; "
          f"GET /stats)", file=sys.stderr)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        server.snapshot_all()
    return 0
