"""The serving request protocol: JSON envelopes in, result payloads out.

Every transport (newline-delimited JSON over stdio, HTTP POST bodies --
see :mod:`repro.serving.server`) speaks the same envelope format::

    {"op":          "solve" | "bound" | "compare" | "update" |
                    "simulate" | "stats",
     "problem":     {...},          # problem_to_dict payload, optional
     "fingerprint": "....",         # resident-session key, optional
     "params":      {...}}          # op-specific keyword arguments

``problem`` creates (or finds) the resident session for that content;
``fingerprint`` addresses an already-resident session without re-shipping
the tree (an :class:`~repro.serving.pool.UnknownSessionError` miss produces
an ``unknown_fingerprint`` error envelope, and the client re-sends the full
problem).  ``stats`` needs neither.

Replies are the **existing result-protocol payloads** -- the ``to_dict()``
output of :class:`~repro.session.SolveResult`,
:class:`~repro.session.BoundResult`, :class:`~repro.session.CompareResult`
and :class:`~repro.serving.pool.PoolStats`, round-trippable through
:func:`repro.core.results.result_from_dict` -- plus a ``"fingerprint"``
key identifying the session that answered (``from_dict`` constructors read
their fields by name, so the extra key never disturbs decoding).  Failures
of any kind map to a tagged error envelope::

    {"type": "error", "error": {"code": "...", "message": "..."}}

never to a traceback on the wire.  Codes: ``bad_request`` (malformed
envelope / unknown op / bad params), ``unknown_fingerprint`` (session not
resident), ``invalid`` (the problem or parameters fail domain validation),
``infeasible`` (a simulate on an unsolvable epoch) and ``internal``
(anything unexpected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.core.exceptions import InfeasibleError, ReproError
from repro.core.problem import ReplicaPlacementProblem
from repro.serving.pool import PooledSession, SessionPool, UnknownSessionError

__all__ = [
    "OPS",
    "ProtocolError",
    "HandledRequest",
    "error_envelope",
    "is_error",
    "handle_envelope",
]

#: The operations a serving endpoint accepts.
OPS = ("solve", "bound", "compare", "update", "simulate", "stats")

#: ``update`` ops change session content (the server snapshots after them);
#: the rest only warm caches.
_MUTATING_OPS = frozenset({"update"})


class ProtocolError(ReproError):
    """A request envelope that cannot be served as asked."""

    def __init__(self, message: str, *, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


def error_envelope(code: str, message: str) -> Dict[str, Any]:
    """The tagged error reply every transport ships on failure."""
    return {"type": "error", "error": {"code": code, "message": message}}


def is_error(reply: Mapping[str, Any]) -> bool:
    """``True`` when ``reply`` is an error envelope."""
    return isinstance(reply, Mapping) and reply.get("type") == "error"


@dataclass
class HandledRequest:
    """Outcome of one envelope: the reply plus server-side bookkeeping."""

    reply: Dict[str, Any]
    #: the session that answered (``None`` for ``stats`` and errors)
    entry: Optional[PooledSession] = None
    #: whether the session's *content* changed (snapshot trigger)
    mutated: bool = False
    #: the session's key before a mutating op re-keyed it (the server
    #: retires the superseded snapshot file when it differs)
    previous_fingerprint: Optional[str] = None


# --------------------------------------------------------------------------- #
# envelope plumbing
# --------------------------------------------------------------------------- #
def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ProtocolError(
            f"{what} must be a JSON object, got {type(value).__name__}"
        )
    return value


def _decode_problem(payload: Any) -> ReplicaPlacementProblem:
    from repro.core.serialization import problem_from_dict

    _require_mapping(payload, '"problem"')
    try:
        return problem_from_dict(payload)
    except ReproError as error:
        raise ProtocolError(f"invalid problem payload: {error}", code="invalid") from None
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        # AttributeError covers mis-typed nested sections (e.g. a string
        # where the constraints object belongs).
        raise ProtocolError(
            f"malformed problem payload: {error}", code="bad_request"
        ) from None


def _with_fingerprint(payload: Dict[str, Any], fingerprint: str) -> Dict[str, Any]:
    payload["fingerprint"] = fingerprint
    return payload


# --------------------------------------------------------------------------- #
# op implementations (run while holding the entry's lock)
# --------------------------------------------------------------------------- #
def _op_solve(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    result = entry.session.solve(
        policy=params.get("policy"),
        algorithm=params.get("algorithm"),
        on_error="none",  # infeasibility is a result payload, not an error
    )
    return result.to_dict()


def _op_bound(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    time_limit = params.get("time_limit")
    result = entry.session.bound(
        policy=params.get("policy", "multiple"),
        method=params.get("method", "mixed"),
        time_limit=None if time_limit is None else float(time_limit),
    )
    return result.to_dict()


def _op_compare(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.core.policies import Policy

    policies = params.get("policies")
    result = entry.session.compare(
        policies=Policy.ordered() if policies is None else list(policies),
        bounds=bool(params.get("bounds", False)),
        bound_method=params.get("bound_method", "mixed"),
    )
    return result.to_dict()


def _decode_requests(payload: Any) -> Dict[Any, float]:
    """Decode an update's rate map from either wire spelling.

    The canonical encoding is a list of ``{"client": id, "rate": r}``
    objects -- ids stay in value position, so non-string identifiers
    survive JSON (object keys would stringify them).  A plain
    ``{client: rate}`` object is also accepted for hand-written envelopes
    whose ids are strings anyway.
    """
    if isinstance(payload, Mapping):
        return {cid: float(rate) for cid, rate in payload.items()}
    if isinstance(payload, list):
        try:
            return {entry["client"]: float(entry["rate"]) for entry in payload}
        except (KeyError, TypeError) as error:
            raise ProtocolError(
                f"malformed requests list (need client/rate objects): {error}"
            ) from None
    raise ProtocolError(
        "params.requests must be a {client: rate} object or a list of "
        '{"client": ..., "rate": ...} objects'
    )


def _op_update(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    requests = params.get("requests")
    instance = params.get("problem")
    if (requests is None) == (instance is None):
        raise ProtocolError(
            "update needs exactly one of params.requests (a rate map) "
            "or params.problem (the next epoch instance)"
        )
    resolve = params.get("resolve", "always")
    if resolve is True:
        resolve = "always"
    if resolve not in (False, "always", "on_saturation"):
        raise ProtocolError(
            f"unknown resolve mode {resolve!r}; expected "
            "'always', 'on_saturation' or false"
        )
    kwargs: Dict[str, Any] = {"resolve": resolve}
    threshold = params.get("saturation_threshold")
    if threshold is not None:
        kwargs["saturation_threshold"] = float(threshold)
    if requests is not None:
        result = entry.session.update(requests=_decode_requests(requests), **kwargs)
    else:
        result = entry.session.update(_decode_problem(instance), **kwargs)
    if result is None:  # resolve=False: acknowledge the epoch step
        return {"type": "update_ack", "epoch": entry.session.epoch}
    return result.to_dict()


def _op_simulate(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    threshold = params.get("saturation_threshold", 0.999)
    replay = entry.session.simulate(
        policy=params.get("policy"),
        algorithm=params.get("algorithm"),
        saturation_threshold=float(threshold),
    )
    return replay.to_dict()


_OP_HANDLERS = {
    "solve": _op_solve,
    "bound": _op_bound,
    "compare": _op_compare,
    "update": _op_update,
    "simulate": _op_simulate,
}


# --------------------------------------------------------------------------- #
# the dispatcher
# --------------------------------------------------------------------------- #
def handle_envelope(pool: SessionPool, envelope: Any) -> HandledRequest:
    """Serve one request envelope against a session pool.

    Never raises: every failure becomes an error envelope in the returned
    :class:`HandledRequest` (transports ship replies verbatim).  Session
    ops run while holding the session's checkout lock, so concurrent
    envelopes for different tenants run in parallel.
    """
    try:
        return _handle(pool, envelope)
    except ProtocolError as error:
        return HandledRequest(error_envelope(error.code, str(error)))
    except UnknownSessionError as error:
        return HandledRequest(error_envelope("unknown_fingerprint", str(error)))
    except InfeasibleError as error:
        return HandledRequest(error_envelope("infeasible", str(error)))
    except ReproError as error:
        return HandledRequest(error_envelope("invalid", str(error)))
    except (TypeError, ValueError) as error:
        # Domain validation across the package raises ValueError (unknown
        # policies, methods, modes); TypeError covers mis-typed params.
        return HandledRequest(error_envelope("invalid", str(error)))
    except Exception as error:  # noqa: BLE001 - never a traceback on the wire
        return HandledRequest(
            error_envelope("internal", f"{type(error).__name__}: {error}")
        )


def _handle(pool: SessionPool, envelope: Any) -> HandledRequest:
    envelope = _require_mapping(envelope, "request envelope")
    op = envelope.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {list(OPS)}"
        )
    params = envelope.get("params") or {}
    _require_mapping(params, '"params"')

    if op == "stats":
        return HandledRequest(pool.stats().to_dict())

    problem_payload = envelope.get("problem")
    fingerprint = envelope.get("fingerprint")
    if problem_payload is None and fingerprint is None:
        raise ProtocolError(f'op "{op}" needs a "problem" or a "fingerprint"')
    if problem_payload is not None:
        checkout = pool.checkout(_decode_problem(problem_payload))
    else:
        if not isinstance(fingerprint, str):
            raise ProtocolError('"fingerprint" must be a string')
        checkout = pool.checkout(fingerprint=fingerprint)

    handler = _OP_HANDLERS[op]
    with checkout as entry:
        previous_fingerprint = entry.fingerprint
        payload = handler(entry, params)
        if op in _MUTATING_OPS:
            pool.rekey(entry)
        return HandledRequest(
            _with_fingerprint(payload, entry.fingerprint),
            entry=entry,
            mutated=op in _MUTATING_OPS,
            previous_fingerprint=previous_fingerprint,
        )
