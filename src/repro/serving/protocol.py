"""The serving request protocol: JSON envelopes in, result payloads out.

Every transport (newline-delimited JSON over stdio, HTTP POST bodies, the
selectors loop server -- see :mod:`repro.serving.server` and
:mod:`repro.serving.loopserver`) speaks the same envelope format::

    {"op":          "solve" | "bound" | "compare" | "update" |
                    "simulate" | "stats" | "batch",
     "problem":     {...},          # problem_to_dict payload, optional
     "fingerprint": "....",         # resident-session key, optional
     "params":      {...}}          # op-specific keyword arguments

``problem`` creates (or finds) the resident session for that content;
``fingerprint`` addresses an already-resident session without re-shipping
the tree (an :class:`~repro.serving.pool.UnknownSessionError` miss produces
an ``unknown_fingerprint`` error envelope, and the client re-sends the full
problem).  ``stats`` needs neither.

**Batched envelopes** amortise the per-request parse/dispatch cycle -- the
dominant cost once solves answer from warm caches::

    {"op": "batch", "requests": [<envelope>, <envelope>, ...]}

The reply is ``{"type": "batch_result", "results": [...]}`` with exactly
one reply per request, **order-matched**; a failing item produces its
tagged error envelope *in place* and never poisons its neighbours.
Consecutive items addressing the same resident session are served under
**one checkout** (one lock acquisition, one LRU touch, one byte-estimate
refresh for the whole run), and an item that names *neither* a problem nor
a fingerprint implicitly addresses the session of the previous item --
which is what lets a whole epoch trajectory ship as one envelope::

    {"op": "batch", "requests": [
        {"op": "solve",  "problem": {...}},
        {"op": "update", "params": {"requests": [...]}},   # same session
        {"op": "solve"},                                   # same session
        ...]}

Batch envelopes do not nest.

Replies are the **existing result-protocol payloads** -- the ``to_dict()``
output of :class:`~repro.session.SolveResult`,
:class:`~repro.session.BoundResult`, :class:`~repro.session.CompareResult`
and :class:`~repro.serving.pool.PoolStats`, round-trippable through
:func:`repro.core.results.result_from_dict` -- plus a ``"fingerprint"``
key identifying the session that answered (``from_dict`` constructors read
their fields by name, so the extra key never disturbs decoding).  Failures
of any kind map to a tagged error envelope::

    {"type": "error", "error": {"code": "...", "message": "..."}}

never to a traceback on the wire.  Codes: ``bad_request`` (malformed
envelope / unknown op / bad params), ``unknown_fingerprint`` (session not
resident), ``invalid`` (the problem or parameters fail domain validation),
``infeasible`` (a simulate on an unsolvable epoch) and ``internal``
(anything unexpected).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.exceptions import InfeasibleError, ReproError
from repro.core.problem import ReplicaPlacementProblem
from repro.serving.fingerprint import problem_fingerprint
from repro.serving.pool import PooledSession, SessionPool, UnknownSessionError

__all__ = [
    "OPS",
    "MAX_BATCH_ITEMS",
    "ProtocolError",
    "HandledRequest",
    "error_envelope",
    "is_error",
    "handle_envelope",
]

#: The operations a serving endpoint accepts.
OPS = ("solve", "bound", "compare", "update", "simulate", "stats", "batch")

#: Upper bound on the items of one batch envelope -- a runaway client gets
#: a ``bad_request`` instead of pinning a worker for an unbounded run.
MAX_BATCH_ITEMS = 10_000

#: ``update`` ops change session content (the server snapshots after them);
#: the rest only warm caches.
_MUTATING_OPS = frozenset({"update"})


class ProtocolError(ReproError):
    """A request envelope that cannot be served as asked."""

    def __init__(self, message: str, *, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


def error_envelope(code: str, message: str) -> Dict[str, Any]:
    """The tagged error reply every transport ships on failure."""
    return {"type": "error", "error": {"code": code, "message": message}}


def is_error(reply: Mapping[str, Any]) -> bool:
    """``True`` when ``reply`` is an error envelope."""
    return isinstance(reply, Mapping) and reply.get("type") == "error"


@dataclass
class HandledRequest:
    """Outcome of one envelope: the reply plus server-side bookkeeping."""

    reply: Dict[str, Any]
    #: the session that answered (``None`` for ``stats``, ``batch`` and
    #: errors -- a batch may touch several sessions; see ``mutations``)
    entry: Optional[PooledSession] = None
    #: ``(entry, fingerprint_before)`` for every mutating op served --
    #: several for a batch.  The server snapshots each mutated session once
    #: and retires snapshots left under superseded fingerprints.
    mutations: List[Tuple[PooledSession, Optional[str]]] = field(
        default_factory=list
    )

    @property
    def mutated(self) -> bool:
        """Whether any session's *content* changed (snapshot trigger)."""
        return bool(self.mutations)


# --------------------------------------------------------------------------- #
# envelope plumbing
# --------------------------------------------------------------------------- #
def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ProtocolError(
            f"{what} must be a JSON object, got {type(value).__name__}"
        )
    return value


def _decode_problem(payload: Any) -> ReplicaPlacementProblem:
    from repro.core.serialization import problem_from_dict

    _require_mapping(payload, '"problem"')
    try:
        return problem_from_dict(payload)
    except ReproError as error:
        raise ProtocolError(f"invalid problem payload: {error}", code="invalid") from None
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        # AttributeError covers mis-typed nested sections (e.g. a string
        # where the constraints object belongs).
        raise ProtocolError(
            f"malformed problem payload: {error}", code="bad_request"
        ) from None


def _with_fingerprint(payload: Dict[str, Any], fingerprint: str) -> Dict[str, Any]:
    payload["fingerprint"] = fingerprint
    return payload


# --------------------------------------------------------------------------- #
# op implementations (run while holding the entry's lock)
# --------------------------------------------------------------------------- #
def _op_solve(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    result = entry.session.solve(
        policy=params.get("policy"),
        algorithm=params.get("algorithm"),
        on_error="none",  # infeasibility is a result payload, not an error
    )
    return result.to_dict()


def _op_bound(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    time_limit = params.get("time_limit")
    result = entry.session.bound(
        policy=params.get("policy", "multiple"),
        method=params.get("method", "mixed"),
        time_limit=None if time_limit is None else float(time_limit),
    )
    return result.to_dict()


def _op_compare(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.core.policies import Policy

    policies = params.get("policies")
    result = entry.session.compare(
        policies=Policy.ordered() if policies is None else list(policies),
        bounds=bool(params.get("bounds", False)),
        bound_method=params.get("bound_method", "mixed"),
    )
    return result.to_dict()


def _decode_requests(payload: Any) -> Dict[Any, float]:
    """Decode an update's rate map from either wire spelling.

    The canonical encoding is a list of ``{"client": id, "rate": r}``
    objects -- ids stay in value position, so non-string identifiers
    survive JSON (object keys would stringify them).  A plain
    ``{client: rate}`` object is also accepted for hand-written envelopes
    whose ids are strings anyway.
    """
    if isinstance(payload, Mapping):
        return {cid: float(rate) for cid, rate in payload.items()}
    if isinstance(payload, list):
        try:
            return {entry["client"]: float(entry["rate"]) for entry in payload}
        except (KeyError, TypeError) as error:
            raise ProtocolError(
                f"malformed requests list (need client/rate objects): {error}"
            ) from None
    raise ProtocolError(
        "params.requests must be a {client: rate} object or a list of "
        '{"client": ..., "rate": ...} objects'
    )


def _op_update(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    requests = params.get("requests")
    instance = params.get("problem")
    if (requests is None) == (instance is None):
        raise ProtocolError(
            "update needs exactly one of params.requests (a rate map) "
            "or params.problem (the next epoch instance)"
        )
    resolve = params.get("resolve", "always")
    if resolve is True:
        resolve = "always"
    if resolve not in (False, "always", "on_saturation"):
        raise ProtocolError(
            f"unknown resolve mode {resolve!r}; expected "
            "'always', 'on_saturation' or false"
        )
    kwargs: Dict[str, Any] = {"resolve": resolve}
    threshold = params.get("saturation_threshold")
    if threshold is not None:
        kwargs["saturation_threshold"] = float(threshold)
    if requests is not None:
        result = entry.session.update(requests=_decode_requests(requests), **kwargs)
    else:
        result = entry.session.update(_decode_problem(instance), **kwargs)
    if result is None:  # resolve=False: acknowledge the epoch step
        return {"type": "update_ack", "epoch": entry.session.epoch}
    return result.to_dict()


def _op_simulate(entry: PooledSession, params: Mapping[str, Any]) -> Dict[str, Any]:
    threshold = params.get("saturation_threshold", 0.999)
    replay = entry.session.simulate(
        policy=params.get("policy"),
        algorithm=params.get("algorithm"),
        saturation_threshold=float(threshold),
    )
    return replay.to_dict()


_OP_HANDLERS = {
    "solve": _op_solve,
    "bound": _op_bound,
    "compare": _op_compare,
    "update": _op_update,
    "simulate": _op_simulate,
}


# --------------------------------------------------------------------------- #
# the checkout cursor (one checkout spans consecutive same-session items)
# --------------------------------------------------------------------------- #
class _BatchCursor:
    """The open checkout carried across the items of one envelope.

    A plain envelope opens and closes one checkout through it; a batch
    envelope *keeps* the checkout open while consecutive items address the
    same session, so a whole epoch trajectory pays one lock acquisition,
    one LRU touch and one byte-estimate refresh instead of one per item.
    Addressing a different session closes the held checkout first -- the
    per-session locks are not reentrant, so at most one is ever held.

    Also collects the ``(entry, fingerprint_before)`` pair of every
    mutating op, which the owning :func:`handle_envelope` hands to the
    server for snapshot upkeep.
    """

    __slots__ = ("_pool", "_cm", "entry", "mutations")

    def __init__(self, pool: SessionPool) -> None:
        self._pool = pool
        self._cm: Optional[Any] = None
        self.entry: Optional[PooledSession] = None
        self.mutations: List[Tuple[PooledSession, Optional[str]]] = []

    def use_problem(self, problem: ReplicaPlacementProblem) -> PooledSession:
        if (
            self.entry is not None
            and self.entry.fingerprint == problem_fingerprint(problem)
        ):
            return self.entry
        return self._switch(self._pool.checkout(problem))

    def use_fingerprint(self, fingerprint: str) -> PooledSession:
        if self.entry is not None and self.entry.fingerprint == fingerprint:
            return self.entry
        return self._switch(self._pool.checkout(fingerprint=fingerprint))

    def _switch(self, checkout: Any) -> PooledSession:
        self.close()
        entry = checkout.__enter__()  # may raise: UnknownSessionError et al.
        # Adopt only after a successful __enter__ -- close() must never
        # __exit__ a context manager that never yielded.
        self._cm, self.entry = checkout, entry
        return entry

    def record_mutation(
        self, entry: PooledSession, previous: Optional[str]
    ) -> None:
        self.mutations.append((entry, previous))

    def close(self) -> None:
        checkout, self._cm, self.entry = self._cm, None, None
        if checkout is not None:
            checkout.__exit__(None, None, None)


# --------------------------------------------------------------------------- #
# the dispatcher
# --------------------------------------------------------------------------- #
def handle_envelope(pool: SessionPool, envelope: Any) -> HandledRequest:
    """Serve one request envelope against a session pool.

    Never raises: every failure becomes an error envelope in the returned
    :class:`HandledRequest` (transports ship replies verbatim).  Session
    ops run while holding the session's checkout lock, so concurrent
    envelopes for different tenants run in parallel.  Every envelope --
    and every item inside a batch -- is timed and folded into the pool's
    per-op counters (:meth:`~repro.serving.pool.SessionPool.observe_op`).
    """
    cursor = _BatchCursor(pool)
    try:
        reply, entry = _serve(pool, envelope, cursor, allow_batch=True)
    finally:
        cursor.close()
    return HandledRequest(reply, entry=entry, mutations=cursor.mutations)


def _op_label(envelope: Any) -> str:
    """The metrics label for an envelope (bounded cardinality).

    Unknown op names map to ``_unknown`` and non-object envelopes to
    ``_invalid`` so hostile input cannot mint unbounded label values.
    """
    if not isinstance(envelope, Mapping):
        return "_invalid"
    op = envelope.get("op")
    return op if op in OPS else "_unknown"


def _serve(
    pool: SessionPool, envelope: Any, cursor: _BatchCursor, *, allow_batch: bool
) -> Tuple[Dict[str, Any], Optional[PooledSession]]:
    """Exception-ladder + timing wrapper around :func:`_handle`.

    Returns ``(reply, entry)`` and never raises; used both for top-level
    envelopes and for each item inside a batch (so per-item failures stay
    per-item and every item lands in the op metrics individually).
    """
    started = time.perf_counter()
    entry: Optional[PooledSession] = None
    try:
        reply, entry = _handle(pool, envelope, cursor, allow_batch=allow_batch)
    except ProtocolError as error:
        reply = error_envelope(error.code, str(error))
    except UnknownSessionError as error:
        reply = error_envelope("unknown_fingerprint", str(error))
    except InfeasibleError as error:
        reply = error_envelope("infeasible", str(error))
    except ReproError as error:
        reply = error_envelope("invalid", str(error))
    except (TypeError, ValueError) as error:
        # Domain validation across the package raises ValueError (unknown
        # policies, methods, modes); TypeError covers mis-typed params.
        reply = error_envelope("invalid", str(error))
    except Exception as error:  # noqa: BLE001 - never a traceback on the wire
        reply = error_envelope("internal", f"{type(error).__name__}: {error}")
    pool.observe_op(
        _op_label(envelope), time.perf_counter() - started, error=is_error(reply)
    )
    return reply, entry


def _handle(
    pool: SessionPool, envelope: Any, cursor: _BatchCursor, *, allow_batch: bool
) -> Tuple[Dict[str, Any], Optional[PooledSession]]:
    envelope = _require_mapping(envelope, "request envelope")
    op = envelope.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {list(OPS)}"
        )
    if op == "batch":
        if not allow_batch:
            raise ProtocolError("batch envelopes do not nest")
        return _handle_batch(pool, envelope, cursor), None
    params = envelope.get("params") or {}
    _require_mapping(params, '"params"')

    if op == "stats":
        return pool.stats().to_dict(), None

    problem_payload = envelope.get("problem")
    fingerprint = envelope.get("fingerprint")
    if problem_payload is not None:
        entry = cursor.use_problem(_decode_problem(problem_payload))
    elif fingerprint is not None:
        if not isinstance(fingerprint, str):
            raise ProtocolError('"fingerprint" must be a string')
        entry = cursor.use_fingerprint(fingerprint)
    else:
        # Inside a batch, an unaddressed item rides the previous item's
        # session (that's how a trajectory ships as one envelope); a
        # top-level envelope has no previous item to inherit from.
        entry = cursor.entry
        if entry is None:
            raise ProtocolError(
                f'op "{op}" needs a "problem" or a "fingerprint" (or, inside '
                "a batch, a previous item to inherit the session from)"
            )

    handler = _OP_HANDLERS[op]
    previous_fingerprint = entry.fingerprint
    payload = handler(entry, params)
    if op in _MUTATING_OPS:
        pool.rekey(entry)
        cursor.record_mutation(entry, previous_fingerprint)
    return _with_fingerprint(payload, entry.fingerprint), entry


def _handle_batch(
    pool: SessionPool, envelope: Mapping[str, Any], cursor: _BatchCursor
) -> Dict[str, Any]:
    """Serve ``{"op": "batch", "requests": [...]}``: one reply per item.

    Replies are **order-matched** to requests; a failing item contributes
    its error envelope in place and the remaining items still run.  The
    shared ``cursor`` is what groups consecutive same-session items under
    one checkout.
    """
    requests = envelope.get("requests")
    if not isinstance(requests, list):
        raise ProtocolError(
            '"requests" must be a JSON array of request envelopes'
        )
    if len(requests) > MAX_BATCH_ITEMS:
        raise ProtocolError(
            f"batch holds {len(requests)} requests; the cap is "
            f"{MAX_BATCH_ITEMS} per envelope"
        )
    results: List[Dict[str, Any]] = []
    for item in requests:
        reply, _ = _serve(pool, item, cursor, allow_batch=False)
        results.append(reply)
    return {"type": "batch_result", "results": results}
