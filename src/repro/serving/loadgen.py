"""Open-loop IPPP load harness for the serving endpoints.

Closed-loop load tests (send, wait, send again) measure a server that is
never actually saturated: the client's own waiting throttles the offered
rate, hiding queueing delay exactly when it matters.  This harness is
**open-loop**: the whole arrival schedule is sampled *up front* from an
inhomogeneous Poisson point process (:func:`~repro.workloads.distributions.
thinned_poisson_arrivals` under a :func:`~repro.workloads.distributions.
sinusoidal_intensity` diurnal curve), and every request's latency is
measured against its *scheduled* arrival time -- a server that falls
behind pays the accumulated queueing delay in its p99, as it would in
production.

The schedule spreads arrivals over ``tenants`` synthetic tenants (distinct
generated trees, so each is its own resident session server-side) and
cycles each tenant's ops through ``ops``.  With ``batch > 1`` every
dispatch coalesces all *due* arrivals (up to the cap) into one batch
envelope -- the measured contrast against ``batch=1`` on the same schedule
is exactly the amortisation the batched protocol buys, and is what
``benchmarks/test_serving_throughput.py`` records into BENCH_engine.json.

The harness drives any :class:`~repro.serving.client.ServingClient`
transport: in-process (``repro loadtest``'s default), stdio, HTTP or a
loop-server socket (``tcp://``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import ResultBase, register_result
from repro.core.serialization import problem_to_dict
from repro.serving.client import ServingClient, ServingError, connect
from repro.workloads.distributions import (
    sinusoidal_intensity,
    thinned_poisson_arrivals,
)

__all__ = ["LoadgenConfig", "LoadtestReport", "build_schedule", "run_loadtest"]


@dataclass
class LoadgenConfig:
    """Shape of one load run: the process, the tenants, the envelope size.

    ``rate`` is the *mean* offered rate (requests/second across all
    tenants); the instantaneous intensity follows a sinusoid with relative
    amplitude ``burst`` and period ``period`` seconds, so the server sees
    genuine bursts instead of a metronome.  ``batch`` caps how many due
    arrivals one envelope may carry (1 = the unbatched protocol).

    Ops come from the deterministic per-tenant ``ops`` cycle by default.
    ``op_mix`` replaces the cycle with a weighted draw *per arrival*
    (e.g. ``{"solve": 3, "bound": 1}``): each tenant gets its own slightly
    jittered copy of the weights, so the traffic resembles a fleet of
    real tenants with similar-but-not-identical workloads rather than
    ``tenants`` copies of one script.
    """

    tenants: int = 4
    size: int = 30
    horizon: float = 2.0
    rate: float = 50.0
    burst: float = 0.5
    period: float = 1.0
    batch: int = 1
    ops: Tuple[str, ...] = ("solve", "bound")
    op_mix: Optional[Mapping[str, float]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if not self.ops:
            raise ValueError("ops must name at least one op")
        unknown = set(self.ops) - {"solve", "bound", "update"}
        if unknown:
            raise ValueError(
                f"unsupported loadgen ops {sorted(unknown)}; "
                "choose from solve/bound/update"
            )
        if self.op_mix is not None:
            if not self.op_mix:
                raise ValueError("op_mix must weight at least one op")
            unknown = set(self.op_mix) - {"solve", "bound", "update"}
            if unknown:
                raise ValueError(
                    f"unsupported op_mix ops {sorted(unknown)}; "
                    "choose from solve/bound/update"
                )
            for op, weight in self.op_mix.items():
                weight = float(weight)
                if not (weight > 0 and np.isfinite(weight)):
                    raise ValueError(
                        f"op_mix weight for {op!r} must be a positive finite "
                        f"number, got {weight!r}"
                    )


@register_result
@dataclass
class LoadtestReport(ResultBase):
    """Outcome of one open-loop run: throughput plus latency percentiles.

    ``latency`` percentiles are measured from each request's *scheduled*
    arrival to its reply (queueing delay included -- the open-loop
    number); ``requests_per_sec`` is served requests over the wall-clock
    span of the run.
    """

    payload_type = "loadtest_report"

    tenants: int
    horizon: float
    offered_rate: float
    batch: int
    scheduled: int
    served: int
    errors: int
    duration: float
    requests_per_sec: float
    envelopes: int
    latency: Dict[str, float] = field(default_factory=dict)
    op_counts: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        p50 = self.latency.get("p50", float("nan"))
        p99 = self.latency.get("p99", float("nan"))
        return (
            f"{self.served}/{self.scheduled} requests over {self.duration:.2f}s "
            f"({self.tenants} tenants, batch<={self.batch}): "
            f"{self.requests_per_sec:.1f} req/s, "
            f"latency p50 {p50 * 1e3:.1f}ms / p99 {p99 * 1e3:.1f}ms, "
            f"{self.errors} errors"
        )

    def to_dict(self) -> Dict[str, Any]:
        return self._tagged(
            {
                "tenants": self.tenants,
                "horizon": self.horizon,
                "offered_rate": self.offered_rate,
                "batch": self.batch,
                "scheduled": self.scheduled,
                "served": self.served,
                "errors": self.errors,
                "duration": self.duration,
                "requests_per_sec": self.requests_per_sec,
                "envelopes": self.envelopes,
                "latency": dict(self.latency),
                "op_counts": dict(self.op_counts),
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LoadtestReport":
        return cls(
            tenants=int(payload["tenants"]),
            horizon=float(payload["horizon"]),
            offered_rate=float(payload["offered_rate"]),
            batch=int(payload["batch"]),
            scheduled=int(payload["scheduled"]),
            served=int(payload["served"]),
            errors=int(payload["errors"]),
            duration=float(payload["duration"]),
            requests_per_sec=float(payload["requests_per_sec"]),
            envelopes=int(payload.get("envelopes", 0)),
            latency={k: float(v) for k, v in (payload.get("latency") or {}).items()},
            op_counts={
                str(k): int(v) for k, v in (payload.get("op_counts") or {}).items()
            },
        )


@dataclass
class _Tenant:
    """One synthetic tenant: its problem payload and serving address."""

    problem_payload: Dict[str, Any]
    client_ids: List[Any]
    fingerprint: Optional[str] = None
    next_op: int = 0
    #: ``(op names, probabilities)`` of this tenant's jittered op mix;
    #: ``None`` keeps the deterministic ``ops`` cycle.
    mix: Optional[Tuple[Tuple[str, ...], np.ndarray]] = None


def build_schedule(
    config: LoadgenConfig,
    *,
    arrivals: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, List[_Tenant]]:
    """Sample the open-loop schedule: arrival times, tenant picks, tenants.

    Deterministic in ``config.seed``.  Arrival times come from the IPPP
    sampler (thinning under the sinusoidal intensity); tenants are drawn
    uniformly per arrival, so every tenant's sub-process is itself Poisson.

    An explicit ``arrivals`` array (sorted, finite, non-negative seconds)
    replaces the sampled schedule -- the hook ``repro loadtest --trace``
    uses to replay a trace-estimated intensity
    (:meth:`~repro.workloads.traces.TraceEpochs.arrival_schedule`) against
    the same tenants and envelope logic.
    """
    from repro.core.exceptions import WorkloadError
    from repro.core.problem import ProblemKind, ReplicaPlacementProblem
    from repro.workloads.generator import GeneratorConfig, TreeGenerator

    rng = np.random.default_rng(config.seed)
    if arrivals is None:
        arrivals = thinned_poisson_arrivals(
            rng,
            sinusoidal_intensity(
                config.rate, burst=config.burst, period=config.period
            ),
            config.horizon,
            bound=config.rate * (1.0 + config.burst),
        )
    else:
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.ndim != 1:
            raise WorkloadError(
                f"arrival schedule must be 1-d, got shape {arrivals.shape}"
            )
        if arrivals.size and not np.all(np.isfinite(arrivals)):
            raise WorkloadError("arrival times must be finite")
        if arrivals.size and float(arrivals[0]) < 0:
            raise WorkloadError("arrival times must be >= 0")
        if arrivals.size > 1 and np.any(np.diff(arrivals) < 0):
            raise WorkloadError("arrival times must be sorted (non-decreasing)")
    picks = rng.integers(0, config.tenants, size=arrivals.size)
    mix_ops: Optional[Tuple[str, ...]] = None
    if config.op_mix is not None:
        mix_ops = tuple(sorted(config.op_mix))
        mix_base = np.asarray([float(config.op_mix[op]) for op in mix_ops])
    tenants: List[_Tenant] = []
    for index in range(config.tenants):
        tree = TreeGenerator(config.seed * 1009 + index).generate(
            GeneratorConfig(size=config.size, target_load=0.4)
        )
        problem = ReplicaPlacementProblem(
            tree=tree, kind=ProblemKind.REPLICA_COUNTING
        )
        mix = None
        if mix_ops is not None:
            # Per-tenant jitter (up to +/-25% per weight) off the shared
            # schedule rng, so the whole draw stays pinned by config.seed.
            jitter = 1.0 + 0.25 * (2.0 * rng.random(len(mix_ops)) - 1.0)
            weights = mix_base * jitter
            mix = (mix_ops, weights / weights.sum())
        tenants.append(
            _Tenant(
                problem_payload=problem_to_dict(problem),
                client_ids=[client.id for client in tree.clients()],
                mix=mix,
            )
        )
    return arrivals, picks, tenants


def _make_item(
    tenant: _Tenant, rng: np.random.Generator, ops: Sequence[str]
) -> Dict[str, Any]:
    """The next request envelope: sampled op mix, or the ``ops`` cycle."""
    if tenant.mix is not None:
        mix_ops, probabilities = tenant.mix
        op = mix_ops[int(rng.choice(len(mix_ops), p=probabilities))]
    else:
        op = ops[tenant.next_op % len(ops)]
    tenant.next_op += 1
    item: Dict[str, Any] = {"op": op}
    if tenant.fingerprint is not None:
        item["fingerprint"] = tenant.fingerprint
    else:
        item["problem"] = tenant.problem_payload
    if op == "update":
        client = tenant.client_ids[int(rng.integers(0, len(tenant.client_ids)))]
        item["params"] = {
            "requests": [
                {"client": client, "rate": int(rng.integers(1, 100))}
            ]
        }
    return item


def _adopt_fingerprints(
    tenants_hit: Sequence[_Tenant], replies: Sequence[Any]
) -> None:
    """Track each tenant's resident key from its latest reply."""
    for tenant, reply in zip(tenants_hit, replies):
        if isinstance(reply, Mapping):
            fingerprint = reply.get("fingerprint")
            if isinstance(fingerprint, str):
                tenant.fingerprint = fingerprint


def run_loadtest(
    target: Any,
    config: Optional[LoadgenConfig] = None,
    *,
    arrivals: Optional[np.ndarray] = None,
) -> LoadtestReport:
    """Drive ``target`` through one open-loop run; returns the report.

    ``target`` is anything :func:`~repro.serving.client.connect` accepts
    (an in-process server, an ``http://``/``tcp://`` URL, a stdio pair) or
    an existing :class:`~repro.serving.client.ServingClient`.

    The loop sleeps until each arrival's *scheduled* time, then ships
    every arrival that is already due -- one envelope each with
    ``batch=1``, coalesced into batch envelopes (cap ``config.batch``)
    otherwise.  Latency is reply time minus scheduled arrival time.

    ``arrivals`` replays an explicit schedule (e.g. one estimated from a
    real trace) instead of sampling one; see :func:`build_schedule`.
    """
    config = LoadgenConfig() if config is None else config
    client = target if isinstance(target, ServingClient) else connect(target)
    arrivals, picks, tenants = build_schedule(config, arrivals=arrivals)
    rng = np.random.default_rng(config.seed + 1)

    latencies: List[float] = []
    op_counts: Dict[str, int] = {}
    errors = 0
    served = 0
    envelopes = 0

    start = time.perf_counter()
    cursor = 0
    while cursor < arrivals.size:
        now = time.perf_counter() - start
        due_until = arrivals[cursor]
        if due_until > now:
            time.sleep(due_until - now)
            now = time.perf_counter() - start
        # Everything scheduled by `now` is due; coalesce up to the cap.
        stop = cursor
        while (
            stop < arrivals.size
            and arrivals[stop] <= now
            and stop - cursor < config.batch
        ):
            stop += 1
        stop = max(stop, cursor + 1)  # always ship at least the head arrival

        group_tenants = [tenants[picks[index]] for index in range(cursor, stop)]
        items = [_make_item(tenant, rng, config.ops) for tenant in group_tenants]
        for item in items:
            op_counts[item["op"]] = op_counts.get(item["op"], 0) + 1
        try:
            if config.batch == 1:
                replies: List[Any] = [client.request(items[0])]
            else:
                reply = client.request({"op": "batch", "requests": items})
                replies = (
                    reply.get("results", [])
                    if isinstance(reply, Mapping)
                    and reply.get("type") == "batch_result"
                    else [reply] * len(items)
                )
            envelopes += 1
        except (ServingError, OSError) as error:  # transport-level failure
            errors += len(items)
            served += len(items)
            completed = time.perf_counter() - start
            latencies.extend(completed - arrivals[i] for i in range(cursor, stop))
            cursor = stop
            continue
        completed = time.perf_counter() - start
        for offset, reply in enumerate(replies[: stop - cursor]):
            latencies.append(completed - arrivals[cursor + offset])
            served += 1
            if isinstance(reply, Mapping) and reply.get("type") == "error":
                errors += 1
        _adopt_fingerprints(group_tenants, replies)
        cursor = stop
    duration = time.perf_counter() - start

    sample = np.asarray(latencies, dtype=float)
    latency = (
        {
            "p50": float(np.percentile(sample, 50)),
            "p95": float(np.percentile(sample, 95)),
            "p99": float(np.percentile(sample, 99)),
            "max": float(sample.max()),
        }
        if sample.size
        else {}
    )
    return LoadtestReport(
        tenants=config.tenants,
        horizon=config.horizon,
        offered_rate=float(arrivals.size / config.horizon),
        batch=config.batch,
        scheduled=int(arrivals.size),
        served=served,
        errors=errors,
        duration=duration,
        requests_per_sec=float(served / duration) if duration > 0 else 0.0,
        envelopes=envelopes,
        latency=latency,
        op_counts=op_counts,
    )
