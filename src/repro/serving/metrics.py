"""Prometheus text exposition of a pool's :class:`~repro.serving.pool.PoolStats`.

``GET /metrics`` on the HTTP transport answers with
:func:`render_prometheus` applied to a fresh ``pool.stats()`` snapshot --
the *same* snapshot the ``stats`` op serialises, so a dashboard scraping
``/metrics`` and a client decoding the ``stats`` reply can never disagree.

The output follows the Prometheus text exposition format (version 0.0.4):
``# HELP`` / ``# TYPE`` comment pairs, one sample per line, counters
suffixed ``_total``, op-labelled request metrics::

    repro_requests_total{op="solve"} 42
    repro_request_seconds_total{op="solve"} 0.1278

No client library is involved -- the format is plain text and the counters
already live in :class:`~repro.serving.pool.PoolStats`; rendering is a
string walk.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from repro.serving.pool import PoolStats

__all__ = ["render_prometheus"]

#: ``(metric, type, help, attribute)`` for the pool-level gauges/counters.
_POOL_METRICS = (
    ("repro_pool_resident_sessions", "gauge", "Resident sessions in the pool", "resident"),
    ("repro_pool_capacity", "gauge", "Maximum resident sessions before LRU eviction", "capacity"),
    ("repro_pool_bytes_estimate", "gauge", "Estimated resident bytes across sessions", "bytes_estimate"),
    ("repro_pool_hits_total", "counter", "Checkouts answered by a resident session", "hits"),
    ("repro_pool_misses_total", "counter", "Checkouts that built a new session", "misses"),
    ("repro_pool_evictions_total", "counter", "Sessions evicted or displaced from the pool", "evictions"),
    ("repro_pool_restored_total", "counter", "Sessions restored warm from snapshots", "restored"),
    ("repro_session_epochs_total", "counter", "Epoch updates across all sessions (lifetime)", "epochs"),
    ("repro_solves_total", "counter", "Solve calls across all sessions (lifetime)", "solves"),
    ("repro_solve_cache_hits_total", "counter", "Solve calls answered from per-epoch caches", "solve_cache_hits"),
    ("repro_bounds_total", "counter", "Bound calls across all sessions (lifetime)", "bounds"),
    ("repro_bound_cache_hits_total", "counter", "Bound calls answered from per-epoch caches", "bound_cache_hits"),
)

#: ``(metric, help, key)`` for the op-labelled request counters.
_OP_METRICS = (
    ("repro_requests_total", "Envelopes served, by op", "count"),
    ("repro_request_errors_total", "Envelopes answered with an error envelope, by op", "errors"),
    ("repro_request_seconds_total", "Cumulative handling time, by op", "seconds_total"),
)


def _format_value(value: Any) -> str:
    """A Prometheus sample value: integers bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    return repr(number)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(stats: PoolStats) -> str:
    """Render ``stats`` as Prometheus text exposition (format 0.0.4).

    Every number is read straight off the :class:`PoolStats` payload; the
    serving tests assert the exposition against a simultaneously decoded
    ``stats`` reply.  Always ends with a newline, as the format requires.
    """
    lines: List[str] = []

    for name, kind, help_text, attribute in _POOL_METRICS:
        value = getattr(stats, attribute)
        if value is None:  # pragma: no cover - defensive
            continue
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {_format_value(value)}")
    if stats.max_bytes is not None:
        lines.append("# HELP repro_pool_max_bytes Configured resident byte budget")
        lines.append("# TYPE repro_pool_max_bytes gauge")
        lines.append(f"repro_pool_max_bytes {_format_value(stats.max_bytes)}")

    ops: Mapping[str, Mapping[str, Any]] = stats.ops or {}
    for name, help_text, key in _OP_METRICS:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        for op in sorted(ops):
            value = ops[op].get(key, 0)
            lines.append(f'{name}{{op="{_escape_label(op)}"}} {_format_value(value)}')
    lines.append("# HELP repro_request_seconds_max Slowest single envelope, by op")
    lines.append("# TYPE repro_request_seconds_max gauge")
    for op in sorted(ops):
        value = ops[op].get("seconds_max", 0.0)
        lines.append(
            f'repro_request_seconds_max{{op="{_escape_label(op)}"}} '
            f"{_format_value(value)}"
        )

    return "\n".join(lines) + "\n"
