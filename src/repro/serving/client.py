"""Client-side proxy for the serving protocol: ``connect()`` and friends.

The serving replies are the standard result-protocol payloads, so the
client can hand back *real* result objects --
:class:`~repro.session.SolveResult`, :class:`~repro.session.BoundResult`,
:class:`~repro.session.CompareResult`,
:class:`~repro.serving.pool.PoolStats` -- decoded through
:func:`repro.core.results.result_from_dict`.  A remote session therefore
reads exactly like a local :class:`~repro.session.PlacementSession`::

    client = connect("http://127.0.0.1:8485")       # or a Popen / server
    session = client.open(problem)                  # session-like proxy
    placed = session.solve()                        # -> SolveResult
    bound = session.bound()                         # -> BoundResult
    session.update(requests={"c1": 9.0})            # epoch step server-side
    print(client.stats().describe())                # -> PoolStats

Transports
----------

:func:`connect` accepts, and dispatches on, any of:

* an ``http(s)://`` URL -- requests go out as HTTP POST bodies
  (:class:`HttpTransport`, stdlib ``urllib`` only);
* a ``tcp://HOST:PORT`` URL -- newline-delimited JSON over one socket to a
  :class:`~repro.serving.loopserver.LoopServer` (:class:`TcpTransport`);
* a :class:`subprocess.Popen` of ``repro serve --stdio`` (or any
  ``(reader, writer)`` text-stream pair) -- newline-delimited JSON
  (:class:`StdioTransport`);
* an in-process :class:`~repro.serving.server.ReproServer` -- direct
  dispatch with JSON round-trip fidelity (:class:`LocalTransport`), the
  cheapest way to drive the full protocol in tests and notebooks.

After the first call the proxy addresses its resident session by
fingerprint only (no tree re-upload per request); if the server evicted
the session meanwhile, the proxy transparently re-sends the full problem
once and retries.  :meth:`ServingClient.batch` ships many envelopes in one
round trip (the server groups same-session items under one checkout).
"""

from __future__ import annotations

import json
import socket
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.exceptions import ReproError
from repro.core.problem import ReplicaPlacementProblem
from repro.core.results import result_from_dict
from repro.core.serialization import problem_to_dict

__all__ = [
    "ServingError",
    "HttpTransport",
    "TcpTransport",
    "StdioTransport",
    "LocalTransport",
    "ServingClient",
    "RemoteSession",
    "connect",
]


class ServingError(ReproError):
    """An error envelope received from a serving endpoint."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


# --------------------------------------------------------------------------- #
# transports
# --------------------------------------------------------------------------- #
class HttpTransport:
    """POST request envelopes to a ``repro serve --http`` endpoint."""

    def __init__(self, url: str, *, timeout: float = 60.0) -> None:
        self.url = url.rstrip("/") + "/"
        self.timeout = timeout

    def send(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.url,
            data=json.dumps(envelope).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))


class TcpTransport:
    """Newline-delimited JSON over one TCP connection.

    The wire peer is a :class:`~repro.serving.loopserver.LoopServer`
    (``repro serve --tcp HOST:PORT``); the connection is persistent, so a
    session's requests ride one socket instead of one HTTP exchange each.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # Request lines ship whole envelopes (a batch spans many segments);
        # without TCP_NODELAY, Nagle holds the final partial segment for the
        # peer's delayed ACK and every multi-segment request eats a ~40ms
        # stall.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(json.dumps(envelope))
        self._file.write("\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServingError("closed", "serving endpoint closed the connection")
        return json.loads(line)

    def close(self) -> None:
        self._file.close()
        self._sock.close()


class StdioTransport:
    """Newline-delimited JSON over a reader/writer text-stream pair.

    Pass a :class:`subprocess.Popen` handle (``stdin``/``stdout`` in text
    mode) or explicit streams.  One reply line is read per request sent, so
    the streams must not be shared with other writers.
    """

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    def for_process(cls, process) -> "StdioTransport":
        if process.stdin is None or process.stdout is None:
            raise ValueError(
                "serve process must be spawned with stdin=PIPE, stdout=PIPE"
            )
        return cls(process.stdout, process.stdin)

    def send(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(json.dumps(envelope))
        self._writer.write("\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ServingError("closed", "serving endpoint closed the stream")
        return json.loads(line)


class LocalTransport:
    """Drive an in-process :class:`~repro.serving.server.ReproServer`.

    Envelopes and replies pass through ``json.dumps``/``loads``, so the
    bytes on this transport are exactly the stdio transport's bytes --
    which is what lets tests assert protocol fidelity without pipes.
    """

    def __init__(self, server) -> None:
        self._server = server

    def send(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        return json.loads(self._server.handle_line(json.dumps(envelope)))


# --------------------------------------------------------------------------- #
# the client
# --------------------------------------------------------------------------- #
def _decode(reply: Mapping[str, Any]):
    """Turn a reply payload into a result object (or raise ServingError)."""
    if not isinstance(reply, Mapping):
        raise ServingError("protocol", f"reply is not an object: {reply!r}")
    tag = reply.get("type")
    if tag == "error":
        error = reply.get("error") or {}
        raise ServingError(
            str(error.get("code", "unknown")), str(error.get("message", ""))
        )
    if tag in ("update_ack", "flow_simulation"):
        return dict(reply)  # protocol-only payloads, no registered class
    return result_from_dict(dict(reply))


class ServingClient:
    """A connection to one serving endpoint (see :func:`connect`)."""

    def __init__(self, transport) -> None:
        self.transport = transport

    def request(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """Send a raw envelope; returns the raw reply dictionary."""
        return self.transport.send(envelope)

    def open(
        self,
        problem: Union[ReplicaPlacementProblem, Any],
        *,
        constraints=None,
        kind=None,
    ) -> "RemoteSession":
        """A session-like proxy for ``problem`` (coerced like the free API)."""
        from repro.session import as_problem

        return RemoteSession(
            self,
            as_problem(problem, constraints=constraints, kind=kind),
            constraints=constraints,
            kind=kind,
        )

    def batch(self, requests: Sequence[Dict[str, Any]]) -> List[Any]:
        """Ship many request envelopes in one round trip.

        Returns one entry per request, **order-matched**: a decoded result
        object on success, a :class:`ServingError` *instance* (not raised)
        where that item failed -- one bad item never masks its
        neighbours' results.  Only a failure of the batch envelope itself
        (e.g. too many items, a dead transport) raises.
        """
        reply = self.request({"op": "batch", "requests": list(requests)})
        if not isinstance(reply, Mapping) or reply.get("type") != "batch_result":
            _decode(reply)  # raises ServingError on an error envelope
            raise ServingError(
                "protocol", f"expected a batch_result reply, got {reply!r}"
            )
        results: List[Any] = []
        for item in reply.get("results", []):
            try:
                results.append(_decode(item))
            except ServingError as error:
                results.append(error)
        return results

    def stats(self):
        """The pool-wide :class:`~repro.serving.pool.PoolStats`."""
        return _decode(self.request({"op": "stats"}))


class RemoteSession:
    """Session-like proxy over one resident server-side session.

    Mirrors the query surface of :class:`~repro.session.PlacementSession`
    (``solve`` / ``bound`` / ``compare`` / ``update`` / ``simulate``) and
    returns the same result types, decoded from the wire.  The first
    request ships the full problem; subsequent requests address the
    resident session by fingerprint, falling back to a one-shot re-send
    when the server evicted it.
    """

    def __init__(
        self,
        client: ServingClient,
        problem: ReplicaPlacementProblem,
        *,
        constraints=None,
        kind=None,
    ) -> None:
        self._client = client
        self._problem = problem
        #: coercion overrides from open(), re-applied to every epoch
        #: instance exactly like PlacementSession.update does locally.
        self._constraints = constraints
        self._kind = kind
        self._fingerprint: Optional[str] = None

    @property
    def fingerprint(self) -> Optional[str]:
        """The resident session's key (``None`` before the first request)."""
        return self._fingerprint

    # ------------------------------------------------------------------ #
    def _call(self, op: str, params: Dict[str, Any]):
        envelope: Dict[str, Any] = {"op": op, "params": params}
        if self._fingerprint is not None:
            envelope["fingerprint"] = self._fingerprint
        else:
            envelope["problem"] = problem_to_dict(self._problem)
        try:
            reply = self._client.request(envelope)
            result = _decode(reply)
        except ServingError as error:
            if error.code != "unknown_fingerprint":
                raise
            # The server evicted our session: re-send the full problem.
            envelope.pop("fingerprint", None)
            envelope["problem"] = problem_to_dict(self._problem)
            reply = self._client.request(envelope)
            result = _decode(reply)
        fingerprint = reply.get("fingerprint")
        if isinstance(fingerprint, str):
            self._fingerprint = fingerprint
        return result

    # ------------------------------------------------------------------ #
    def solve(self, *, policy=None, algorithm: Optional[str] = None):
        """Remote :meth:`~repro.session.PlacementSession.solve`."""
        params: Dict[str, Any] = {}
        if policy is not None:
            params["policy"] = getattr(policy, "value", policy)
        if algorithm is not None:
            params["algorithm"] = algorithm
        return self._call("solve", params)

    def bound(
        self,
        *,
        policy=None,
        method: str = "mixed",
        time_limit: Optional[float] = None,
    ):
        """Remote :meth:`~repro.session.PlacementSession.bound`."""
        params: Dict[str, Any] = {"method": method}
        if policy is not None:
            params["policy"] = getattr(policy, "value", policy)
        if time_limit is not None:
            params["time_limit"] = time_limit
        return self._call("bound", params)

    def compare(
        self, *, policies=None, bounds: bool = False, bound_method: str = "mixed"
    ):
        """Remote :meth:`~repro.session.PlacementSession.compare`."""
        params: Dict[str, Any] = {"bounds": bounds, "bound_method": bound_method}
        if policies is not None:
            params["policies"] = [getattr(p, "value", p) for p in policies]
        return self._call("compare", params)

    def update(
        self,
        instance: Optional[ReplicaPlacementProblem] = None,
        *,
        requests: Optional[Mapping[Any, float]] = None,
        resolve: Union[bool, str] = "always",
        saturation_threshold: Optional[float] = None,
    ):
        """Remote :meth:`~repro.session.PlacementSession.update`.

        Keeps the local problem mirror in step (for eviction re-sends) and
        adopts the new fingerprint from the reply.
        """
        if (instance is None) == (requests is None):
            raise ValueError(
                "update() needs exactly one of an epoch instance or requests="
            )
        params: Dict[str, Any] = {"resolve": resolve}
        if saturation_threshold is not None:
            params["saturation_threshold"] = saturation_threshold
        if requests is not None:
            # Value-position encoding: JSON object keys would stringify
            # non-string client ids, and the server could no longer match
            # them against the tree.
            params["requests"] = [
                {"client": cid, "rate": float(rate)}
                for cid, rate in requests.items()
            ]
            mirrored = ReplicaPlacementProblem(
                tree=self._problem.tree.with_requests(requests),
                constraints=self._problem.constraints,
                kind=self._problem.kind,
                name=self._problem.name,
            )
        else:
            from repro.session import as_problem

            mirrored = as_problem(
                instance, constraints=self._constraints, kind=self._kind
            )
            params["problem"] = problem_to_dict(mirrored)
        result = self._call("update", params)
        self._problem = mirrored
        return result

    def simulate(
        self,
        *,
        policy=None,
        algorithm: Optional[str] = None,
        saturation_threshold: float = 0.999,
    ) -> Dict[str, Any]:
        """Remote steady-state replay; returns the flow payload dictionary."""
        params: Dict[str, Any] = {"saturation_threshold": saturation_threshold}
        if policy is not None:
            params["policy"] = getattr(policy, "value", policy)
        if algorithm is not None:
            params["algorithm"] = algorithm
        return self._call("simulate", params)


def connect(target: Any) -> ServingClient:
    """Open a :class:`ServingClient` for ``target`` (see module docstring).

    ``target`` may be an ``http(s)://`` URL, a ``tcp://HOST:PORT`` URL
    (loop-server socket), a :class:`subprocess.Popen`
    running ``repro serve --stdio``, a ``(reader, writer)`` stream pair, an
    in-process :class:`~repro.serving.server.ReproServer`, or an existing
    transport object (anything with a ``send(envelope)`` method).
    """
    from repro.serving.server import ReproServer

    if isinstance(target, str):
        if target.startswith("tcp://"):
            host, _, port = target[len("tcp://"):].rstrip("/").rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(
                    f"tcp targets must be tcp://HOST:PORT, got {target!r}"
                )
            return ServingClient(TcpTransport(host, int(port)))
        if not target.startswith(("http://", "https://")):
            raise ValueError(
                f"string targets must be http(s) or tcp URLs, got {target!r}"
            )
        return ServingClient(HttpTransport(target))
    if isinstance(target, ReproServer):
        return ServingClient(LocalTransport(target))
    if isinstance(target, tuple) and len(target) == 2:
        return ServingClient(StdioTransport(*target))
    if hasattr(target, "stdin") and hasattr(target, "stdout"):
        return ServingClient(StdioTransport.for_process(target))
    if hasattr(target, "send"):
        return ServingClient(target)
    raise TypeError(f"cannot connect to {target!r}")
