"""Routing the request streams of a solution through the tree.

Once a placement and an assignment are fixed, the behaviour of the
distribution tree at steady state is fully determined: every client's
requests travel up the tree to their server(s), loading each traversed link
and each serving replica.  :func:`simulate_solution` computes that steady
state and summarises it:

* per-server load and utilisation;
* per-link flow, bandwidth utilisation and the set of saturated links;
* per-client service latency (average over its requests when they are split
  among several servers under the Multiple policy);
* aggregate statistics (mean/maximum latency, total network traffic).

The examples use it to contrast the three access policies on the same tree:
Closest keeps latency low but needs more replicas; Multiple uses fewer
replicas but ships requests farther.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.tree import NodeId, TreeNetwork

__all__ = ["FlowSimulation", "simulate_solution"]

LinkKey = Tuple[NodeId, NodeId]


@dataclass
class FlowSimulation:
    """Steady-state view of a solution running on its tree."""

    server_load: Dict[NodeId, float]
    server_utilisation: Dict[NodeId, float]
    link_flow: Dict[LinkKey, float]
    link_utilisation: Dict[LinkKey, float]
    client_latency: Dict[NodeId, float]
    total_traffic: float
    mean_latency: float
    max_latency: float
    saturated_links: List[LinkKey] = field(default_factory=list)

    def hottest_server(self) -> Tuple[NodeId, float]:
        """The most utilised replica and its utilisation."""
        if not self.server_utilisation:
            return (None, 0.0)
        node = max(self.server_utilisation, key=lambda nid: self.server_utilisation[nid])
        return node, self.server_utilisation[node]

    def summary(self) -> str:
        """Short human-readable report used by the examples."""
        node, utilisation = self.hottest_server()
        return (
            f"{len(self.server_load)} active replicas, "
            f"mean latency {self.mean_latency:.2f}, max latency {self.max_latency:.2f}, "
            f"total traffic {self.total_traffic:g} request-hops, "
            f"hottest server {node!r} at {utilisation:.0%}"
        )


def simulate_solution(
    problem: ReplicaPlacementProblem,
    solution: Solution,
    *,
    saturation_threshold: float = 0.999,
) -> FlowSimulation:
    """Compute the steady-state flows induced by ``solution`` on the tree."""
    tree = problem.tree

    server_load = solution.assignment.server_loads()
    server_utilisation = {
        node_id: (load / problem.capacity(node_id) if problem.capacity(node_id) > 0 else math.inf)
        for node_id, load in server_load.items()
    }

    link_flow = solution.assignment.link_flows(tree)
    link_utilisation: Dict[LinkKey, float] = {}
    saturated: List[LinkKey] = []
    for link in tree.links():
        flow = link_flow.get(link.key, 0.0)
        if math.isfinite(link.bandwidth) and link.bandwidth > 0:
            ratio = flow / link.bandwidth
            link_utilisation[link.key] = ratio
            if ratio >= saturation_threshold:
                saturated.append(link.key)
        else:
            link_utilisation[link.key] = 0.0

    client_latency: Dict[NodeId, float] = {}
    total_latency_weighted = 0.0
    total_requests = 0.0
    max_latency = 0.0
    total_traffic = 0.0
    per_client_weighted: Dict[NodeId, float] = {}
    per_client_requests: Dict[NodeId, float] = {}
    for (client_id, server_id), amount in solution.assignment.items():
        latency = tree.latency(client_id, server_id)
        hops = tree.distance(client_id, server_id)
        per_client_weighted[client_id] = per_client_weighted.get(client_id, 0.0) + latency * amount
        per_client_requests[client_id] = per_client_requests.get(client_id, 0.0) + amount
        total_latency_weighted += latency * amount
        total_requests += amount
        total_traffic += hops * amount
        max_latency = max(max_latency, latency)
    for client_id, weighted in per_client_weighted.items():
        requests = per_client_requests[client_id]
        client_latency[client_id] = weighted / requests if requests > 0 else 0.0

    mean_latency = total_latency_weighted / total_requests if total_requests > 0 else 0.0
    return FlowSimulation(
        server_load=server_load,
        server_utilisation=server_utilisation,
        link_flow=link_flow,
        link_utilisation=link_utilisation,
        client_latency=client_latency,
        total_traffic=total_traffic,
        mean_latency=mean_latency,
        max_latency=max_latency,
        saturated_links=saturated,
    )
