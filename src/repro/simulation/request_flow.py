"""Routing the request streams of a solution through the tree.

Once a placement and an assignment are fixed, the behaviour of the
distribution tree at steady state is fully determined: every client's
requests travel up the tree to their server(s), loading each traversed link
and each serving replica.  :func:`simulate_solution` computes that steady
state and summarises it:

* per-server load and utilisation;
* per-link flow, bandwidth utilisation and the set of saturated links;
* per-client service latency (average over its requests when they are split
  among several servers under the Multiple policy);
* aggregate statistics (mean/maximum latency, total network traffic).

The examples use it to contrast the three access policies on the same tree:
Closest keeps latency low but needs more replicas; Multiple uses fewer
replicas but ships requests farther.

For dynamic workloads, :func:`simulate_sequence` replays a whole epoch
sequence (problems plus the solutions of
:func:`repro.api.solve_sequence`) and surfaces the *transient* behaviour a
single steady state cannot show: epochs where links saturate as demand
moves faster than the placement, utilisation spikes, and the windows where
no valid placement existed at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.tree import NodeId, TreeNetwork

__all__ = ["FlowSimulation", "SequenceFlowSimulation", "simulate_solution", "simulate_sequence"]

LinkKey = Tuple[NodeId, NodeId]


@dataclass
class FlowSimulation:
    """Steady-state view of a solution running on its tree."""

    server_load: Dict[NodeId, float]
    server_utilisation: Dict[NodeId, float]
    link_flow: Dict[LinkKey, float]
    link_utilisation: Dict[LinkKey, float]
    client_latency: Dict[NodeId, float]
    total_traffic: float
    mean_latency: float
    max_latency: float
    saturated_links: List[LinkKey] = field(default_factory=list)

    def hottest_server(self) -> Tuple[Optional[NodeId], float]:
        """The most utilised replica and its utilisation.

        ``(None, 0.0)`` when the solution assigns nothing (e.g. a tree whose
        clients all issue zero requests) -- callers never have to special-case
        empty assignments.
        """
        if not self.server_utilisation:
            return (None, 0.0)
        node = max(self.server_utilisation, key=lambda nid: self.server_utilisation[nid])
        return node, self.server_utilisation[node]

    def summary(self) -> str:
        """Short human-readable report used by the examples."""
        node, utilisation = self.hottest_server()
        if node is None:
            return (
                "0 active replicas, no assigned requests, "
                f"total traffic {self.total_traffic:g} request-hops"
            )
        return (
            f"{len(self.server_load)} active replicas, "
            f"mean latency {self.mean_latency:.2f}, max latency {self.max_latency:.2f}, "
            f"total traffic {self.total_traffic:g} request-hops, "
            f"hottest server {node!r} at {utilisation:.0%}"
        )

    def describe(self) -> str:
        """One-line summary (result-protocol spelling of :meth:`summary`)."""
        return self.summary()

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (the serving ``simulate`` op's reply).

        Per-element entries are lists of objects rather than JSON maps:
        node identifiers are arbitrary hashables, so they travel in value
        position (encoded like :mod:`repro.core.serialization` does for
        assignments), keeping the payload faithful for non-string ids.
        """
        from repro.core.results import encode_float

        saturated = set(self.saturated_links)
        return {
            "type": "flow_simulation",
            "summary": self.summary(),
            "total_traffic": encode_float(self.total_traffic),
            "mean_latency": encode_float(self.mean_latency),
            "max_latency": encode_float(self.max_latency),
            "servers": [
                {
                    "server": server,
                    "load": encode_float(load),
                    "utilisation": encode_float(self.server_utilisation[server]),
                }
                for server, load in sorted(
                    self.server_load.items(), key=lambda kv: repr(kv[0])
                )
            ],
            "links": [
                {
                    "child": child,
                    "parent": parent,
                    "flow": encode_float(self.link_flow.get((child, parent), 0.0)),
                    "utilisation": encode_float(utilisation),
                    "saturated": (child, parent) in saturated,
                }
                for (child, parent), utilisation in sorted(
                    self.link_utilisation.items(), key=lambda kv: repr(kv[0])
                )
            ],
            "clients": [
                {"client": client, "latency": encode_float(latency)}
                for client, latency in sorted(
                    self.client_latency.items(), key=lambda kv: repr(kv[0])
                )
            ],
        }


def simulate_solution(
    problem: ReplicaPlacementProblem,
    solution: Solution,
    *,
    saturation_threshold: float = 0.999,
) -> FlowSimulation:
    """Compute the steady-state flows induced by ``solution`` on the tree."""
    tree = problem.tree

    server_load = solution.assignment.server_loads()
    server_utilisation = {
        node_id: (load / problem.capacity(node_id) if problem.capacity(node_id) > 0 else math.inf)
        for node_id, load in server_load.items()
    }

    link_flow = solution.assignment.link_flows(tree)
    link_utilisation: Dict[LinkKey, float] = {}
    saturated: List[LinkKey] = []
    for link in tree.links():
        flow = link_flow.get(link.key, 0.0)
        if math.isfinite(link.bandwidth) and link.bandwidth > 0:
            ratio = flow / link.bandwidth
            link_utilisation[link.key] = ratio
            if ratio >= saturation_threshold:
                saturated.append(link.key)
        elif link.bandwidth == 0 and flow > 0:
            # A capacity-0 link carrying flow is infinitely (not 0%) loaded;
            # reporting 0.0 used to hide exactly the links most in trouble.
            link_utilisation[link.key] = math.inf
            saturated.append(link.key)
        else:
            link_utilisation[link.key] = 0.0

    client_latency: Dict[NodeId, float] = {}
    total_latency_weighted = 0.0
    total_requests = 0.0
    max_latency = 0.0
    total_traffic = 0.0
    per_client_weighted: Dict[NodeId, float] = {}
    per_client_requests: Dict[NodeId, float] = {}
    for (client_id, server_id), amount in solution.assignment.items():
        if amount <= 0:
            # Defensive: Assignment's constructor strips non-positive
            # amounts, but hand-mutated or deserialised assignments can
            # carry them; a zero split moves no traffic and must not feed
            # max_latency or the per-client averages.
            continue
        latency = tree.latency(client_id, server_id)
        hops = tree.distance(client_id, server_id)
        per_client_weighted[client_id] = per_client_weighted.get(client_id, 0.0) + latency * amount
        per_client_requests[client_id] = per_client_requests.get(client_id, 0.0) + amount
        total_latency_weighted += latency * amount
        total_requests += amount
        total_traffic += hops * amount
        max_latency = max(max_latency, latency)
    for client_id, weighted in per_client_weighted.items():
        requests = per_client_requests[client_id]
        client_latency[client_id] = weighted / requests if requests > 0 else 0.0

    mean_latency = total_latency_weighted / total_requests if total_requests > 0 else 0.0
    return FlowSimulation(
        server_load=server_load,
        server_utilisation=server_utilisation,
        link_flow=link_flow,
        link_utilisation=link_utilisation,
        client_latency=client_latency,
        total_traffic=total_traffic,
        mean_latency=mean_latency,
        max_latency=max_latency,
        saturated_links=saturated,
    )


# --------------------------------------------------------------------------- #
# time-stepped replay of a dynamic-workload sequence
# --------------------------------------------------------------------------- #
@dataclass
class SequenceFlowSimulation:
    """Epoch-by-epoch steady states of a replayed solution sequence.

    ``epochs[t]`` is the :class:`FlowSimulation` of epoch ``t`` (``None``
    when that epoch had no valid solution -- a service brown-out window).
    ``spans[t]``, when present, is the real ``(start, end)`` time window
    epoch ``t`` covers -- trace-driven replays carry the detected epoch
    boundaries here so the summary can weight epochs by wall-clock
    duration instead of treating every epoch as equally long.
    """

    epochs: List[Optional[FlowSimulation]]
    spans: Optional[List[Tuple[float, float]]] = None

    # ------------------------------------------------------------------ #
    def saturation_epochs(self) -> List[int]:
        """Epochs during which at least one link runs saturated."""
        return [
            t
            for t, sim in enumerate(self.epochs)
            if sim is not None and sim.saturated_links
        ]

    def unsolved_epochs(self) -> List[int]:
        """Epochs with no valid placement at all."""
        return [t for t, sim in enumerate(self.epochs) if sim is None]

    def transient_saturations(self) -> List[Tuple[int, LinkKey]]:
        """Links that saturate *transiently*: saturated at ``t`` but not ``t-1``.

        These are the epochs where demand moved faster than the placement --
        the signal an operator would alert on.
        """
        events: List[Tuple[int, LinkKey]] = []
        previous: frozenset = frozenset()
        for t, sim in enumerate(self.epochs):
            current = frozenset(sim.saturated_links) if sim is not None else frozenset()
            events.extend((t, key) for key in sorted(current - previous, key=repr))
            previous = current
        return events

    def peak_link_utilisation(self) -> List[float]:
        """Per-epoch maximum link utilisation (0.0 for empty/unsolved epochs)."""
        return [
            max(sim.link_utilisation.values(), default=0.0) if sim is not None else 0.0
            for sim in self.epochs
        ]

    def mean_latency_series(self) -> List[Optional[float]]:
        """Per-epoch mean service latency (``None`` for unsolved epochs)."""
        return [sim.mean_latency if sim is not None else None for sim in self.epochs]

    def epoch_durations(self) -> List[float]:
        """Per-epoch durations from ``spans`` (1.0 each when spans are absent)."""
        if self.spans is None:
            return [1.0] * len(self.epochs)
        return [end - start for start, end in self.spans]

    def time_weighted_mean_latency(self) -> Optional[float]:
        """Mean latency weighted by epoch duration (``None`` if all unsolved).

        With ``spans`` (trace-driven replays), a 3-hour steady epoch counts
        proportionally more than a 2-minute burst; without spans this
        degrades to the plain mean over solved epochs.
        """
        total = 0.0
        weight = 0.0
        for sim, duration in zip(self.epochs, self.epoch_durations()):
            if sim is not None and sim.mean_latency is not None:
                total += sim.mean_latency * duration
                weight += duration
        return total / weight if weight > 0 else None

    def summary(self) -> str:
        """Short report of the transient behaviour over the whole replay."""
        saturated = self.saturation_epochs()
        unsolved = self.unsolved_epochs()
        transients = self.transient_saturations()
        parts = [f"{len(self.epochs)} epochs replayed"]
        if self.spans is not None and self.spans:
            parts[0] += (
                f" over [{self.spans[0][0]:g}, {self.spans[-1][1]:g}]"
            )
        parts.append(
            f"{len(saturated)} with saturated links" if saturated else "no saturation"
        )
        if transients:
            parts.append(f"{len(transients)} transient saturation events")
        if unsolved:
            parts.append(f"{len(unsolved)} unsolved epochs {unsolved}")
        return ", ".join(parts)


def simulate_sequence(
    problems: Sequence[ReplicaPlacementProblem],
    solutions: Sequence[Optional[Solution]],
    *,
    saturation_threshold: float = 0.999,
    spans: Optional[Sequence[Tuple[float, float]]] = None,
) -> SequenceFlowSimulation:
    """Replay a solution sequence epoch by epoch.

    ``problems`` and ``solutions`` must be aligned (as produced by
    :func:`repro.api.solve_sequence`); ``None`` solutions are carried
    through as unsolved epochs rather than raising, so brown-out windows
    stay visible in the replay.

    ``spans`` optionally attaches the real ``(start, end)`` time window of
    each epoch (one pair per problem) -- trace-driven replays pass the
    detected epoch boundaries so duration-weighted aggregates are honest.
    """
    if len(problems) != len(solutions):
        raise ValueError(
            f"sequence mismatch: {len(problems)} problems vs "
            f"{len(solutions)} solutions"
        )
    span_list: Optional[List[Tuple[float, float]]] = None
    if spans is not None:
        span_list = [(float(start), float(end)) for start, end in spans]
        if len(span_list) != len(problems):
            raise ValueError(
                f"sequence mismatch: {len(problems)} problems vs "
                f"{len(span_list)} spans"
            )
        if any(end < start for start, end in span_list):
            raise ValueError("epoch spans must satisfy start <= end")
    epochs = [
        simulate_solution(problem, solution, saturation_threshold=saturation_threshold)
        if solution is not None
        else None
        for problem, solution in zip(problems, solutions)
    ]
    return SequenceFlowSimulation(epochs=epochs, spans=span_list)
