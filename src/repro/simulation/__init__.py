"""Deterministic request-flow simulation over a solved placement."""

from repro.simulation.request_flow import (
    FlowSimulation,
    simulate_solution,
)

__all__ = ["FlowSimulation", "simulate_solution"]
