"""Deterministic request-flow simulation over solved placements.

:func:`simulate_solution` computes the steady state of one solution;
:func:`simulate_sequence` replays a dynamic-workload solution sequence and
surfaces transient saturation (see :mod:`repro.workloads.dynamic` and
:func:`repro.api.solve_sequence`).
"""

from repro.simulation.request_flow import (
    FlowSimulation,
    SequenceFlowSimulation,
    simulate_solution,
    simulate_sequence,
)

__all__ = [
    "FlowSimulation",
    "SequenceFlowSimulation",
    "simulate_solution",
    "simulate_sequence",
]
