"""Placement algorithms: the optimal greedy, the eight heuristics, baselines.

Contents
--------

* :mod:`repro.algorithms.base` -- the :class:`PlacementHeuristic` interface,
  the shared :class:`repro.algorithms.common.RequestState` bookkeeping and
  the heuristic registry;
* :mod:`repro.algorithms.multiple_homogeneous` -- the paper's optimal
  polynomial algorithm for the Multiple policy on homogeneous platforms
  (Section 4.1, Theorem 1);
* :mod:`repro.algorithms.closest` -- CTDA, CTDLF and CBU (Section 6.1);
* :mod:`repro.algorithms.upwards` -- UTD and UBCF (Section 6.2);
* :mod:`repro.algorithms.multiple` -- MTD, MBU and MG (Section 6.3);
* :mod:`repro.algorithms.mixed_best` -- the MixedBest combiner;
* :mod:`repro.algorithms.exhaustive` -- brute-force optimal placements for
  small instances, used to validate everything else.
"""

from repro.algorithms.base import (
    PlacementHeuristic,
    register_heuristic,
    get_heuristic,
    available_heuristics,
    heuristics_for_policy,
    solve_with,
)
from repro.algorithms.multiple_homogeneous import MultipleHomogeneousOptimal
from repro.algorithms.closest import (
    ClosestTopDownAll,
    ClosestTopDownLargestFirst,
    ClosestBottomUp,
)
from repro.algorithms.upwards import UpwardsTopDown, UpwardsBigClientFirst
from repro.algorithms.multiple import MultipleTopDown, MultipleBottomUp, MultipleGreedy
from repro.algorithms.mixed_best import MixedBest
from repro.algorithms.exhaustive import ExhaustiveSearch, optimal_cost

__all__ = [
    "PlacementHeuristic",
    "register_heuristic",
    "get_heuristic",
    "available_heuristics",
    "heuristics_for_policy",
    "solve_with",
    "MultipleHomogeneousOptimal",
    "ClosestTopDownAll",
    "ClosestTopDownLargestFirst",
    "ClosestBottomUp",
    "UpwardsTopDown",
    "UpwardsBigClientFirst",
    "MultipleTopDown",
    "MultipleBottomUp",
    "MultipleGreedy",
    "MixedBest",
    "ExhaustiveSearch",
    "optimal_cost",
]
