"""Placement algorithms: the optimal greedy, the eight heuristics, baselines.

Contents
--------

* :mod:`repro.algorithms.base` -- the :class:`PlacementHeuristic` interface,
  the shared :class:`repro.algorithms.common.RequestState` bookkeeping and
  the heuristic registry;
* :mod:`repro.algorithms.common` -- the request-state engine factory
  (:func:`~repro.algorithms.common.make_state` /
  :func:`~repro.algorithms.common.use_engine`): every heuristic runs either
  on the paper-faithful dict engine or on the indexed
  :class:`repro.algorithms.fast_state.FastRequestState` (the default; set
  ``REPRO_ENGINE=dict`` to switch back), the two being pinned to each other
  by the cross-validation suite;
* :mod:`repro.algorithms.multiple_homogeneous` -- the paper's optimal
  polynomial algorithm for the Multiple policy on homogeneous platforms
  (Section 4.1, Theorem 1);
* :mod:`repro.algorithms.closest` -- CTDA, CTDLF and CBU (Section 6.1);
* :mod:`repro.algorithms.upwards` -- UTD and UBCF (Section 6.2);
* :mod:`repro.algorithms.multiple` -- MTD, MBU and MG (Section 6.3);
* :mod:`repro.algorithms.mixed_best` -- the MixedBest combiner;
* :mod:`repro.algorithms.incremental` -- the epoch-by-epoch
  :class:`IncrementalResolver` for dynamic workloads (reuse / patch /
  re-solve strategies with migration accounting);
* :mod:`repro.algorithms.exhaustive` -- brute-force optimal placements for
  small instances, used to validate everything else.
"""

from repro.algorithms.base import (
    PlacementHeuristic,
    register_heuristic,
    get_heuristic,
    available_heuristics,
    heuristics_for_policy,
    solve_with,
)
from repro.algorithms.common import (
    RequestState,
    make_state,
    available_engines,
    get_default_engine,
    set_default_engine,
    use_engine,
)
from repro.algorithms.fast_state import FastRequestState
from repro.algorithms.multiple_homogeneous import MultipleHomogeneousOptimal
from repro.algorithms.closest import (
    ClosestTopDownAll,
    ClosestTopDownLargestFirst,
    ClosestBottomUp,
)
from repro.algorithms.upwards import UpwardsTopDown, UpwardsBigClientFirst
from repro.algorithms.multiple import MultipleTopDown, MultipleBottomUp, MultipleGreedy
from repro.algorithms.mixed_best import MixedBest
from repro.algorithms.exhaustive import ExhaustiveSearch, optimal_cost
from repro.algorithms.incremental import (
    IncrementalResolver,
    ProblemDelta,
    ResolveStats,
    diff_problems,
    migration_stats,
)

__all__ = [
    "PlacementHeuristic",
    "register_heuristic",
    "get_heuristic",
    "available_heuristics",
    "heuristics_for_policy",
    "solve_with",
    "RequestState",
    "FastRequestState",
    "make_state",
    "available_engines",
    "get_default_engine",
    "set_default_engine",
    "use_engine",
    "MultipleHomogeneousOptimal",
    "ClosestTopDownAll",
    "ClosestTopDownLargestFirst",
    "ClosestBottomUp",
    "UpwardsTopDown",
    "UpwardsBigClientFirst",
    "MultipleTopDown",
    "MultipleBottomUp",
    "MultipleGreedy",
    "MixedBest",
    "ExhaustiveSearch",
    "optimal_cost",
    "IncrementalResolver",
    "ProblemDelta",
    "ResolveStats",
    "diff_problems",
    "migration_stats",
]
