"""Exhaustive optimal placement search for small instances.

The heterogeneous Replica Cost problem is NP-complete for all three access
policies (paper Theorem 3), and Upwards is NP-complete even on homogeneous
platforms (Theorem 2).  For *small* trees, however, the optimum can be found
by enumerating candidate replica sets in order of increasing storage cost
and returning the first feasible one.  This module provides that baseline,
which the tests use to

* certify the optimality of the three-pass Multiple/homogeneous algorithm on
  random instances,
* measure the optimality gap of the eight polynomial heuristics,
* cross-check the ILP solutions of :mod:`repro.lp`.

Feasibility of a candidate placement is decided per policy by
:mod:`repro.core.feasibility` (exact for Closest and Multiple; exact
backtracking for Upwards within the configured client limit).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Tuple

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.core.exceptions import InfeasibleError
from repro.core.feasibility import assignment_for_placement
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["ExhaustiveSearch", "optimal_cost", "optimal_solution"]

#: Default limit on the number of internal nodes (2^n subsets are explored).
DEFAULT_NODE_LIMIT = 16


def _candidate_placements(problem: ReplicaPlacementProblem) -> Iterable[Tuple[float, Tuple]]:
    """Yield ``(cost, placement)`` pairs sorted by increasing cost."""
    node_ids = list(problem.tree.node_ids)
    costs = {nid: problem.storage_cost(nid) for nid in node_ids}
    candidates = []
    for size in range(len(node_ids) + 1):
        for subset in itertools.combinations(node_ids, size):
            candidates.append((sum(costs[nid] for nid in subset), subset))
    candidates.sort(key=lambda item: (item[0], len(item[1])))
    return candidates


def optimal_solution(
    problem: ReplicaPlacementProblem,
    policy: Policy,
    *,
    node_limit: int = DEFAULT_NODE_LIMIT,
    upwards_exact: bool = True,
) -> Solution:
    """Cheapest feasible placement found by exhaustive enumeration.

    Raises
    ------
    ValueError
        If the tree has more than ``node_limit`` internal nodes.
    InfeasibleError
        If no subset of nodes admits a valid assignment under ``policy``.
    """
    policy = Policy.parse(policy)
    node_count = len(problem.tree.node_ids)
    if node_count > node_limit:
        raise ValueError(
            f"exhaustive search limited to {node_limit} internal nodes "
            f"(instance has {node_count}); raise node_limit explicitly if you "
            "really want to wait"
        )
    for _cost, subset in _candidate_placements(problem):
        try:
            solution = assignment_for_placement(
                problem,
                subset,
                policy,
                **({"exact": True} if (policy is Policy.UPWARDS and upwards_exact) else {}),
            )
        except InfeasibleError:
            continue
        return Solution(
            placement=solution.placement,
            assignment=solution.assignment,
            policy=policy,
            algorithm=f"exhaustive-{policy.value}",
        )
    raise InfeasibleError(
        f"no feasible placement exists under the {policy.value} policy", policy=policy
    )


def optimal_cost(
    problem: ReplicaPlacementProblem,
    policy: Policy,
    *,
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> float:
    """Cost of the optimal placement (see :func:`optimal_solution`)."""
    solution = optimal_solution(problem, policy, node_limit=node_limit)
    return solution.cost(problem)


@register_heuristic
class ExhaustiveSearch(PlacementHeuristic):
    """Heuristic-interface wrapper around :func:`optimal_solution`.

    The policy is chosen at construction time (default: Multiple), so the
    experiment harness can include the exact optimum as a baseline on small
    campaigns.
    """

    name = "Exhaustive"
    policy = Policy.MULTIPLE

    def __init__(self, policy: Policy = Policy.MULTIPLE, node_limit: int = DEFAULT_NODE_LIMIT):
        self.policy = Policy.parse(policy)
        self.node_limit = node_limit

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        return optimal_solution(problem, self.policy, node_limit=self.node_limit)
