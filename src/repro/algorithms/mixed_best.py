"""MixedBest (MB) -- paper Section 7.3.

A solution computed by a Closest or Upwards heuristic is always a valid
solution for the Multiple policy (policy dominance), so the results of all
eight heuristics can be mixed into a single Multiple-policy meta-heuristic
that keeps, for every instance, the cheapest valid answer.  Because
MultipleGreedy never fails on a feasible instance, MixedBest never fails
either.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.algorithms.base import (
    PlacementHeuristic,
    get_heuristic,
    register_heuristic,
)
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["MixedBest", "DEFAULT_COMPONENTS"]

#: The eight heuristics of the paper, in the order they appear in Section 6.
DEFAULT_COMPONENTS: Sequence[str] = (
    "CTDA",
    "CTDLF",
    "CBU",
    "UTD",
    "UBCF",
    "MTD",
    "MBU",
    "MG",
)


@register_heuristic
class MixedBest(PlacementHeuristic):
    """Run several heuristics and keep the cheapest valid solution.

    Parameters
    ----------
    components:
        Names (or instances) of the heuristics to combine; defaults to the
        paper's eight heuristics.
    """

    name = "MixedBest"
    policy = Policy.MULTIPLE

    def __init__(self, components: Optional[Iterable] = None):
        selected = components if components is not None else DEFAULT_COMPONENTS
        self.components: List[PlacementHeuristic] = [get_heuristic(c) for c in selected]

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        best: Optional[Solution] = None
        best_cost = float("inf")
        best_name = None
        attempts = {}
        for heuristic in self.components:
            candidate = heuristic.try_solve(problem)
            if candidate is None:
                attempts[heuristic.name] = None
                continue
            cost = candidate.cost(problem)
            attempts[heuristic.name] = cost
            if cost < best_cost:
                best, best_cost, best_name = candidate, cost, heuristic.name
        if best is None:
            return None
        # Every component solution is valid under the (most permissive)
        # Multiple policy, so the combined result is reported as Multiple.
        return Solution(
            placement=best.placement,
            assignment=best.assignment,
            policy=Policy.MULTIPLE,
            algorithm=self.name,
            metadata={"selected": best_name, "component_costs": attempts},
        )
