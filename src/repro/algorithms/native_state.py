"""Compiled request-affectation state (the "native" engine).

:class:`NativeRequestState` is the third engine behind
:func:`repro.algorithms.common.make_state`.  It keeps the exact public API
of the dict and fast engines but stores the mutable state in flat
``array('d')`` vectors laid out by :class:`~repro.core.index.TreeIndex` and
runs every hot loop -- span scans, decorate-sort drains, prefix-sum covers,
whole first/second heuristic passes, the UBCF best-fit walk -- inside the C
kernels of :mod:`repro.algorithms._native` (compiled on first use with the
system C compiler).

The ``remaining`` / ``inreq`` / ``residual`` mappings every heuristic and
test reads are :class:`VecMap` views over those vectors: id-keyed like the
dict engine's mappings, but reading and writing the positional arrays the
kernels mutate, so there is no dual bookkeeping to keep in sync.

Equivalence contract
--------------------

Same as the fast engine's, one level down: every kernel repeats the fast
implementation's float operations in the same order with the same ``1e-9``
tolerances (drains select on ``(sign * remaining, repr-rank)`` exactly like
the decorate-sort, covers batch ``inreq`` with the same prefix sums past the
same 32-client cutoff), so ``native`` is bit-for-bit identical to ``fast``
and ``dict`` across the engine-matrix suite.  Paths the kernels cannot
represent -- non-monotone :class:`ConstraintSet` subclasses, spans addressed
by client id -- delegate to the inherited fast implementations, which run
unmodified over the same arrays.

When the kernels cannot be built (no compiler, read-only filesystem,
``REPRO_NATIVE_DISABLE=1``), :func:`create_native_state` falls back to
:class:`~repro.algorithms.fast_state.FastRequestState` with a one-line
stderr note, so ``engine="native"`` is always a valid selection.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, Iterator, Optional, Tuple

from repro.algorithms import _native
from repro.algorithms.common import _TOL
from repro.algorithms.fast_state import _BULK_COVER_MIN, FastRequestState
from repro.core.index import TreeIndex
from repro.core.problem import ReplicaPlacementProblem
from repro.core.tree import NodeId

__all__ = [
    "NativeRequestState",
    "VecMap",
    "create_native_state",
    "native_kernels_available",
]


def native_kernels_available() -> bool:
    """``True`` when the compiled kernels loaded (or compiled) successfully."""
    return _native.load_kernels() is not None


_fallback_noted = False


def create_native_state(problem: ReplicaPlacementProblem):
    """Factory behind ``engine="native"``: kernels if possible, fast if not."""
    global _fallback_noted
    if native_kernels_available():
        return NativeRequestState(problem)
    if not _fallback_noted:
        reason = _native.kernel_status().get("error") or "unavailable"
        print(
            f"repro: native kernels unavailable ({reason}); "
            "falling back to the fast engine",
            file=sys.stderr,
        )
        _fallback_noted = True
    return FastRequestState(problem)


class VecMap:
    """Id-keyed dict-shaped view over one positional ``array('d')`` vector.

    Heuristics and tests read the engine state as mappings
    (``state.residual[node_id]``); the kernels mutate positional arrays.
    This view serves both without synchronisation: lookups translate ids to
    layout positions through the index's (shared, immutable) position dict
    and read the live array; writes go straight through.  Unknown ids raise
    ``KeyError`` exactly like the dict engines' mappings.
    """

    __slots__ = ("_vec", "_pos", "_order")

    def __init__(self, vec: array, pos: Dict[NodeId, int], order: Tuple[NodeId, ...]):
        self._vec = vec
        self._pos = pos
        self._order = order

    def __getitem__(self, key: NodeId) -> float:
        return self._vec[self._pos[key]]

    def __setitem__(self, key: NodeId, value: float) -> None:
        self._vec[self._pos[key]] = value

    def __contains__(self, key: NodeId) -> bool:
        return key in self._pos

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def get(self, key: NodeId, default=None):
        position = self._pos.get(key)
        return default if position is None else self._vec[position]

    def keys(self) -> Tuple[NodeId, ...]:
        return self._order

    def values(self):
        return list(self._vec)

    def items(self):
        return zip(self._order, self._vec)

    def copy(self) -> Dict[NodeId, float]:
        return dict(zip(self._order, self._vec))

    def __eq__(self, other) -> bool:
        if isinstance(other, VecMap):
            return self._order == other._order and self._vec == other._vec
        if isinstance(other, dict):
            return self.copy() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"VecMap({self.copy()!r})"


class _NativeArrays:
    """Structural buffers of one topology, shaped for the C kernels.

    Everything here derives from the index's immutable layout (spans,
    depths, parent pointers, capacities, ``repr`` tie-break keys), so one
    instance is built per topology, cached in the index's ``_np_cache`` and
    shared verbatim by epoch forks -- exactly like the numpy mirrors the LP
    assembly keeps there.
    """

    __slots__ = (
        "css",
        "cse",
        "nse",
        "nd",
        "cd",
        "cap",
        "caf",
        "cao",
        "naf",
        "nao",
        "rrk",
        "_post_order",
    )

    def __init__(self, index: TreeIndex, kernels):
        self.css = array("q", index.client_span_start)
        self.cse = array("q", index.client_span_end)
        self.nse = array("q", index.node_span_end)
        self.nd = array("q", index.node_depth)
        self.cd = array("q", index.client_depth)
        self.cap = array(
            "d", map(index.residual_template.__getitem__, index.node_order)
        )
        # Bottom-up ancestor chains as dense node positions, flattened in
        # CSR form (client c's chain is caf[cao[c] : cao[c + 1]]).
        client_parent = array("q", index.client_parent)
        node_parent = array("q", index.node_parent)
        self.caf = array("q", bytes(8 * sum(index.client_depth)))
        self.cao = array("q", bytes(8 * (index.n_clients + 1)))
        kernels.build_chains(client_parent, node_parent, self.caf, self.cao)
        self.naf = array("q", bytes(8 * sum(index.node_depth)))
        self.nao = array("q", bytes(8 * (index.n_nodes + 1)))
        kernels.build_chains(node_parent, node_parent, self.naf, self.nao)
        # Integer rank of every client under the (repr(id), position)
        # lexicographic order: comparing ranks in C reproduces the decorated
        # tuple sort's tie-breaking exactly (stable sort on repr alone keeps
        # equal reprs in position order, which is the trailing tuple key).
        reprs = index.client_repr
        by_repr = sorted(range(index.n_clients), key=reprs.__getitem__)
        rrk = array("q", bytes(8 * index.n_clients))
        for rank, position in enumerate(by_repr):
            rrk[position] = rank
        self.rrk = rrk
        self._post_order = None

    def post_order(self, index: TreeIndex) -> array:
        """Node positions in the tree's post-order (children before parent)."""
        if self._post_order is None:
            node_pos = index.node_pos
            self._post_order = array(
                "q", map(node_pos.__getitem__, index.tree.post_order_nodes())
            )
        return self._post_order


def _native_arrays(index: TreeIndex, kernels) -> _NativeArrays:
    arrays = index._np_cache.get("native_arrays")
    if arrays is None:
        arrays = _NativeArrays(index, kernels)
        index._np_cache["native_arrays"] = arrays
    return arrays


def _qos_threshold_array(index: TreeIndex, problem, kernels, arrays) -> array:
    """Per-client QoS depth thresholds as an ``array('q')``, kernel-computed.

    Stored in the index's threshold memo next to the list the pure-Python
    path computes (under a ``("native", mode)`` key), and mirrored into the
    plain-mode slot as a list so the fast engine and the eligible-servers
    cache never recompute it.  The kernel repeats the comparisons of
    :meth:`TreeIndex.qos_depth_thresholds` operation for operation.
    """
    from repro.core.constraints import QoSMode

    constraints = problem.constraints
    mode = constraints.qos_mode
    cache = index.qos_threshold_cache
    key = ("native", mode)
    thresholds = cache.get(key)
    if thresholds is not None:
        return thresholds
    base = cache.get(mode)
    if base is not None:
        thresholds = array("q", base)
    else:
        clients_map = index.tree._clients
        bounds = array("d", (clients_map[cid].qos for cid in index.client_order))
        thresholds = array("q", bytes(8 * index.n_clients))
        if mode is QoSMode.DISTANCE:
            kernels.thresholds_distance(
                arrays.cd, bounds, arrays.caf, arrays.cao, arrays.nd, thresholds
            )
        else:
            uplink = index.uplink_comm
            client_uplink = array("d", (uplink[cid] for cid in index.client_order))
            node_uplink = array(
                "d", (uplink.get(nid, 0.0) for nid in index.node_order)
            )
            kernels.thresholds_latency(
                arrays.cd,
                bounds,
                client_uplink,
                node_uplink,
                arrays.caf,
                arrays.cao,
                arrays.nd,
                thresholds,
            )
        cache[mode] = list(thresholds)
    cache[key] = thresholds
    return thresholds


class NativeRequestState(FastRequestState):
    """``RequestState`` whose hot methods run in compiled kernels.

    Subclasses the fast engine so every path the kernels do not cover
    (per-pair QoS predicates of constraint subclasses, spans addressed by
    client id) inherits the fast implementation, which operates on the same
    arrays through the :class:`VecMap` views.
    """

    def __init__(self, problem: ReplicaPlacementProblem):
        kernels = _native.load_kernels()
        if kernels is None:  # create_native_state guards; direct users may not
            raise RuntimeError(
                "native kernels unavailable; use make_state(problem, 'native') "
                "for the graceful fallback"
            )
        self._k = kernels
        self.problem = problem
        self.tree = problem.tree
        index = TreeIndex.for_tree(self.tree)
        self._index = index
        arrays = _native_arrays(index, kernels)
        self._arrays = arrays
        remaining_vec = array("d", index.client_requests)
        inreq_vec = array(
            "d", map(index.inreq_template.__getitem__, index.node_order)
        )
        residual_vec = array(
            "d", map(index.residual_template.__getitem__, index.node_order)
        )
        self._remaining_vec = remaining_vec
        self._inreq_vec = inreq_vec
        self._residual_vec = residual_vec
        self.remaining = VecMap(remaining_vec, index.client_pos, index.client_order)
        self.inreq = VecMap(inreq_vec, index.node_pos, index.node_order)
        self.residual = VecMap(residual_vec, index.node_pos, index.node_order)
        #: positional replica flags, kept in sync with ``replicas`` by
        #: :meth:`place` and mutated directly by the sweep kernels
        self._replica_vec = bytearray(index.n_nodes)
        self.replicas = set()
        self.amounts: Dict[Tuple[NodeId, NodeId], float] = {}

        from repro.core.constraints import ConstraintSet
        from repro.core.index import supports_qos_thresholds

        constraints = problem.constraints
        self._qos_thresholds = None
        self._qos_check = None
        if constraints.has_qos:
            if type(constraints) is ConstraintSet:
                self._qos_thresholds = _qos_threshold_array(
                    index, problem, kernels, arrays
                )
            elif supports_qos_thresholds(constraints):
                # Monotone subclass (e.g. a classed metric set): the
                # thresholds come from the generic Python walk -- the
                # values, not their computation, are what the kernels
                # consume -- mirrored into the index's native cache so
                # sibling states and epoch forks share one array.
                key = ("native", constraints)
                cached = index.qos_threshold_cache.get(key)
                if cached is None:
                    cached = array("q", index.qos_depth_thresholds(problem))
                    index.qos_threshold_cache[key] = cached
                self._qos_thresholds = cached
            else:
                self._qos_check = problem.qos_satisfied

    # ------------------------------------------------------------------ #
    # elementary operations
    # ------------------------------------------------------------------ #
    def place(self, node_id: NodeId) -> None:
        self.replicas.add(node_id)
        position = self._index.node_pos.get(node_id)
        if position is not None:
            self._replica_vec[position] = 1

    def assign(self, client_id: NodeId, server_id: NodeId, amount: float) -> None:
        if amount <= _TOL:
            return
        index = self._index
        ci = index.client_pos[client_id]
        si = index.node_pos[server_id]  # KeyError on clients, like the seed
        arrays = self._arrays
        self._k.assign(
            self._remaining_vec,
            self._inreq_vec,
            self._residual_vec,
            arrays.caf,
            arrays.cao,
            ci,
            si,
            amount,
        )
        key = (client_id, server_id)
        self.amounts[key] = self.amounts.get(key, 0.0) + amount

    # ------------------------------------------------------------------ #
    # client queries
    # ------------------------------------------------------------------ #
    def pending_clients(self, node_id: NodeId):
        si, start, end = self._span(node_id)
        if si >= 0 and self._inreq_vec[si] <= _TOL:
            return []
        return self._k.pending_ids(
            self._remaining_vec, start, end, None, 0, self._index.client_order
        )

    def eligible_pending_clients(self, server_id: NodeId):
        if self._qos_check is not None:
            return super().eligible_pending_clients(server_id)
        si, start, end = self._span(server_id)
        if si >= 0 and self._inreq_vec[si] <= _TOL:
            return []
        thresholds = self._qos_thresholds
        if thresholds is not None and si >= 0:
            return self._k.pending_ids(
                self._remaining_vec,
                start,
                end,
                thresholds,
                self._arrays.nd[si],
                self._index.client_order,
            )
        return self._k.pending_ids(
            self._remaining_vec, start, end, None, 0, self._index.client_order
        )

    def eligible_inreq(self, server_id: NodeId) -> float:
        thresholds = self._qos_thresholds
        if thresholds is None and self._qos_check is None:
            si = self._index.node_pos.get(server_id)
            if si is not None:
                return self._inreq_vec[si]
            return super().eligible_inreq(server_id)
        if self._qos_check is not None:
            return super().eligible_inreq(server_id)
        si, start, end = self._span(server_id)
        if si < 0:
            return super().eligible_inreq(server_id)
        if self._inreq_vec[si] <= _TOL:
            return 0.0
        return self._k.sum_eligible(
            self._remaining_vec, start, end, thresholds, self._arrays.nd[si]
        )

    def total_pending(self) -> float:
        return self._k.total(self._remaining_vec)

    # ------------------------------------------------------------------ #
    # the paper's delete-requests procedures
    # ------------------------------------------------------------------ #
    def drain(
        self,
        server_id: NodeId,
        budget: float,
        *,
        largest_first: bool = True,
        split_last: bool = False,
    ) -> float:
        if self._qos_check is not None:
            return super().drain(
                server_id, budget, largest_first=largest_first, split_last=split_last
            )
        if budget <= _TOL:
            return 0.0
        si, start, end = self._span(server_id)
        if si < 0:  # spans addressed by client id keep the inherited quirks
            return super().drain(
                server_id, budget, largest_first=largest_first, split_last=split_last
            )
        if self._inreq_vec[si] <= _TOL:
            return 0.0
        arrays = self._arrays
        thresholds = self._qos_thresholds
        drained, taken = self._k.drain(
            self._remaining_vec,
            self._inreq_vec,
            self._residual_vec,
            arrays.caf,
            arrays.cao,
            arrays.rrk,
            thresholds,
            si,
            start,
            end,
            arrays.nd[si] if thresholds is not None else 0,
            float(budget),
            1 if largest_first else 0,
            1 if split_last else 0,
        )
        if taken:
            self._record_amounts(server_id, taken)
        return drained

    def cover(self, server_id: NodeId) -> float:
        if self._qos_check is not None:
            return super().cover(server_id)
        si, _start, _end = self._span(server_id)
        if si < 0:
            return super().cover(server_id)
        if self._inreq_vec[si] <= _TOL:
            return 0.0
        arrays = self._arrays
        thresholds = self._qos_thresholds
        covered, taken = self._k.cover(
            self._remaining_vec,
            self._inreq_vec,
            self._residual_vec,
            arrays.caf,
            arrays.cao,
            arrays.css,
            arrays.cse,
            arrays.nse,
            arrays.naf,
            arrays.nao,
            thresholds,
            si,
            arrays.nd[si] if thresholds is not None else 0,
            _BULK_COVER_MIN,
        )
        if taken:
            self._record_amounts(server_id, taken)
        return covered

    def _record_amounts(self, server_id: NodeId, taken) -> None:
        """Fold a kernel's ``(position, amount)`` list into ``amounts``."""
        order = self._index.client_order
        amounts = self.amounts
        for position, amount in taken:
            key = (order[position], server_id)
            amounts[key] = amounts.get(key, 0.0) + amount

    # ------------------------------------------------------------------ #
    # whole-pass sweeps (heuristic inner loops in C)
    # ------------------------------------------------------------------ #
    def first_pass_sweep(
        self, *, order: str = "pre", largest_first: bool = True, split_last: bool = False
    ) -> None:
        if self._qos_check is not None:
            super().first_pass_sweep(
                order=order, largest_first=largest_first, split_last=split_last
            )
            return
        arrays = self._arrays
        order_arr = None if order == "pre" else arrays.post_order(self._index)
        placed, assigns = self._k.sweep_saturated(
            self._remaining_vec,
            self._inreq_vec,
            self._residual_vec,
            self._replica_vec,
            arrays.cap,
            arrays.css,
            arrays.cse,
            arrays.caf,
            arrays.cao,
            arrays.rrk,
            self._qos_thresholds,
            arrays.nd,
            order_arr,
            1 if largest_first else 0,
            1 if split_last else 0,
        )
        self._absorb_sweep(placed, assigns)

    def second_pass_sweep(
        self, *, largest_first: bool = True, split_last: bool = False
    ) -> None:
        if self._qos_check is not None:
            super().second_pass_sweep(
                largest_first=largest_first, split_last=split_last
            )
            return
        arrays = self._arrays
        placed, assigns = self._k.sweep_second(
            self._remaining_vec,
            self._inreq_vec,
            self._residual_vec,
            self._replica_vec,
            arrays.css,
            arrays.cse,
            arrays.nse,
            arrays.caf,
            arrays.cao,
            arrays.rrk,
            self._qos_thresholds,
            arrays.nd,
            1 if largest_first else 0,
            1 if split_last else 0,
        )
        self._absorb_sweep(placed, assigns)

    def _absorb_sweep(self, placed, assigns) -> None:
        """Fold a sweep kernel's placements and assignments into the state."""
        node_order = self._index.node_order
        self.replicas.update(node_order[position] for position in placed)
        if assigns:
            client_order = self._index.client_order
            amounts = self.amounts
            for si, position, amount in assigns:
                key = (client_order[position], node_order[si])
                amounts[key] = amounts.get(key, 0.0) + amount

    # ------------------------------------------------------------------ #
    # per-element heuristic steps
    # ------------------------------------------------------------------ #
    def best_fit_server(self, client_id: NodeId, requests: float) -> Optional[NodeId]:
        if self._qos_check is not None:
            return super().best_fit_server(client_id, requests)
        index = self._index
        ci = index.client_pos[client_id]
        thresholds = self._qos_thresholds
        threshold = thresholds[ci] if thresholds is not None else -1
        arrays = self._arrays
        position = self._k.best_fit(
            self._residual_vec,
            arrays.nd,
            arrays.caf,
            arrays.cao,
            ci,
            threshold,
            float(requests),
        )
        return None if position < 0 else index.node_order[position]

    def can_cover(self, node_id: NodeId) -> bool:
        if self._qos_check is not None:
            return super().can_cover(node_id)
        index = self._index
        si = index.node_pos[node_id]
        pending = self._inreq_vec[si]
        if pending <= _TOL:
            return False
        arrays = self._arrays
        if arrays.cap[si] + _TOL < pending:
            return False
        thresholds = self._qos_thresholds
        if thresholds is not None:
            return self._k.all_within_qos(
                self._remaining_vec,
                arrays.css[si],
                arrays.cse[si],
                thresholds,
                arrays.nd[si],
            )
        return True
