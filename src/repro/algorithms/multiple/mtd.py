"""Multiple Top Down (MTD) -- paper Section 6.3, Algorithm 10.

MTD follows the same two-pass top-down scheme as UTD
(:class:`repro.algorithms.upwards.UpwardsTopDown`), with one significant
difference: since the Multiple policy allows the requests of a client to be
split among several servers, the delete procedure may affect only *part* of
a client's requests to the current server once no whole client fits the
remaining capacity.  Exhausted first-pass servers are therefore always
completely filled.

Note on the paper's pseudo-code: Algorithm 10 decrements the ancestors'
``inreq`` by the *updated* ``r_i`` after a partial deletion; the intended
semantics (also used in the optimality discussion and in MBU) is to decrement
by the amount actually affected to the server, which is what this
implementation does.
"""

from __future__ import annotations

from repro.algorithms.base import register_heuristic
from repro.algorithms.upwards.utd import UpwardsTopDown
from repro.core.policies import Policy

__all__ = ["MultipleTopDown"]


@register_heuristic
class MultipleTopDown(UpwardsTopDown):
    """UTD scheme with client splitting enabled (Multiple policy)."""

    name = "MTD"
    policy = Policy.MULTIPLE
    split_last = True
    largest_first = True
