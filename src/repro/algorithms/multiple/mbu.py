"""Multiple Bottom Up (MBU) -- paper Section 6.3, Algorithms 11-12.

The first pass traverses the tree bottom-up (as CBU does) and places a
replica on every node *exhausted* by the requests still pending in its
subtree (``inreq_s >= W_s``).  The server is filled by affecting clients in
**non-decreasing** request order -- the paper's intuition being that deleting
many small clients is preferable to deleting a few demanding ones -- and the
last client considered may be split.

If requests remain after the first pass, a second top-down pass (identical
to MTD's) adds non-exhausted replicas on the highest free nodes that still
see pending requests.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import RequestState, make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["MultipleBottomUp"]

_TOL = 1e-9


@register_heuristic
class MultipleBottomUp(PlacementHeuristic):
    """Bottom-up exhausted-node pass, then a top-down completion pass."""

    name = "MBU"
    policy = Policy.MULTIPLE

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)
        tree = problem.tree

        # First pass: bottom-up, saturate every exhausted node with small
        # clients first (splitting allowed).
        for node_id in tree.post_order_nodes():
            capacity = problem.capacity(node_id)
            if state.inreq[node_id] >= capacity - _TOL and state.inreq[node_id] > _TOL:
                state.place(node_id)
                state.drain(node_id, capacity, largest_first=False, split_last=True)

        # Second pass: top-down completion on the remaining requests.
        if not state.all_requests_affected():
            self._second_pass(state, tree, tree.root)

        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name)

    def _second_pass(self, state: RequestState, tree, node_id) -> None:
        """Add non-exhausted replicas top-down (Algorithm 12)."""
        if not state.is_replica(node_id) and state.inreq[node_id] > _TOL:
            state.place(node_id)
            state.drain(
                node_id,
                state.inreq[node_id],
                largest_first=False,
                split_last=True,
            )
            return
        for child in tree.child_nodes(node_id):
            if state.inreq[child] > _TOL:
                self._second_pass(state, tree, child)
