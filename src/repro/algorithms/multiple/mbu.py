"""Multiple Bottom Up (MBU) -- paper Section 6.3, Algorithms 11-12.

The first pass traverses the tree bottom-up (as CBU does) and places a
replica on every node *exhausted* by the requests still pending in its
subtree (``inreq_s >= W_s``).  The server is filled by affecting clients in
**non-decreasing** request order -- the paper's intuition being that deleting
many small clients is preferable to deleting a few demanding ones -- and the
last client considered may be split.

If requests remain after the first pass, a second top-down pass (identical
to MTD's) adds non-exhausted replicas on the highest free nodes that still
see pending requests.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["MultipleBottomUp"]


@register_heuristic
class MultipleBottomUp(PlacementHeuristic):
    """Bottom-up exhausted-node pass, then a top-down completion pass.

    Both passes are engine methods (:meth:`RequestState.first_pass_sweep`
    with ``order="post"`` and :meth:`second_pass_sweep`), so the native
    engine runs each as a single compiled kernel call.
    """

    name = "MBU"
    policy = Policy.MULTIPLE

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)

        # First pass: bottom-up, saturate every exhausted node with small
        # clients first (splitting allowed).
        state.first_pass_sweep(order="post", largest_first=False, split_last=True)

        # Second pass: top-down completion on the remaining requests.
        if not state.all_requests_affected():
            state.second_pass_sweep(largest_first=False, split_last=True)

        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name)
