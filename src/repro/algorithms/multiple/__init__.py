"""Heuristics for the *Multiple* access policy (paper Section 6.3).

* :class:`MultipleTopDown` (MTD) -- the top-down two-pass scheme of UTD with
  a delete procedure allowed to split the last client (Algorithm 10);
* :class:`MultipleBottomUp` (MBU) -- a bottom-up first pass placing replicas
  on exhausted nodes and draining *small* clients first, followed by the
  same second pass as MTD (Algorithms 11-12);
* :class:`MultipleGreedy` (MG) -- a bottom-up saturating affectation in the
  spirit of Pass 3 of the optimal algorithm; it always finds a solution when
  one exists, at the price of a potentially high cost on heterogeneous
  platforms.
"""

from repro.algorithms.multiple.mtd import MultipleTopDown
from repro.algorithms.multiple.mbu import MultipleBottomUp
from repro.algorithms.multiple.mg import MultipleGreedy

__all__ = ["MultipleTopDown", "MultipleBottomUp", "MultipleGreedy"]
