"""Multiple Greedy (MG) -- paper Section 6.3.

A bottom-up saturating affectation in the spirit of Pass 3 of the optimal
homogeneous algorithm: internal nodes are processed children-first; each
node serves as many still-pending requests of its subtree as its capacity
allows (splitting clients freely) and becomes a replica whenever it serves
at least one request.

Serving requests as low as possible never hurts feasibility (whatever a node
can serve, each of its ancestors could also serve), so MG finds a solution
whenever the instance admits one under the Multiple policy -- the property
the paper relies on for the MixedBest combiner.  Its cost can however be far
from optimal on heterogeneous platforms, since cheap low nodes are greedily
used regardless of the cost structure.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["MultipleGreedy"]

_TOL = 1e-9


@register_heuristic
class MultipleGreedy(PlacementHeuristic):
    """Bottom-up saturating greedy; complete for the Multiple policy."""

    name = "MG"
    policy = Policy.MULTIPLE

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)
        tree = problem.tree

        for node_id in tree.post_order_nodes():
            budget = problem.capacity(node_id)
            if budget <= _TOL:
                continue
            clients = state.eligible_pending_clients(node_id)
            if not clients:
                continue
            # Serve the most constrained clients first: those with the fewest
            # eligible ancestors above this node (ties broken deterministically).
            if problem.constraints.has_qos:
                clients.sort(
                    key=lambda cid: (
                        sum(
                            1
                            for anc in problem.eligible_servers(cid)
                            if tree.depth(anc) < tree.depth(node_id)
                        ),
                        repr(cid),
                    )
                )
            else:
                clients.sort(key=lambda cid: (-state.remaining[cid], repr(cid)))

            served_any = False
            for client_id in clients:
                if budget <= _TOL:
                    break
                take = min(budget, state.remaining[client_id])
                if take <= _TOL:
                    continue
                state.assign(client_id, node_id, take)
                budget -= take
                served_any = True
            if served_any:
                state.place(node_id)

        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name)
