"""Indexed request-affectation state (the "fast" engine).

:class:`FastRequestState` is a drop-in replacement for
:class:`repro.algorithms.common.RequestState` built on top of
:class:`repro.core.index.TreeIndex`.  It keeps the exact same public API --
``remaining`` / ``inreq`` / ``residual`` are plain id-keyed dicts exactly
like the seed's, and ``assign`` / ``drain`` / ``cover`` /
``pending_clients`` / ``eligible_*`` behave identically -- so all eight
paper heuristics run unchanged, but the hot paths run on the tree's
interned layout:

* pending-client enumeration walks the contiguous subtree client span with
  plain list indexing (no per-id tree queries), and short-circuits in O(1)
  when the span's ``inreq`` shows nothing is pending;
* QoS eligibility collapses to a single per-client *depth threshold*
  (the QoS metrics are monotone along the client-to-root path), one integer
  comparison instead of a metric evaluation per (client, server) pair;
  thresholds are memoised per tree;
* ``drain`` orders its candidates by precomputed ``repr`` tie-break keys
  via decorate-sort-undecorate (no key lambda, no ``repr()`` calls);
* large ``cover`` calls batch the ``inreq`` update of the server's whole
  subtree with one prefix sum over the served span.

Equivalence contract
--------------------

On integral workloads (the paper's request model, and everything the
generators produce) the fast engine is **bit-for-bit identical** to the
dict engine: the cross-validation suite ``tests/test_fast_state_equivalence``
pins placements, assignments and costs of every heuristic to the seed
behaviour.  On non-integral workloads the batched updates may differ from
the sequential dict updates in the last ulp (different float summation
order).
"""

from __future__ import annotations

from heapq import heapify, heappop
from itertools import accumulate
from typing import Dict, List, Tuple

from repro.algorithms.common import RequestState, _TOL
from repro.core.index import TreeIndex
from repro.core.problem import ReplicaPlacementProblem
from repro.core.tree import NodeId

__all__ = ["FastRequestState"]

#: Above this many served clients a ``cover`` switches from per-client
#: ancestor walks to the prefix-sum bulk update of the server's subtree.
_BULK_COVER_MIN = 32


class FastRequestState(RequestState):
    """``RequestState`` with span-indexed bookkeeping over a :class:`TreeIndex`.

    The public mappings (``remaining`` / ``inreq`` / ``residual``) are real
    dicts -- heuristics read them at native dict speed -- while a parallel
    positional vector of the remaining requests backs the span scans.
    """

    def __init__(self, problem: ReplicaPlacementProblem):
        self.problem = problem
        self.tree = problem.tree
        index = TreeIndex.for_tree(self.tree)
        self._index = index
        #: id-keyed mutable state, same shape as the dict engine's
        self.remaining: Dict[NodeId, float] = index.remaining_template.copy()
        self.inreq: Dict[NodeId, float] = index.inreq_template.copy()
        self.residual: Dict[NodeId, float] = index.residual_template.copy()
        #: positional mirror of ``remaining`` in client layout order
        self._remaining_vec: List[float] = list(index.client_requests)
        self.replicas = set()
        self.amounts: Dict[Tuple[NodeId, NodeId], float] = {}
        #: QoS filtering, one of three modes: no QoS at all (both None),
        #: the built-in metrics as per-client depth thresholds (memoised on
        #: the index), or per-pair predicate filtering for constraint
        #: subclasses whose metric the thresholds cannot represent (e.g. a
        #: non-monotone override) -- the latter matches the dict engine
        #: call for call.
        from repro.core.index import supports_qos_thresholds

        constraints = problem.constraints
        self._qos_thresholds = None
        self._qos_check = None
        if constraints.has_qos:
            if supports_qos_thresholds(constraints):
                self._qos_thresholds = index.qos_depth_thresholds(problem)
            else:
                self._qos_check = problem.qos_satisfied

    # ------------------------------------------------------------------ #
    # elementary operations
    # ------------------------------------------------------------------ #
    def assign(self, client_id: NodeId, server_id: NodeId, amount: float) -> None:
        if amount <= _TOL:
            return
        index = self._index
        ci = index.client_pos[client_id]
        new_remaining = self.remaining[client_id] - amount
        self.remaining[client_id] = new_remaining
        self._remaining_vec[ci] = new_remaining
        self.residual[server_id] -= amount
        key = (client_id, server_id)
        self.amounts[key] = self.amounts.get(key, 0.0) + amount
        inreq = self.inreq
        for ancestor in index.client_ancestors[ci]:
            inreq[ancestor] -= amount

    # ------------------------------------------------------------------ #
    # client queries
    # ------------------------------------------------------------------ #
    def _span(self, element_id: NodeId) -> Tuple[int, int, int]:
        """``(node_index, start, end)`` client span of ``subtree(element_id)``.

        ``node_index`` is -1 when the element is itself a client (its span is
        the singleton holding the client, mirroring the dict engine, which
        accepts clients wherever ``tree.subtree_clients`` does).
        """
        index = self._index
        node_index = index.node_pos.get(element_id)
        if node_index is not None:
            return node_index, index.client_span_start[node_index], index.client_span_end[node_index]
        ci = index.client_index(element_id)  # raises on unknown ids
        return -1, ci, ci + 1

    def _pending_positions(self, element_id: NodeId, *, eligible: bool) -> Tuple[int, List[int]]:
        """``(node_index, layout positions)`` of the (eligible) pending clients.

        NOTE: the 3-branch span filter below (depth thresholds / per-pair
        predicate / unfiltered) is deliberately repeated inline in
        :meth:`pending_clients`, :meth:`eligible_pending_clients` and
        :meth:`drain` rather than delegated: these are the engine's hottest
        loops and a shared helper costs a second pass plus a call per query.
        Change eligibility semantics in all four places together.
        """
        node_index, start, end = self._span(element_id)
        if node_index >= 0 and self.inreq[element_id] <= _TOL:
            # inreq is the exact pending total of the span: nothing to scan.
            return node_index, []
        remaining = self._remaining_vec
        if eligible and self._qos_thresholds is not None and node_index >= 0:
            depth = self._index.node_depth[node_index]
            thresholds = self._qos_thresholds
            positions = [
                p
                for p in range(start, end)
                if remaining[p] > _TOL and thresholds[p] <= depth
            ]
        elif eligible and self._qos_check is not None:
            check = self._qos_check
            order = self._index.client_order
            positions = [
                p
                for p in range(start, end)
                if remaining[p] > _TOL and check(order[p], element_id)
            ]
        else:
            positions = [p for p in range(start, end) if remaining[p] > _TOL]
        return node_index, positions

    def pending_clients(self, node_id: NodeId) -> List[NodeId]:
        node_index, start, end = self._span(node_id)
        if node_index >= 0 and self.inreq[node_id] <= _TOL:
            return []
        remaining = self._remaining_vec
        order = self._index.client_order
        return [order[p] for p in range(start, end) if remaining[p] > _TOL]

    def eligible_pending_clients(self, server_id: NodeId) -> List[NodeId]:
        node_index, start, end = self._span(server_id)
        if node_index >= 0 and self.inreq[server_id] <= _TOL:
            return []
        remaining = self._remaining_vec
        order = self._index.client_order
        if self._qos_thresholds is not None and node_index >= 0:
            depth = self._index.node_depth[node_index]
            thresholds = self._qos_thresholds
            return [
                order[p]
                for p in range(start, end)
                if remaining[p] > _TOL and thresholds[p] <= depth
            ]
        if self._qos_check is not None:
            check = self._qos_check
            return [
                order[p]
                for p in range(start, end)
                if remaining[p] > _TOL and check(order[p], server_id)
            ]
        return [order[p] for p in range(start, end) if remaining[p] > _TOL]

    def eligible_inreq(self, server_id: NodeId) -> float:
        if (
            self._qos_thresholds is None
            and self._qos_check is None
            and server_id in self.inreq
        ):
            return self.inreq[server_id]
        _, positions = self._pending_positions(server_id, eligible=True)
        remaining = self._remaining_vec
        return sum(remaining[p] for p in positions)

    def total_pending(self) -> float:
        return sum(self._remaining_vec)

    # ------------------------------------------------------------------ #
    # the paper's delete-requests procedures
    # ------------------------------------------------------------------ #
    def drain(
        self,
        server_id: NodeId,
        budget: float,
        *,
        largest_first: bool = True,
        split_last: bool = False,
    ) -> float:
        if budget <= _TOL:
            return 0.0
        index = self._index
        si, start, end = self._span(server_id)
        if si >= 0 and self.inreq[server_id] <= _TOL:
            return 0.0
        remaining = self._remaining_vec
        reprs = index.client_repr
        # Decorate-sort-undecorate: tuple comparison replaces the dict
        # engine's key lambda; the trailing position keeps ties (equal
        # amount, equal repr) in span order exactly like a stable key sort.
        sign = -1.0 if largest_first else 1.0
        if self._qos_thresholds is not None and si >= 0:
            depth = index.node_depth[si]
            thresholds = self._qos_thresholds
            decorated = [
                (sign * v, reprs[p], p)
                for p in range(start, end)
                if (v := remaining[p]) > _TOL and thresholds[p] <= depth
            ]
        elif self._qos_check is not None:
            check = self._qos_check
            order = index.client_order
            decorated = [
                (sign * v, reprs[p], p)
                for p in range(start, end)
                if (v := remaining[p]) > _TOL and check(order[p], server_id)
            ]
        else:
            decorated = [
                (sign * v, reprs[p], p)
                for p in range(start, end)
                if (v := remaining[p]) > _TOL
            ]
        if not decorated:
            return 0.0
        # The consumption loop often stops after a few clients (first-pass
        # drains are capacity-bounded), so large candidate sets are consumed
        # lazily from a heap instead of fully sorted; heap pops yield the
        # exact sorted order (decorations are unique), so behaviour is
        # unchanged.
        use_heap = len(decorated) > 64
        if use_heap:
            heapify(decorated)
            pop = heappop
        elif len(decorated) > 1:
            decorated.sort()

        budget = float(budget)
        drained = 0.0
        taken: List[Tuple[int, float]] = []
        position = 0
        while True:
            if use_heap:
                if not decorated:
                    break
                entry = pop(decorated)
            else:
                if position == len(decorated):
                    break
                entry = decorated[position]
                position += 1
            p = entry[2]
            pending = remaining[p]
            if pending <= budget + _TOL:
                taken.append((p, pending))
                budget -= pending
                drained += pending
                if budget <= _TOL:
                    break
            elif split_last:
                taken.append((p, budget))
                drained += budget
                budget = 0.0
                break
            # Whole-client mode: a client larger than the remaining budget is
            # simply skipped (the paper tries the next, smaller, client).
        if taken:
            self._serve(server_id, si, taken)
        return drained

    def cover(self, server_id: NodeId) -> float:
        si, positions = self._pending_positions(server_id, eligible=True)
        if not positions:
            return 0.0
        remaining = self._remaining_vec
        if si >= 0 and len(positions) >= _BULK_COVER_MIN:
            return self._serve_bulk(server_id, si, positions)
        return self._serve(server_id, si, [(p, remaining[p]) for p in positions])

    # ------------------------------------------------------------------ #
    # shared affectation plumbing
    # ------------------------------------------------------------------ #
    def _serve(self, server_id: NodeId, si: int, taken: List[Tuple[int, float]]) -> float:
        """One :meth:`assign` per served client, with interned bookkeeping."""
        index = self._index
        order = index.client_order
        ancestors = index.client_ancestors
        amounts_map = self.amounts
        remaining_map = self.remaining
        remaining_vec = self._remaining_vec
        inreq = self.inreq
        total = 0.0
        for p, amount in taken:
            client_id = order[p]
            key = (client_id, server_id)
            amounts_map[key] = amounts_map.get(key, 0.0) + amount
            new_remaining = remaining_vec[p] - amount
            remaining_vec[p] = new_remaining
            remaining_map[client_id] = new_remaining
            for ancestor in ancestors[p]:
                inreq[ancestor] -= amount
            total += amount
        self.residual[server_id] -= total  # KeyError on clients, like the seed
        return total

    def _serve_bulk(self, server_id: NodeId, si: int, positions: List[int]) -> float:
        """Serve many clients of ``subtree(server_id)`` with one prefix sum.

        Equivalent to one :meth:`assign` per client: every node of the
        server's subtree sees its ``inreq`` drop by the amount served inside
        its own span, and the server's ancestors by the total.
        """
        index = self._index
        start = index.client_span_start[si]
        end = index.client_span_end[si]
        order = index.client_order
        amounts_map = self.amounts
        remaining_map = self.remaining
        remaining_vec = self._remaining_vec

        served = [0.0] * (end - start)
        total = 0.0
        for p in positions:
            amount = remaining_vec[p]
            client_id = order[p]
            key = (client_id, server_id)
            amounts_map[key] = amounts_map.get(key, 0.0) + amount
            remaining_vec[p] = 0.0
            remaining_map[client_id] = 0.0
            served[p - start] = amount
            total += amount
        self.residual[server_id] -= total

        prefix = list(accumulate(served, initial=0.0))
        span_starts = index.client_span_start
        span_ends = index.client_span_end
        node_order = index.node_order
        inreq = self.inreq
        for node_index in range(si, index.node_span_end[si]):
            delta = prefix[span_ends[node_index] - start] - prefix[span_starts[node_index] - start]
            if delta:
                inreq[node_order[node_index]] -= delta
        for ancestor in index.node_ancestors[si]:
            inreq[ancestor] -= total
        return total
