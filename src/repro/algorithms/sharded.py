"""Sharded solving: per-subtree solves reconciled at the cut.

The pipeline mirrors the distributed part-merge idiom the ROADMAP names:

1. **Partition** the problem at a small cut of high-level nodes
   (:func:`repro.core.partition.partition_problem`) into shard sub-problems
   plus a residual top region, each indexed through
   :meth:`TreeIndex.sliced` -- the whole-tree dense index is never built.
2. **Solve regions independently** through the normal portfolio, either
   sequentially or fanned over :func:`repro.api.chunked_pool_map`.  A shard
   whose clients fit its own capacity yields a sub-solution that is already
   globally valid: shard servers are ancestors only of shard clients,
   capacities are disjoint and no flow crosses the cut link.
3. **Reconcile contended shards at the cut.**  A shard whose local solve is
   infeasible must push requests above its cut node.  Under the Multiple
   policy (no bandwidth caps) this is an IPFP-style proportional-fitting
   pass: client rates are scaled down to the shard capacity (the "column"
   the cut node can absorb), the reduced shard re-solves locally, and the
   peeled remainders re-home as boundary clients of the **quotient tree**
   -- the residual region with one synthetic client per overflow, attached
   at the cut node's parent over a copy of the cut link, carrying the
   client's *boundary QoS budget* (global bound minus the metric already
   spent reaching the cut).  Under Upwards, whole clients overflow (the
   single-server rule forbids splitting); under Closest or with bandwidth
   enforcement, the contended shard merges back into the residual region
   instead (a shard replica between an overflowed client and its top server
   would steal the "closest" role, and overflow traffic would invalidate
   locally-validated link flows).
4. **Stitch** the per-region solutions into one global
   :class:`~repro.core.solution.Solution` and check it with
   :func:`validate_solution`; any reconciliation dead-end falls back to
   merging regions, and ultimately to the classic whole-tree solve, so a
   sharded solve is never *less* capable than the whole-tree path.

The one-shard plan short-circuits to :func:`portfolio_solve` untouched:
the whole-tree path is literally the single-shard special case.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.algorithms.portfolio import portfolio_solve
from repro.core.exceptions import InfeasibleError
from repro.core.index import TreeIndex
from repro.core.partition import Shard, ShardPlan, ShardSpec, partition_problem
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Assignment, Placement, Solution
from repro.core.tree import Client, Link, NodeId, TreeNetwork
from repro.core.validation import validate_solution

__all__ = ["solve_sharded", "solve_regions", "stitch_solutions"]

#: positive lower bound for synthetic boundary-client QoS (Client rejects 0).
_MIN_QOS = 1e-9


def _empty_solution(policy: Policy) -> Solution:
    """The solution of a region with no clients (or no requests)."""
    return Solution(
        placement=Placement(()),
        assignment=Assignment({}),
        policy=policy,
        algorithm="empty",
    )


def _solve_region(
    problem: ReplicaPlacementProblem,
    policy: Policy,
    algorithm: Optional[str],
) -> Optional[Solution]:
    """Portfolio-solve one region; ``None`` signals local infeasibility."""
    if not problem.tree.client_ids or problem.tree.total_requests() <= 0:
        return _empty_solution(policy)
    try:
        return portfolio_solve(problem, policy=policy, algorithm=algorithm)
    except InfeasibleError:
        return None


def _solve_region_chunk(problems, policy, algorithm):
    """Worker-side chunk: solve each region, mapping infeasible to None."""
    return [_solve_region(problem, policy, algorithm) for problem in problems]


def solve_regions(
    problems: Sequence[ReplicaPlacementProblem],
    *,
    policy: Policy,
    algorithm: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[Optional[Solution]]:
    """Solve independent region problems, optionally over a process pool."""
    if workers is not None and workers >= 2 and len(problems) >= 2:
        from repro.api import chunked_pool_map

        def chunk(problems_chunk):
            return _solve_region_chunk(problems_chunk, policy, algorithm)

        return list(chunked_pool_map(chunk, list(problems), workers))
    return _solve_region_chunk(problems, policy, algorithm)


def stitch_solutions(
    solutions: Sequence[Solution],
    *,
    policy: Policy,
    algorithm: str = "sharded",
    metadata: Optional[Dict[str, object]] = None,
    consume: bool = False,
) -> Solution:
    """Union per-region solutions into one global solution.

    Regions cover disjoint client and server sets, so placements union and
    assignment maps merge without key collisions.  With ``consume=True``
    (and a mutable ``solutions`` list) each region solution is dropped from
    the list as it merges, so only one copy of the global assignment is
    ever held -- the one-shot :func:`solve_sharded` path uses this to keep
    its peak memory under the whole-tree solve's.
    """
    placement = Placement(())
    amounts: Dict[Tuple[NodeId, NodeId], float] = {}
    if consume and isinstance(solutions, list):
        while solutions:
            solution = solutions.pop()
            placement = placement | solution.placement
            for pair, value in solution.assignment.items():
                amounts[pair] = amounts.get(pair, 0.0) + value
    else:
        for solution in solutions:
            placement = placement | solution.placement
            for pair, value in solution.assignment.items():
                amounts[pair] = amounts.get(pair, 0.0) + value
    return Solution(
        placement=placement,
        assignment=Assignment(amounts),
        policy=policy,
        algorithm=algorithm,
        metadata=metadata or {},
    )


# --------------------------------------------------------------------------- #
# cut reconciliation
# --------------------------------------------------------------------------- #
def _overflow_selection(
    shard: Shard, *, whole_clients: bool
) -> Optional[Dict[NodeId, float]]:
    """How much of each client's rate must re-home above the cut.

    Clients with the largest boundary QoS budget go first -- they can
    travel farthest into the residual region.  Returns ``None`` when the
    shard cannot shed enough demand through positive-budget clients.
    ``whole_clients`` forbids partial peels (the Upwards single-server
    rule).
    """
    excess = shard.demand - shard.capacity
    if excess <= 0:
        # Locally infeasible despite spare aggregate capacity: a QoS or
        # packing dead-end that rate scaling cannot name precisely -- let
        # the merged-rest fallback handle it.
        return None
    tree = shard.problem.tree
    ranked = sorted(
        (cid for cid in shard.clients if tree.client(cid).requests > 0),
        key=lambda cid: (-shard.boundary_budget(cid), -tree.client(cid).requests, repr(cid)),
    )
    moved: Dict[NodeId, float] = {}
    remaining = excess
    for cid in ranked:
        if remaining <= 0:
            break
        if shard.boundary_budget(cid) <= 0:
            break  # nothing below can leave the shard either
        rate = tree.client(cid).requests
        take = rate if whole_clients else min(rate, remaining)
        moved[cid] = take
        remaining -= take
    if remaining > 0:
        return None
    return moved


def _reduced_shard_problem(
    shard: Shard, moved: Dict[NodeId, float]
) -> ReplicaPlacementProblem:
    """The shard problem with overflowed rates peeled off (dropping
    fully-peeled clients so Upwards sees them wholly re-homed)."""
    tree = shard.problem.tree
    keep_clients = []
    drop = set()
    for cid in tree.client_ids:
        client = tree.client(cid)
        taken = moved.get(cid, 0.0)
        if taken >= client.requests and taken > 0:
            drop.add(cid)
            continue
        if taken > 0:
            client = Client(
                id=client.id,
                requests=client.requests - taken,
                qos=client.qos,
                metadata=client.metadata,
            )
        keep_clients.append(client)
    nodes = [tree.node(nid) for nid in tree.node_ids]
    links = [link for link in tree.links() if link.child not in drop]
    reduced_tree = TreeNetwork(nodes, keep_clients, links)
    return ReplicaPlacementProblem(
        tree=reduced_tree,
        constraints=shard.problem.constraints,
        kind=shard.problem.kind,
        name=f"{shard.problem.name}[reduced]",
    )


def _quotient_problem(
    plan: ShardPlan, overflow: Dict[int, Dict[NodeId, float]]
) -> ReplicaPlacementProblem:
    """The residual region plus one boundary client per overflowed client.

    A boundary client re-attaches at its cut node's *parent* over a copy of
    the cut link, with QoS equal to its boundary budget: for both built-in
    metrics, "feasible in the quotient" is then arithmetically identical to
    "feasible in the global tree" (the copied link contributes the hop /
    comm time the real route would spend crossing the cut).
    """
    source = plan.problem.tree
    residual_tree = plan.residual.tree
    nodes = [residual_tree.node(nid) for nid in residual_tree.node_ids]
    clients = [residual_tree.client(cid) for cid in residual_tree.client_ids]
    links = list(residual_tree.links())
    for shard_index, moved in sorted(overflow.items()):
        shard = plan.shards[shard_index]
        cut_link = source.link(shard.root)
        for cid in sorted(moved, key=repr):
            budget = shard.boundary_budget(cid)
            qos = budget if math.isfinite(budget) else math.inf
            clients.append(
                Client(id=cid, requests=moved[cid], qos=max(qos, _MIN_QOS))
            )
            links.append(
                Link(
                    child=cid,
                    parent=shard.parent,
                    comm_time=cut_link.comm_time,
                    bandwidth=cut_link.bandwidth,
                )
            )
    quotient_tree = TreeNetwork(nodes, clients, links)
    return ReplicaPlacementProblem(
        tree=quotient_tree,
        constraints=plan.problem.constraints,
        kind=plan.problem.kind,
        name=f"{plan.problem.name or 'problem'}[quotient]",
    )


def _merged_rest_problem(
    plan: ShardPlan, keep_shards: Sequence[int]
) -> ReplicaPlacementProblem:
    """The global tree minus the subtrees of the accepted shards.

    This is the "merge back" fallback: every region that could not be
    locally solved (plus the residual) re-forms one connected problem
    around the global root and solves as a whole.
    """
    tree = plan.problem.tree
    keep = set(keep_shards)
    excluded = set()
    for shard in plan.shards:
        if shard.index in keep:
            excluded.update(tree.subtree_nodes(shard.root))
            excluded.update(tree.subtree_clients(shard.root))
    nodes = [tree.node(nid) for nid in tree.node_ids if nid not in excluded]
    clients = [tree.client(cid) for cid in tree.client_ids if cid not in excluded]
    # Kept shards' cut links drop with their subtrees (the shard root is in
    # ``excluded``); merged shards keep their cut link and re-join the rest.
    links = [link for link in tree.links() if link.child not in excluded]
    rest_tree = TreeNetwork(nodes, clients, links)
    return ReplicaPlacementProblem(
        tree=rest_tree,
        constraints=plan.problem.constraints,
        kind=plan.problem.kind,
        name=f"{plan.problem.name or 'problem'}[rest]",
    )


def _reconcile(
    plan: ShardPlan,
    solutions: List[Optional[Solution]],
    policy: Policy,
    algorithm: Optional[str],
) -> Tuple[Optional[List[Solution]], str]:
    """Turn per-region solutions with failures into a feasible region list.

    Returns ``(solutions, strategy)`` with ``solutions=None`` when even the
    merged-rest pass failed (callers then fall back to whole-tree).
    """
    n_shards = len(plan.shards)
    contended = [i for i in range(n_shards) if solutions[i] is None]
    residual_failed = solutions[n_shards] is None

    # IPFP-style proportional fitting only composes when request splits are
    # free (Multiple) and link flows cannot be invalidated by new transit
    # traffic (no bandwidth caps); Upwards re-homes whole clients instead.
    constraints = plan.problem.constraints
    fit_allowed = (
        policy in (Policy.MULTIPLE, Policy.UPWARDS)
        and not constraints.enforce_bandwidth
        and not residual_failed
    )
    if fit_allowed and contended:
        whole = policy is Policy.UPWARDS
        overflow: Dict[int, Dict[NodeId, float]] = {}
        reduced: Dict[int, Solution] = {}
        fitted = True
        for i in contended:
            moved = _overflow_selection(plan.shards[i], whole_clients=whole)
            if moved is None:
                fitted = False
                break
            reduced_solution = _solve_region(
                _reduced_shard_problem(plan.shards[i], moved), policy, algorithm
            )
            if reduced_solution is None:
                fitted = False
                break
            overflow[i] = moved
            reduced[i] = reduced_solution
        if fitted:
            quotient_solution = _solve_region(
                _quotient_problem(plan, overflow), policy, algorithm
            )
            if quotient_solution is not None:
                stitched = list(solutions)
                for i in contended:
                    stitched[i] = reduced[i]
                stitched[n_shards] = quotient_solution
                strategy = (
                    "proportional-fit" if policy is Policy.MULTIPLE else "re-home"
                )
                return [s for s in stitched if s is not None], strategy

    # Merge every failed region (and the residual) back into one rest
    # problem rooted at the global root.
    keep = [i for i in range(n_shards) if solutions[i] is not None]
    rest_solution = _solve_region(_merged_rest_problem(plan, keep), policy, algorithm)
    if rest_solution is None:
        return None, "merged"
    merged = [solutions[i] for i in keep]
    merged.append(rest_solution)
    return merged, "merged"


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def solve_sharded(
    problem: ReplicaPlacementProblem,
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
    shards: Optional[ShardSpec] = None,
    plan: Optional[ShardPlan] = None,
    workers: Optional[int] = None,
) -> Solution:
    """Solve ``problem`` shard by shard and stitch a validated solution.

    ``shards`` is a target count or explicit cut (ignored when a prebuilt
    ``plan`` is passed).  Plans with fewer than two shards -- including
    ``shards=1`` -- delegate to :func:`portfolio_solve` untouched, so the
    whole-tree path stays bit-identical.  The stitched solution always
    passes :func:`validate_solution`; when even reconciliation fails, the
    classic whole-tree solve runs as the final fallback (and its
    :class:`InfeasibleError` propagates as usual).
    """
    policy = Policy.parse(policy)
    if plan is None:
        if shards is None:
            shards = 2
        if isinstance(shards, int) and shards <= 1:
            return portfolio_solve(problem, policy=policy, algorithm=algorithm)
        plan = partition_problem(problem, shards=shards)
    if len(plan.shards) < 2:
        return portfolio_solve(problem, policy=policy, algorithm=algorithm)

    region_problems = plan.region_problems()
    if workers is not None and workers >= 2 and len(region_problems) >= 2:
        # Prime per-shard indexes from contiguous DFS spans -- never a
        # global DFS -- before the problems ship to the worker pool.
        for shard in plan.shards:
            TreeIndex.sliced(shard)
        solutions = solve_regions(
            region_problems, policy=policy, algorithm=algorithm, workers=workers
        )
    else:
        # Stream shard by shard: slice one index, solve the region, release
        # the index before touching the next shard, so the peak working set
        # above the shared problem is one shard plus the accumulated
        # per-region solutions -- not every shard's scaffolding at once.
        solutions = []
        for i, region_problem in enumerate(region_problems):
            if i < len(plan.shards):
                TreeIndex.sliced(plan.shards[i])
            solutions.append(_solve_region(region_problem, policy, algorithm))
            region_problem.tree._index_cache = None
    strategy = "independent"
    contended = [s.root for s, sol in zip(plan.shards, solutions) if sol is None]
    if any(solution is None for solution in solutions):
        reconciled, strategy = _reconcile(plan, solutions, policy, algorithm)
    else:
        reconciled = solutions  # take ownership: the list is consumed below
        solutions = None

    if reconciled is not None:
        metadata: Dict[str, object] = {
            "shards": len(plan.shards),
            "cut": tuple(map(repr, plan.cut)),
            "strategy": strategy,
            "contended": tuple(map(repr, contended)),
        }
        stitched = stitch_solutions(
            reconciled,
            policy=policy,
            algorithm=f"sharded[{len(plan.shards)}:{strategy}]",
            metadata=metadata,
            consume=solutions is None,
        )
        if validate_solution(plan.problem, stitched, policy=policy).valid:
            return stitched

    # Last resort: the classic whole-tree solve (raises InfeasibleError when
    # the instance is genuinely infeasible).
    solution = portfolio_solve(problem, policy=policy, algorithm=algorithm)
    return Solution(
        placement=solution.placement,
        assignment=solution.assignment,
        policy=solution.policy,
        algorithm=solution.algorithm,
        metadata={**dict(solution.metadata), "strategy": "whole-tree-fallback"},
    )
