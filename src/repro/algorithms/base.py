"""Heuristic interface and registry.

Every placement algorithm of this package implements
:class:`PlacementHeuristic`.  The public entry point is :meth:`solve`, which
runs the algorithm and *validates* the produced solution against the problem
constraints before returning it; an invalid or missing solution raises
:class:`~repro.core.exceptions.InfeasibleError`, matching the paper's
convention that a heuristic either "finds a solution" or fails on the
instance.

Concrete heuristics register themselves with :func:`register_heuristic`,
which powers :func:`get_heuristic`, :func:`available_heuristics` and the
experiment harness (that iterates over every registered heuristic exactly
like the paper's Figures 9-12 iterate over the eight heuristics plus
MixedBest).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Type, Union

from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.validation import validate_solution

__all__ = [
    "PlacementHeuristic",
    "register_heuristic",
    "get_heuristic",
    "available_heuristics",
    "heuristics_for_policy",
    "solve_with",
]


class PlacementHeuristic(abc.ABC):
    """Base class of every placement algorithm.

    Class attributes
    ----------------
    name:
        Short unique identifier (e.g. ``"CTDA"``) used by the registry, the
        CLI and the experiment reports.
    policy:
        The access policy the produced assignments comply with.
    """

    #: registry identifier; subclasses must override.
    name: str = "abstract"
    #: access policy of the produced solutions; subclasses must override.
    policy: Policy = Policy.MULTIPLE

    def solve(self, problem: ReplicaPlacementProblem) -> Solution:
        """Run the heuristic and return a *validated* solution.

        Raises
        ------
        InfeasibleError
            When the heuristic fails to produce a solution, or produces one
            that violates the problem constraints (which the paper counts as
            a failure of the heuristic on that instance).
        """
        solution = self._solve(problem)
        if solution is None:
            raise InfeasibleError(
                f"{self.name} did not find a solution", policy=self.policy
            )
        report = validate_solution(problem, solution, policy=self.policy)
        if not report.valid:
            raise InfeasibleError(
                f"{self.name} produced an invalid solution:\n  "
                + "\n  ".join(report.violations),
                policy=self.policy,
            )
        return solution

    def try_solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        """Like :meth:`solve` but returns ``None`` instead of raising."""
        try:
            return self.solve(problem)
        except InfeasibleError:
            return None

    @abc.abstractmethod
    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        """Produce a candidate solution (or ``None`` / raise when failing)."""

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, policy={self.policy.value})"


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type[PlacementHeuristic]] = {}


def register_heuristic(cls: Type[PlacementHeuristic]) -> Type[PlacementHeuristic]:
    """Class decorator adding a heuristic to the global registry."""
    key = cls.name.lower()
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"a heuristic named {cls.name!r} is already registered")
    _REGISTRY[key] = cls
    return cls


def get_heuristic(name: Union[str, PlacementHeuristic, Type[PlacementHeuristic]]) -> PlacementHeuristic:
    """Instantiate the heuristic identified by ``name``.

    Accepts a registry name (case-insensitive), a heuristic class or an
    already-built instance (returned as-is).
    """
    if isinstance(name, PlacementHeuristic):
        return name
    if isinstance(name, type) and issubclass(name, PlacementHeuristic):
        return name()
    key = str(name).lower()
    try:
        return _REGISTRY[key]()
    except KeyError:
        raise KeyError(
            f"unknown heuristic {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_heuristics() -> List[str]:
    """Registered heuristic names (canonical capitalisation)."""
    return sorted(cls.name for cls in _REGISTRY.values())


def heuristics_for_policy(policy: Policy) -> List[PlacementHeuristic]:
    """Instantiate every registered heuristic producing ``policy`` solutions."""
    policy = Policy.parse(policy)
    return [cls() for cls in _REGISTRY.values() if cls.policy is policy]


def solve_with(
    name: Union[str, PlacementHeuristic, Type[PlacementHeuristic]],
    problem: ReplicaPlacementProblem,
) -> Solution:
    """Convenience: instantiate heuristic ``name`` and solve ``problem``."""
    return get_heuristic(name).solve(problem)
