/* Native kernels of the "native" request-state engine.
 *
 * Every function operates on the flat TreeIndex layouts -- positional
 * double vectors for the mutable state (remaining / inreq / residual),
 * int64 span and ancestor-chain arrays for the structure -- exactly like
 * repro/algorithms/fast_state.py does from interpreted code.  The float
 * arithmetic mirrors the fast engine operation for operation (same
 * additions, in the same order, with the same 1e-9 tolerances), which is
 * what keeps the three engines bit-for-bit identical on every workload
 * the equivalence suite pins.
 *
 * Buffer conventions (checked only by size where cheap; the Python wrapper
 * in repro/algorithms/native_state.py owns the layout):
 *   - double vectors: array('d') / writable buffers of n_clients or n_nodes;
 *   - int64 vectors:  array('q') (client/node spans, depths, ancestor
 *     chains flattened with CSR-style offsets, repr ranks, orders);
 *   - replica flags:  a writable byte buffer of n_nodes.
 *
 * Compiled on first use by repro/algorithms/_native (gcc -O2 -shared); no
 * dependency beyond Python.h and libc.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>

static const double TOL = 1e-9;

/* ------------------------------------------------------------------ */
/* buffer plumbing                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_buffer view;
    int held;
} buf_t;

static int
get_buf(PyObject *obj, buf_t *buf, int writable, const char *name)
{
    int flags = writable ? PyBUF_WRITABLE : PyBUF_SIMPLE;
    if (PyObject_GetBuffer(obj, &buf->view, flags) != 0) {
        PyErr_Format(PyExc_TypeError, "kernel argument %s: bad buffer", name);
        buf->held = 0;
        return -1;
    }
    buf->held = 1;
    return 0;
}

static void
release_all(buf_t *bufs, int count)
{
    for (int i = 0; i < count; i++) {
        if (bufs[i].held) {
            PyBuffer_Release(&bufs[i].view);
            bufs[i].held = 0;
        }
    }
}

#define DBL(b) ((double *)(b).view.buf)
#define I64(b) ((int64_t *)(b).view.buf)
#define U8(b) ((unsigned char *)(b).view.buf)

/* ------------------------------------------------------------------ */
/* drain candidate selection                                           */
/* ------------------------------------------------------------------ */

typedef struct {
    double key;   /* sign * remaining, compared ascending */
    int64_t rank; /* unique (repr, position) rank: total tie order */
    int64_t pos;  /* client layout position */
} cand_t;

static int
cand_cmp(const void *a, const void *b)
{
    const cand_t *x = (const cand_t *)a;
    const cand_t *y = (const cand_t *)b;
    if (x->key < y->key) return -1;
    if (x->key > y->key) return 1;
    if (x->rank < y->rank) return -1;
    if (x->rank > y->rank) return 1;
    return 0;
}

/* Serve `taken` clients from server position `si`: one fast-engine
 * `_serve` -- per client, subtract from remaining, walk the client's
 * ancestor chain subtracting from inreq, then subtract the grand total
 * from the server's residual (one subtraction, like the fast engine). */
static double
serve_taken(double *rem, double *inr, double *res,
            const int64_t *caf, const int64_t *cao,
            int64_t si,
            const int64_t *taken_pos, const double *taken_amt, int64_t count)
{
    double total = 0.0;
    for (int64_t k = 0; k < count; k++) {
        int64_t p = taken_pos[k];
        double amount = taken_amt[k];
        rem[p] = rem[p] - amount;
        for (int64_t j = cao[p]; j < cao[p + 1]; j++)
            inr[caf[j]] -= amount;
        total += amount;
    }
    res[si] -= total;
    return total;
}

/* Candidate selection + budget walk of the fast engine's drain():
 * filter the span's pending (QoS-eligible) clients, order them by
 * (sign * remaining, repr-rank) ascending, then consume whole clients
 * until the budget runs out (optionally splitting the last one).
 * Fills taken_pos/taken_amt (caller-allocated, span-sized) and returns
 * the count; *drained_out receives the amount drained. */
static int64_t
drain_select(const double *rem, const int64_t *rrk,
             const int64_t *thr, int64_t depth,
             int64_t start, int64_t end,
             double budget, int largest_first, int split_last,
             int64_t *taken_pos, double *taken_amt, double *drained_out)
{
    int64_t span = end - start;
    *drained_out = 0.0;
    if (span <= 0)
        return 0;
    cand_t *cands = (cand_t *)malloc((size_t)span * sizeof(cand_t));
    if (cands == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    double sign = largest_first ? -1.0 : 1.0;
    int64_t ncand = 0;
    for (int64_t p = start; p < end; p++) {
        double v = rem[p];
        if (v > TOL && (thr == NULL || thr[p] <= depth)) {
            cands[ncand].key = sign * v;
            cands[ncand].rank = rrk[p];
            cands[ncand].pos = p;
            ncand++;
        }
    }
    if (ncand > 1)
        qsort(cands, (size_t)ncand, sizeof(cand_t), cand_cmp);

    double drained = 0.0;
    int64_t count = 0;
    for (int64_t k = 0; k < ncand; k++) {
        int64_t p = cands[k].pos;
        double pending = rem[p];
        if (pending <= budget + TOL) {
            taken_pos[count] = p;
            taken_amt[count] = pending;
            count++;
            budget -= pending;
            drained += pending;
            if (budget <= TOL)
                break;
        }
        else if (split_last) {
            taken_pos[count] = p;
            taken_amt[count] = budget;
            count++;
            drained += budget;
            budget = 0.0;
            break;
        }
        /* whole-client mode: a client larger than the remaining budget is
         * skipped (the next, smaller, candidate is tried). */
    }
    free(cands);
    *drained_out = drained;
    return count;
}

/* Build the [(pos, amount), ...] taken list handed back for the Python
 * side's amounts-dict bookkeeping. */
static PyObject *
taken_list(const int64_t *taken_pos, const double *taken_amt, int64_t count)
{
    PyObject *list = PyList_New((Py_ssize_t)count);
    if (list == NULL)
        return NULL;
    for (int64_t k = 0; k < count; k++) {
        PyObject *pair = Py_BuildValue("(Ld)", (long long)taken_pos[k], taken_amt[k]);
        if (pair == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, (Py_ssize_t)k, pair);
    }
    return list;
}

/* ------------------------------------------------------------------ */
/* module functions                                                    */
/* ------------------------------------------------------------------ */

/* assign(rem, inr, res, caf, cao, ci, si, amount) */
static PyObject *
k_assign(PyObject *self, PyObject *args)
{
    PyObject *o_rem, *o_inr, *o_res, *o_caf, *o_cao;
    long long ci, si;
    double amount;
    if (!PyArg_ParseTuple(args, "OOOOOLLd", &o_rem, &o_inr, &o_res, &o_caf,
                          &o_cao, &ci, &si, &amount))
        return NULL;
    buf_t b[5] = {0};
    if (get_buf(o_rem, &b[0], 1, "rem") || get_buf(o_inr, &b[1], 1, "inr") ||
        get_buf(o_res, &b[2], 1, "res") || get_buf(o_caf, &b[3], 0, "caf") ||
        get_buf(o_cao, &b[4], 0, "cao")) {
        release_all(b, 5);
        return NULL;
    }
    double *rem = DBL(b[0]), *inr = DBL(b[1]), *res = DBL(b[2]);
    const int64_t *caf = I64(b[3]), *cao = I64(b[4]);
    /* same order as the fast engine's assign(): remaining, residual,
     * then the ancestor walk */
    rem[ci] = rem[ci] - amount;
    res[si] -= amount;
    for (int64_t j = cao[ci]; j < cao[ci + 1]; j++)
        inr[caf[j]] -= amount;
    release_all(b, 5);
    Py_RETURN_NONE;
}

/* total(rem) -> float : left-to-right sum, same as Python's sum(list) */
static PyObject *
k_total(PyObject *self, PyObject *args)
{
    PyObject *o_rem;
    if (!PyArg_ParseTuple(args, "O", &o_rem))
        return NULL;
    buf_t b[1] = {0};
    if (get_buf(o_rem, &b[0], 0, "rem"))
        return NULL;
    const double *rem = DBL(b[0]);
    int64_t n = (int64_t)(b[0].view.len / (Py_ssize_t)sizeof(double));
    double acc = 0.0;
    for (int64_t p = 0; p < n; p++)
        acc += rem[p];
    release_all(b, 1);
    return PyFloat_FromDouble(acc);
}

/* pending_ids(rem, start, end, thr_or_none, depth, order_tuple) -> [id, ...]
 * Identifiers of the span's pending (eligible) clients, in layout order. */
static PyObject *
k_pending_ids(PyObject *self, PyObject *args)
{
    PyObject *o_rem, *o_thr, *o_order;
    long long start, end, depth;
    if (!PyArg_ParseTuple(args, "OLLOLO!", &o_rem, &start, &end, &o_thr,
                          &depth, &PyTuple_Type, &o_order))
        return NULL;
    buf_t b[2] = {0};
    if (get_buf(o_rem, &b[0], 0, "rem"))
        return NULL;
    const int64_t *thr = NULL;
    if (o_thr != Py_None) {
        if (get_buf(o_thr, &b[1], 0, "thr")) {
            release_all(b, 2);
            return NULL;
        }
        thr = I64(b[1]);
    }
    const double *rem = DBL(b[0]);
    PyObject *list = PyList_New(0);
    if (list == NULL) {
        release_all(b, 2);
        return NULL;
    }
    for (int64_t p = start; p < end; p++) {
        if (rem[p] > TOL && (thr == NULL || thr[p] <= depth)) {
            PyObject *cid = PyTuple_GET_ITEM(o_order, (Py_ssize_t)p);
            if (PyList_Append(list, cid) != 0) {
                Py_DECREF(list);
                release_all(b, 2);
                return NULL;
            }
        }
    }
    release_all(b, 2);
    return list;
}

/* sum_eligible(rem, start, end, thr, depth) -> float */
static PyObject *
k_sum_eligible(PyObject *self, PyObject *args)
{
    PyObject *o_rem, *o_thr;
    long long start, end, depth;
    if (!PyArg_ParseTuple(args, "OLLOL", &o_rem, &start, &end, &o_thr, &depth))
        return NULL;
    buf_t b[2] = {0};
    if (get_buf(o_rem, &b[0], 0, "rem") || get_buf(o_thr, &b[1], 0, "thr")) {
        release_all(b, 2);
        return NULL;
    }
    const double *rem = DBL(b[0]);
    const int64_t *thr = I64(b[1]);
    /* sum(remaining[p] for eligible p): left-to-right like Python sum() */
    double acc = 0.0;
    for (int64_t p = start; p < end; p++)
        if (rem[p] > TOL && thr[p] <= depth)
            acc += rem[p];
    release_all(b, 2);
    return PyFloat_FromDouble(acc);
}

/* all_within_qos(rem, start, end, thr, depth) -> bool
 * True when every pending client of the span is QoS-eligible. */
static PyObject *
k_all_within_qos(PyObject *self, PyObject *args)
{
    PyObject *o_rem, *o_thr;
    long long start, end, depth;
    if (!PyArg_ParseTuple(args, "OLLOL", &o_rem, &start, &end, &o_thr, &depth))
        return NULL;
    buf_t b[2] = {0};
    if (get_buf(o_rem, &b[0], 0, "rem") || get_buf(o_thr, &b[1], 0, "thr")) {
        release_all(b, 2);
        return NULL;
    }
    const double *rem = DBL(b[0]);
    const int64_t *thr = I64(b[1]);
    int ok = 1;
    for (int64_t p = start; p < end; p++) {
        if (rem[p] > TOL && thr[p] > depth) {
            ok = 0;
            break;
        }
    }
    release_all(b, 2);
    if (ok)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

/* drain(rem, inr, res, caf, cao, rrk, thr_or_none, si, start, end, depth,
 *       budget, largest_first, split_last) -> (drained, [(pos, amt), ...]) */
static PyObject *
k_drain(PyObject *self, PyObject *args)
{
    PyObject *o_rem, *o_inr, *o_res, *o_caf, *o_cao, *o_rrk, *o_thr;
    long long si, start, end, depth;
    double budget;
    int largest_first, split_last;
    if (!PyArg_ParseTuple(args, "OOOOOOOLLLLdii", &o_rem, &o_inr, &o_res,
                          &o_caf, &o_cao, &o_rrk, &o_thr, &si, &start, &end,
                          &depth, &budget, &largest_first, &split_last))
        return NULL;
    buf_t b[7] = {0};
    if (get_buf(o_rem, &b[0], 1, "rem") || get_buf(o_inr, &b[1], 1, "inr") ||
        get_buf(o_res, &b[2], 1, "res") || get_buf(o_caf, &b[3], 0, "caf") ||
        get_buf(o_cao, &b[4], 0, "cao") || get_buf(o_rrk, &b[5], 0, "rrk")) {
        release_all(b, 7);
        return NULL;
    }
    const int64_t *thr = NULL;
    if (o_thr != Py_None) {
        if (get_buf(o_thr, &b[6], 0, "thr")) {
            release_all(b, 7);
            return NULL;
        }
        thr = I64(b[6]);
    }
    double *rem = DBL(b[0]), *inr = DBL(b[1]), *res = DBL(b[2]);
    const int64_t *caf = I64(b[3]), *cao = I64(b[4]), *rrk = I64(b[5]);

    int64_t span = end - start;
    int64_t *taken_pos = NULL;
    double *taken_amt = NULL;
    PyObject *result = NULL;
    if (span > 0) {
        taken_pos = (int64_t *)malloc((size_t)span * sizeof(int64_t));
        taken_amt = (double *)malloc((size_t)span * sizeof(double));
        if (taken_pos == NULL || taken_amt == NULL) {
            PyErr_NoMemory();
            goto done;
        }
    }
    double drained = 0.0;
    int64_t count = drain_select(rem, rrk, thr, depth, start, end, budget,
                                 largest_first, split_last, taken_pos,
                                 taken_amt, &drained);
    if (count < 0)
        goto done;
    if (count > 0)
        serve_taken(rem, inr, res, caf, cao, si, taken_pos, taken_amt, count);
    PyObject *taken = taken_list(taken_pos, taken_amt, count);
    if (taken == NULL)
        goto done;
    result = Py_BuildValue("(dN)", drained, taken);
done:
    free(taken_pos);
    free(taken_amt);
    release_all(b, 7);
    return result;
}

/* cover(rem, inr, res, caf, cao, css, cse, nse, naf, nao, thr_or_none,
 *       si, depth, bulk_min) -> (covered, [(pos, amt), ...])
 * Serve every eligible pending client of subtree(si).  Past bulk_min
 * served clients the inreq update batches into one prefix sum over the
 * subtree span, exactly like the fast engine's _serve_bulk. */
static PyObject *
k_cover(PyObject *self, PyObject *args)
{
    PyObject *o_rem, *o_inr, *o_res, *o_caf, *o_cao, *o_css, *o_cse, *o_nse,
        *o_naf, *o_nao, *o_thr;
    long long si, depth, bulk_min;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOLLL", &o_rem, &o_inr, &o_res,
                          &o_caf, &o_cao, &o_css, &o_cse, &o_nse, &o_naf,
                          &o_nao, &o_thr, &si, &depth, &bulk_min))
        return NULL;
    buf_t b[11] = {0};
    if (get_buf(o_rem, &b[0], 1, "rem") || get_buf(o_inr, &b[1], 1, "inr") ||
        get_buf(o_res, &b[2], 1, "res") || get_buf(o_caf, &b[3], 0, "caf") ||
        get_buf(o_cao, &b[4], 0, "cao") || get_buf(o_css, &b[5], 0, "css") ||
        get_buf(o_cse, &b[6], 0, "cse") || get_buf(o_nse, &b[7], 0, "nse") ||
        get_buf(o_naf, &b[8], 0, "naf") || get_buf(o_nao, &b[9], 0, "nao")) {
        release_all(b, 11);
        return NULL;
    }
    const int64_t *thr = NULL;
    if (o_thr != Py_None) {
        if (get_buf(o_thr, &b[10], 0, "thr")) {
            release_all(b, 11);
            return NULL;
        }
        thr = I64(b[10]);
    }
    double *rem = DBL(b[0]), *inr = DBL(b[1]), *res = DBL(b[2]);
    const int64_t *caf = I64(b[3]), *cao = I64(b[4]);
    const int64_t *css = I64(b[5]), *cse = I64(b[6]), *nse = I64(b[7]);
    const int64_t *naf = I64(b[8]), *nao = I64(b[9]);

    int64_t start = css[si], end = cse[si];
    int64_t span = end - start;
    PyObject *result = NULL;
    int64_t *taken_pos = NULL;
    double *taken_amt = NULL;
    double *scratch = NULL;
    if (span > 0) {
        taken_pos = (int64_t *)malloc((size_t)span * sizeof(int64_t));
        taken_amt = (double *)malloc((size_t)span * sizeof(double));
        if (taken_pos == NULL || taken_amt == NULL) {
            PyErr_NoMemory();
            goto done;
        }
    }
    int64_t count = 0;
    for (int64_t p = start; p < end; p++)
        if (rem[p] > TOL && (thr == NULL || thr[p] <= depth))
            taken_pos[count++] = p;

    double total = 0.0;
    if (count == 0) {
        /* nothing to serve */
    }
    else if (count >= bulk_min) {
        /* _serve_bulk: zero out the served clients, one prefix sum over
         * the span, subtract per-node deltas inside the subtree and the
         * grand total above it. */
        scratch = (double *)calloc((size_t)(2 * span + 1), sizeof(double));
        if (scratch == NULL) {
            PyErr_NoMemory();
            goto done;
        }
        double *served = scratch;          /* span doubles */
        double *prefix = scratch + span;   /* span + 1 doubles */
        for (int64_t k = 0; k < count; k++) {
            int64_t p = taken_pos[k];
            double amount = rem[p];
            taken_amt[k] = amount;
            rem[p] = 0.0;
            served[p - start] = amount;
            total += amount;
        }
        res[si] -= total;
        double running = 0.0;
        prefix[0] = 0.0;
        for (int64_t k = 0; k < span; k++) {
            running = running + served[k];
            prefix[k + 1] = running;
        }
        for (int64_t ni = si; ni < nse[si]; ni++) {
            double delta = prefix[cse[ni] - start] - prefix[css[ni] - start];
            if (delta != 0.0)
                inr[ni] -= delta;
        }
        for (int64_t j = nao[si]; j < nao[si + 1]; j++)
            inr[naf[j]] -= total;
    }
    else {
        for (int64_t k = 0; k < count; k++)
            taken_amt[k] = rem[taken_pos[k]];
        total = serve_taken(rem, inr, res, caf, cao, si, taken_pos, taken_amt,
                            count);
    }
    PyObject *taken = taken_list(taken_pos, taken_amt, count);
    if (taken == NULL)
        goto done;
    result = Py_BuildValue("(dN)", total, taken);
done:
    free(scratch);
    free(taken_pos);
    free(taken_amt);
    release_all(b, 11);
    return result;
}

/* Shared body of the two sweep kernels: drain server position i with
 * `budget`, appending (i, pos, amount) triples to `assigns`.  Returns 0
 * on success, -1 on error. */
static int
sweep_drain(double *rem, double *inr, double *res,
            const int64_t *caf, const int64_t *cao, const int64_t *rrk,
            const int64_t *thr, const int64_t *nd,
            const int64_t *css, const int64_t *cse,
            int64_t i, double budget, int largest_first, int split_last,
            int64_t *taken_pos, double *taken_amt, PyObject *assigns)
{
    if (budget <= TOL)
        return 0;
    double drained = 0.0;
    int64_t count = drain_select(rem, rrk, thr, thr ? nd[i] : 0, css[i],
                                 cse[i], budget, largest_first, split_last,
                                 taken_pos, taken_amt, &drained);
    if (count < 0)
        return -1;
    if (count == 0)
        return 0;
    serve_taken(rem, inr, res, caf, cao, i, taken_pos, taken_amt, count);
    for (int64_t k = 0; k < count; k++) {
        PyObject *triple = Py_BuildValue("(LLd)", (long long)i,
                                         (long long)taken_pos[k],
                                         taken_amt[k]);
        if (triple == NULL)
            return -1;
        int rc = PyList_Append(assigns, triple);
        Py_DECREF(triple);
        if (rc != 0)
            return -1;
    }
    return 0;
}

/* sweep_saturated(rem, inr, res, rep, cap, css, cse, caf, cao, rrk,
 *                 thr_or_none, nd, order_or_none, largest_first, split_last)
 *     -> (placed, assigns)
 * The UTD/MTD/MBU first pass: walk the nodes (pre-order when order is
 * None, else the given permutation, e.g. post-order), place a replica on
 * every node whose pending subtree load reaches its capacity, and drain
 * whole clients into it. */
static PyObject *
k_sweep_saturated(PyObject *self, PyObject *args)
{
    PyObject *o_rem, *o_inr, *o_res, *o_rep, *o_cap, *o_css, *o_cse, *o_caf,
        *o_cao, *o_rrk, *o_thr, *o_nd, *o_order;
    int largest_first, split_last;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOOOii", &o_rem, &o_inr, &o_res,
                          &o_rep, &o_cap, &o_css, &o_cse, &o_caf, &o_cao,
                          &o_rrk, &o_thr, &o_nd, &o_order, &largest_first,
                          &split_last))
        return NULL;
    buf_t b[13] = {0};
    if (get_buf(o_rem, &b[0], 1, "rem") || get_buf(o_inr, &b[1], 1, "inr") ||
        get_buf(o_res, &b[2], 1, "res") || get_buf(o_rep, &b[3], 1, "rep") ||
        get_buf(o_cap, &b[4], 0, "cap") || get_buf(o_css, &b[5], 0, "css") ||
        get_buf(o_cse, &b[6], 0, "cse") || get_buf(o_caf, &b[7], 0, "caf") ||
        get_buf(o_cao, &b[8], 0, "cao") || get_buf(o_rrk, &b[9], 0, "rrk") ||
        get_buf(o_nd, &b[10], 0, "nd")) {
        release_all(b, 13);
        return NULL;
    }
    const int64_t *thr = NULL;
    if (o_thr != Py_None) {
        if (get_buf(o_thr, &b[11], 0, "thr")) {
            release_all(b, 13);
            return NULL;
        }
        thr = I64(b[11]);
    }
    const int64_t *order = NULL;
    if (o_order != Py_None) {
        if (get_buf(o_order, &b[12], 0, "order")) {
            release_all(b, 13);
            return NULL;
        }
        order = I64(b[12]);
    }
    double *rem = DBL(b[0]), *inr = DBL(b[1]), *res = DBL(b[2]);
    unsigned char *rep = U8(b[3]);
    const double *cap = DBL(b[4]);
    const int64_t *css = I64(b[5]), *cse = I64(b[6]);
    const int64_t *caf = I64(b[7]), *cao = I64(b[8]), *rrk = I64(b[9]);
    const int64_t *nd = I64(b[10]);
    int64_t n_nodes = (int64_t)(b[4].view.len / (Py_ssize_t)sizeof(double));
    int64_t n_clients = (int64_t)(b[0].view.len / (Py_ssize_t)sizeof(double));

    PyObject *placed = NULL, *assigns = NULL, *result = NULL;
    int64_t *taken_pos = NULL;
    double *taken_amt = NULL;
    placed = PyList_New(0);
    assigns = PyList_New(0);
    if (placed == NULL || assigns == NULL)
        goto done;
    if (n_clients > 0) {
        taken_pos = (int64_t *)malloc((size_t)n_clients * sizeof(int64_t));
        taken_amt = (double *)malloc((size_t)n_clients * sizeof(double));
        if (taken_pos == NULL || taken_amt == NULL) {
            PyErr_NoMemory();
            goto done;
        }
    }
    for (int64_t k = 0; k < n_nodes; k++) {
        int64_t i = order ? order[k] : k;
        double capacity = cap[i];
        if (inr[i] >= capacity - TOL && inr[i] > TOL) {
            rep[i] = 1;
            PyObject *pos = PyLong_FromLongLong((long long)i);
            if (pos == NULL)
                goto done;
            int rc = PyList_Append(placed, pos);
            Py_DECREF(pos);
            if (rc != 0)
                goto done;
            if (sweep_drain(rem, inr, res, caf, cao, rrk, thr, nd, css, cse,
                            i, capacity, largest_first, split_last, taken_pos,
                            taken_amt, assigns) != 0)
                goto done;
        }
    }
    result = Py_BuildValue("(OO)", placed, assigns);
done:
    free(taken_pos);
    free(taken_amt);
    Py_XDECREF(placed);
    Py_XDECREF(assigns);
    release_all(b, 13);
    return result;
}

/* sweep_second(rem, inr, res, rep, css, cse, nse, caf, cao, rrk,
 *              thr_or_none, nd, largest_first, split_last)
 *     -> (placed, assigns)
 * The UTD/MTD/MBU second pass: top-down, place a replica on the highest
 * non-replica node that still sees pending requests and drain everything
 * it may serve; never descend below a fresh replica, skip subtrees with
 * nothing pending. */
static PyObject *
k_sweep_second(PyObject *self, PyObject *args)
{
    PyObject *o_rem, *o_inr, *o_res, *o_rep, *o_css, *o_cse, *o_nse, *o_caf,
        *o_cao, *o_rrk, *o_thr, *o_nd;
    int largest_first, split_last;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOOii", &o_rem, &o_inr, &o_res,
                          &o_rep, &o_css, &o_cse, &o_nse, &o_caf, &o_cao,
                          &o_rrk, &o_thr, &o_nd, &largest_first, &split_last))
        return NULL;
    buf_t b[12] = {0};
    if (get_buf(o_rem, &b[0], 1, "rem") || get_buf(o_inr, &b[1], 1, "inr") ||
        get_buf(o_res, &b[2], 1, "res") || get_buf(o_rep, &b[3], 1, "rep") ||
        get_buf(o_css, &b[4], 0, "css") || get_buf(o_cse, &b[5], 0, "cse") ||
        get_buf(o_nse, &b[6], 0, "nse") || get_buf(o_caf, &b[7], 0, "caf") ||
        get_buf(o_cao, &b[8], 0, "cao") || get_buf(o_rrk, &b[9], 0, "rrk") ||
        get_buf(o_nd, &b[10], 0, "nd")) {
        release_all(b, 12);
        return NULL;
    }
    const int64_t *thr = NULL;
    if (o_thr != Py_None) {
        if (get_buf(o_thr, &b[11], 0, "thr")) {
            release_all(b, 12);
            return NULL;
        }
        thr = I64(b[11]);
    }
    double *rem = DBL(b[0]), *inr = DBL(b[1]), *res = DBL(b[2]);
    unsigned char *rep = U8(b[3]);
    const int64_t *css = I64(b[4]), *cse = I64(b[5]), *nse = I64(b[6]);
    const int64_t *caf = I64(b[7]), *cao = I64(b[8]), *rrk = I64(b[9]);
    const int64_t *nd = I64(b[10]);
    int64_t n_nodes = (int64_t)(b[6].view.len / (Py_ssize_t)sizeof(int64_t));
    int64_t n_clients = (int64_t)(b[0].view.len / (Py_ssize_t)sizeof(double));

    PyObject *placed = NULL, *assigns = NULL, *result = NULL;
    int64_t *taken_pos = NULL;
    double *taken_amt = NULL;
    placed = PyList_New(0);
    assigns = PyList_New(0);
    if (placed == NULL || assigns == NULL)
        goto done;
    if (n_clients > 0) {
        taken_pos = (int64_t *)malloc((size_t)n_clients * sizeof(int64_t));
        taken_amt = (double *)malloc((size_t)n_clients * sizeof(double));
        if (taken_pos == NULL || taken_amt == NULL) {
            PyErr_NoMemory();
            goto done;
        }
    }
    /* The recursive pass visits the root unconditionally and only filters
     * *children* on pending load, so the root gets its own step: place
     * there if possible, otherwise scan descendants with the per-node
     * filter (a node's pending load is untouched by its earlier siblings'
     * drains, so testing on arrival equals the recursion's test). */
    int64_t i = n_nodes;
    if (n_nodes > 0) {
        if (!rep[0] && inr[0] > TOL) {
            rep[0] = 1;
            PyObject *pos = PyLong_FromLongLong(0);
            if (pos == NULL)
                goto done;
            int rc = PyList_Append(placed, pos);
            Py_DECREF(pos);
            if (rc != 0)
                goto done;
            if (sweep_drain(rem, inr, res, caf, cao, rrk, thr, nd, css, cse,
                            0, inr[0], largest_first, split_last, taken_pos,
                            taken_amt, assigns) != 0)
                goto done;
        }
        else {
            i = 1;
        }
    }
    while (i < n_nodes) {
        if (inr[i] <= TOL) {
            i = nse[i]; /* nothing pending below: skip the whole subtree */
            continue;
        }
        if (!rep[i]) {
            rep[i] = 1;
            PyObject *pos = PyLong_FromLongLong((long long)i);
            if (pos == NULL)
                goto done;
            int rc = PyList_Append(placed, pos);
            Py_DECREF(pos);
            if (rc != 0)
                goto done;
            if (sweep_drain(rem, inr, res, caf, cao, rrk, thr, nd, css, cse,
                            i, inr[i], largest_first, split_last, taken_pos,
                            taken_amt, assigns) != 0)
                goto done;
            i = nse[i]; /* never descend below a fresh replica */
        }
        else {
            i++; /* an old replica: keep searching below it */
        }
    }
    result = Py_BuildValue("(OO)", placed, assigns);
done:
    free(taken_pos);
    free(taken_amt);
    Py_XDECREF(placed);
    Py_XDECREF(assigns);
    release_all(b, 12);
    return result;
}

/* best_fit(res, nd, caf, cao, ci, threshold, requests) -> int
 * Best-fit server position for a whole client (UBCF): walk the client's
 * ancestor chain bottom-up, keep the first minimal-residual ancestor that
 * can host all requests; stop at the QoS threshold (-1: no QoS).
 * Returns -1 when no ancestor qualifies. */
static PyObject *
k_best_fit(PyObject *self, PyObject *args)
{
    PyObject *o_res, *o_nd, *o_caf, *o_cao;
    long long ci, threshold;
    double requests;
    if (!PyArg_ParseTuple(args, "OOOOLLd", &o_res, &o_nd, &o_caf, &o_cao, &ci,
                          &threshold, &requests))
        return NULL;
    buf_t b[4] = {0};
    if (get_buf(o_res, &b[0], 0, "res") || get_buf(o_nd, &b[1], 0, "nd") ||
        get_buf(o_caf, &b[2], 0, "caf") || get_buf(o_cao, &b[3], 0, "cao")) {
        release_all(b, 4);
        return NULL;
    }
    const double *res = DBL(b[0]);
    const int64_t *nd = I64(b[1]);
    const int64_t *caf = I64(b[2]), *cao = I64(b[3]);
    int64_t best = -1;
    for (int64_t j = cao[ci]; j < cao[ci + 1]; j++) {
        int64_t a = caf[j];
        if (threshold >= 0 && nd[a] < threshold)
            break; /* monotone QoS: everything above is out of bound too */
        if (res[a] + TOL >= requests) {
            if (best < 0 || res[a] < res[best] - TOL)
                best = a;
        }
    }
    release_all(b, 4);
    return PyLong_FromLongLong((long long)best);
}

/* build_chains(first_parent, node_parent, flat_out, off_out)
 * Flatten bottom-up ancestor chains (as dense node positions) in CSR
 * form.  For element e the chain starts at first_parent[e] and climbs
 * node_parent until the root (parent -1).  off_out must hold n+1 slots;
 * flat_out must hold the total chain length (sum of depths). */
static PyObject *
k_build_chains(PyObject *self, PyObject *args)
{
    PyObject *o_fp, *o_np, *o_flat, *o_off;
    if (!PyArg_ParseTuple(args, "OOOO", &o_fp, &o_np, &o_flat, &o_off))
        return NULL;
    buf_t b[4] = {0};
    if (get_buf(o_fp, &b[0], 0, "first_parent") ||
        get_buf(o_np, &b[1], 0, "node_parent") ||
        get_buf(o_flat, &b[2], 1, "flat_out") ||
        get_buf(o_off, &b[3], 1, "off_out")) {
        release_all(b, 4);
        return NULL;
    }
    const int64_t *fp = I64(b[0]);
    const int64_t *np = I64(b[1]);
    int64_t *flat = I64(b[2]);
    int64_t *off = I64(b[3]);
    int64_t n = (int64_t)(b[0].view.len / (Py_ssize_t)sizeof(int64_t));
    int64_t flat_cap = (int64_t)(b[2].view.len / (Py_ssize_t)sizeof(int64_t));
    int64_t k = 0;
    off[0] = 0;
    for (int64_t e = 0; e < n; e++) {
        int64_t a = fp[e];
        while (a >= 0 && k < flat_cap) {
            flat[k++] = a;
            a = np[a];
        }
        if (a >= 0) {
            release_all(b, 4);
            PyErr_SetString(PyExc_ValueError, "ancestor chain overflow");
            return NULL;
        }
        off[e + 1] = k;
    }
    release_all(b, 4);
    return PyLong_FromLongLong((long long)k);
}

/* thresholds_distance(client_depth, bounds, caf, cao, nd, out)
 * Per-client minimal eligible server depth under hop-count QoS; mirrors
 * TreeIndex.qos_depth_thresholds comparison for comparison. */
static PyObject *
k_thresholds_distance(PyObject *self, PyObject *args)
{
    PyObject *o_cd, *o_bounds, *o_caf, *o_cao, *o_nd, *o_out;
    if (!PyArg_ParseTuple(args, "OOOOOO", &o_cd, &o_bounds, &o_caf, &o_cao,
                          &o_nd, &o_out))
        return NULL;
    buf_t b[6] = {0};
    if (get_buf(o_cd, &b[0], 0, "client_depth") ||
        get_buf(o_bounds, &b[1], 0, "bounds") ||
        get_buf(o_caf, &b[2], 0, "caf") || get_buf(o_cao, &b[3], 0, "cao") ||
        get_buf(o_nd, &b[4], 0, "nd") || get_buf(o_out, &b[5], 1, "out")) {
        release_all(b, 6);
        return NULL;
    }
    const int64_t *cd = I64(b[0]);
    const double *bounds = DBL(b[1]);
    const int64_t *caf = I64(b[2]), *cao = I64(b[3]), *nd = I64(b[4]);
    int64_t *out = I64(b[5]);
    int64_t n = (int64_t)(b[0].view.len / (Py_ssize_t)sizeof(int64_t));
    for (int64_t ci = 0; ci < n; ci++) {
        int64_t client_depth = cd[ci];
        double bound = bounds[ci];
        int64_t best = client_depth; /* sentinel: nothing eligible */
        for (int64_t j = cao[ci]; j < cao[ci + 1]; j++) {
            int64_t depth = nd[caf[j]];
            if ((double)(client_depth - depth) <= bound)
                best = depth;
            else
                break; /* monotone metric: everything above fails */
        }
        out[ci] = best;
    }
    release_all(b, 6);
    Py_RETURN_NONE;
}

/* thresholds_latency(client_depth, bounds, client_uplink, node_uplink,
 *                    caf, cao, nd, out)
 * Same, accumulating link communication times path-order like the
 * indexed Python implementation. */
static PyObject *
k_thresholds_latency(PyObject *self, PyObject *args)
{
    PyObject *o_cd, *o_bounds, *o_cup, *o_nup, *o_caf, *o_cao, *o_nd, *o_out;
    if (!PyArg_ParseTuple(args, "OOOOOOOO", &o_cd, &o_bounds, &o_cup, &o_nup,
                          &o_caf, &o_cao, &o_nd, &o_out))
        return NULL;
    buf_t b[8] = {0};
    if (get_buf(o_cd, &b[0], 0, "client_depth") ||
        get_buf(o_bounds, &b[1], 0, "bounds") ||
        get_buf(o_cup, &b[2], 0, "client_uplink") ||
        get_buf(o_nup, &b[3], 0, "node_uplink") ||
        get_buf(o_caf, &b[4], 0, "caf") || get_buf(o_cao, &b[5], 0, "cao") ||
        get_buf(o_nd, &b[6], 0, "nd") || get_buf(o_out, &b[7], 1, "out")) {
        release_all(b, 8);
        return NULL;
    }
    const int64_t *cd = I64(b[0]);
    const double *bounds = DBL(b[1]);
    const double *cup = DBL(b[2]), *nup = DBL(b[3]);
    const int64_t *caf = I64(b[4]), *cao = I64(b[5]), *nd = I64(b[6]);
    int64_t *out = I64(b[7]);
    int64_t n = (int64_t)(b[0].view.len / (Py_ssize_t)sizeof(int64_t));
    for (int64_t ci = 0; ci < n; ci++) {
        double bound = bounds[ci];
        int64_t best = cd[ci];
        double latency = 0.0;
        double comm = cup[ci];
        for (int64_t j = cao[ci]; j < cao[ci + 1]; j++) {
            int64_t a = caf[j];
            latency += comm;
            if (latency <= bound)
                best = nd[a];
            else
                break;
            comm = nup[a];
        }
        out[ci] = best;
    }
    release_all(b, 8);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */

static PyMethodDef kernel_methods[] = {
    {"assign", k_assign, METH_VARARGS, "Affect requests of one client to a server."},
    {"total", k_total, METH_VARARGS, "Sum of a double vector, left to right."},
    {"pending_ids", k_pending_ids, METH_VARARGS, "Identifiers of pending (eligible) clients in a span."},
    {"sum_eligible", k_sum_eligible, METH_VARARGS, "Pending eligible requests of a span."},
    {"all_within_qos", k_all_within_qos, METH_VARARGS, "Whether every pending client of a span is QoS-eligible."},
    {"drain", k_drain, METH_VARARGS, "Whole-client drain of a subtree span into a server."},
    {"cover", k_cover, METH_VARARGS, "Serve every eligible pending client of a subtree."},
    {"sweep_saturated", k_sweep_saturated, METH_VARARGS, "Place+drain every saturated node (first pass)."},
    {"sweep_second", k_sweep_second, METH_VARARGS, "Top-down completion pass (second pass)."},
    {"best_fit", k_best_fit, METH_VARARGS, "Best-fit ancestor for a whole client."},
    {"build_chains", k_build_chains, METH_VARARGS, "Flatten bottom-up ancestor chains in CSR form."},
    {"thresholds_distance", k_thresholds_distance, METH_VARARGS, "Per-client QoS depth thresholds (hop metric)."},
    {"thresholds_latency", k_thresholds_latency, METH_VARARGS, "Per-client QoS depth thresholds (latency metric)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "_repro_native",
    "Compiled kernels of the native request-state engine.",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__repro_native(void)
{
    return PyModule_Create(&kernel_module);
}
