"""Build-on-first-use loader of the native engine's C kernels.

The kernels live in ``kernels.c`` next to this file and are compiled into a
CPython extension module (``_repro_native``) with the system C compiler the
first time the native engine is requested.  The shared object is cached --
keyed by a hash of the source and the interpreter's ABI tag -- under the
first writable of:

* ``$REPRO_NATIVE_CACHE`` (explicit override);
* ``<repo>/build/native`` (a checkout run);
* ``~/.cache/repro-native`` (installed / read-only checkouts).

so later processes (pytest workers, forked solvers, servers) just ``dlopen``
it.  Everything degrades gracefully: when no compiler is available, when the
cache directories cannot be written, or when ``REPRO_NATIVE_DISABLE=1`` is
set, :func:`load_kernels` returns ``None`` and the ``native`` engine falls
back to the ``fast`` implementation (``make_state`` prints a one-line
stderr note so silent slowdowns are visible).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["load_kernels", "kernel_status", "kernel_cache_dir"]

_SOURCE = Path(__file__).with_name("kernels.c")

#: one-shot memo: ``False`` = not tried yet, ``None`` = tried and failed
_kernels: object = False
#: human-readable reason the kernels are unavailable (for ``repro doctor``)
_error: Optional[str] = None


def _candidate_cache_dirs():
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        yield Path(override)
        return
    # <repo>/build/native when running from a checkout (this file sits at
    # <repo>/src/repro/algorithms/_native/__init__.py)
    yield Path(__file__).resolve().parents[4] / "build" / "native"
    yield Path.home() / ".cache" / "repro-native"


def kernel_cache_dir() -> Optional[Path]:
    """First writable cache directory candidate (created on demand)."""
    for candidate in _candidate_cache_dirs():
        try:
            candidate.mkdir(parents=True, exist_ok=True)
            probe = candidate / f".probe-{os.getpid()}"
            probe.touch()
            probe.unlink()
        except OSError:
            continue
        return candidate
    return None


def _so_path(cache_dir: Path, source: bytes) -> Path:
    digest = hashlib.sha256(source).hexdigest()[:16]
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    tag = f"cp{sys.version_info.major}{sys.version_info.minor}"
    return cache_dir / f"_repro_native-{tag}-{digest}{suffix}"


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        for directory in os.environ.get("PATH", "").split(os.pathsep):
            if directory and os.access(os.path.join(directory, name), os.X_OK):
                return name
    return None


def _compile(so_path: Path, cc: str) -> None:
    include = sysconfig.get_paths()["include"]
    # Compile into a private temp file, then publish atomically: concurrent
    # first-use races (pytest workers, forked pools) at worst compile twice
    # and both os.replace the same bytes.
    fd, tmp = tempfile.mkstemp(
        suffix=so_path.suffix, prefix=so_path.stem + "-", dir=str(so_path.parent)
    )
    os.close(fd)
    cmd = [
        cc,
        "-O2",
        "-fPIC",
        "-shared",
        "-fno-strict-aliasing",
        f"-I{include}",
        str(_SOURCE),
        "-o",
        tmp,
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout or "").strip().splitlines()
            detail = tail[-1] if tail else f"exit status {proc.returncode}"
            raise RuntimeError(f"{cc} failed: {detail}")
        os.replace(tmp, so_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _load_so(so_path: Path):
    spec = importlib.util.spec_from_file_location("_repro_native", str(so_path))
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {so_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load_kernels():
    """The compiled kernel module, or ``None`` when unavailable.

    Compiles on first call (cached across processes through the shared
    object file, and within the process through a module-level memo).
    Never raises: every failure mode records a reason retrievable via
    :func:`kernel_status` and returns ``None``.
    """
    global _kernels, _error
    if _kernels is not False:
        return _kernels
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        _error = "disabled by REPRO_NATIVE_DISABLE"
        _kernels = None
        return None
    try:
        source = _SOURCE.read_bytes()
        cache_dir = kernel_cache_dir()
        if cache_dir is None:
            raise RuntimeError("no writable kernel cache directory")
        so_path = _so_path(cache_dir, source)
        if not so_path.exists():
            cc = _compiler()
            if cc is None:
                raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
            _compile(so_path, cc)
        _kernels = _load_so(so_path)
        _error = None
    except Exception as exc:  # degrade, never break the engine factory
        _error = str(exc)
        _kernels = None
    return _kernels


def kernel_status() -> dict:
    """Diagnostics for ``repro doctor``: availability and why/why not."""
    module = load_kernels()
    status = {
        "available": module is not None,
        "source": str(_SOURCE),
        "cache_dir": None,
        "so_path": getattr(module, "__file__", None),
        "error": _error,
    }
    if module is None and not os.environ.get("REPRO_NATIVE_DISABLE"):
        cache = kernel_cache_dir()
        status["cache_dir"] = str(cache) if cache else None
    elif module is not None:
        status["cache_dir"] = str(Path(module.__file__).parent)
    return status


def _reset_for_tests() -> None:
    """Forget the memoised load result (tests poke env vars between calls)."""
    global _kernels, _error
    _kernels = False
    _error = None
