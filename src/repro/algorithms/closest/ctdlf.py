"""Closest Top Down Largest First (CTDLF) -- paper Section 6.1.

Variant of CTDA with two differences:

* among the children of a node, the subtree containing the most pending
  requests is explored first;
* the traversal stops as soon as one replica has been placed, and a fresh
  traversal is started (the heuristic is therefore called exactly ``|R|``
  times, ``R`` being the final replica set).

Placing one replica at a time lets large subtrees be covered before the
pending load of their ancestors is re-evaluated, which occasionally yields a
different (sometimes cheaper, sometimes costlier) placement than CTDA.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import RequestState, make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["ClosestTopDownLargestFirst"]


@register_heuristic
class ClosestTopDownLargestFirst(PlacementHeuristic):
    """Breadth-first, most-loaded subtree first, one replica per sweep."""

    name = "CTDLF"
    policy = Policy.CLOSEST

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)
        tree = problem.tree
        sweeps = 0

        while True:
            sweeps += 1
            placed = self._single_sweep(state, tree)
            if not placed:
                break

        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name, sweeps=sweeps)

    @staticmethod
    def _single_sweep(state: RequestState, tree) -> bool:
        """One breadth-first traversal; returns ``True`` when a replica was placed."""
        fifo = deque([tree.root])
        while fifo:
            node_id = fifo.popleft()
            if state.is_replica(node_id):
                continue
            if state.can_cover(node_id):
                state.place(node_id)
                state.cover(node_id)
                return True
            children = sorted(
                tree.child_nodes(node_id),
                key=lambda child: (-state.inreq[child], repr(child)),
            )
            fifo.extend(children)
        return False
