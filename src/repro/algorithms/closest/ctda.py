"""Closest Top Down All (CTDA) -- paper Section 6.1, Algorithm 4.

The tree is traversed breadth-first from the root.  Every node that can
process *all* the requests still pending in its subtree is turned into a
replica; its subtree is then never explored again (those requests are
captured, as the Closest policy dictates).  The traversal is repeated until
a full pass adds no replica, because covering a subtree lowers the pending
load (``inreq``) of every ancestor and may make previously overloaded nodes
eligible.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import RequestState, make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["ClosestTopDownAll", "closest_cover_eligible"]


def closest_cover_eligible(state: RequestState, node_id) -> bool:
    """Can ``node_id`` capture the whole remaining load of its subtree?

    Thin wrapper kept for backwards compatibility: the eligibility test now
    lives on the state (:meth:`RequestState.can_cover`) so each engine can
    supply its own implementation -- the native engine checks the QoS of the
    whole span in one kernel call instead of one predicate per client.
    """
    return state.can_cover(node_id)


@register_heuristic
class ClosestTopDownAll(PlacementHeuristic):
    """Breadth-first sweeps placing every eligible replica per sweep."""

    name = "CTDA"
    policy = Policy.CLOSEST

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)
        tree = problem.tree
        passes = 0

        while True:
            passes += 1
            added = False
            fifo = deque([tree.root])
            while fifo:
                node_id = fifo.popleft()
                if state.is_replica(node_id):
                    # The subtree is fully captured; never look below a replica.
                    continue
                if state.can_cover(node_id):
                    state.place(node_id)
                    state.cover(node_id)
                    added = True
                else:
                    fifo.extend(tree.child_nodes(node_id))
            if not added:
                break

        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name, passes=passes)
