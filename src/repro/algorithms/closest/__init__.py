"""Heuristics for the *Closest* access policy (paper Section 6.1).

* :class:`ClosestTopDownAll` (CTDA) -- repeated breadth-first traversals
  placing a replica on every node able to absorb its whole subtree;
* :class:`ClosestTopDownLargestFirst` (CTDLF) -- breadth-first traversal
  visiting the most-loaded subtree first and stopping at the first replica
  placed, repeated until no more replicas are added;
* :class:`ClosestBottomUp` (CBU) -- bottom-up traversal placing a replica on
  every node able to absorb the remaining requests of its subtree.

Under the Closest policy a replica automatically captures *all* requests of
its subtree that are not already captured by a lower replica, so all three
heuristics place a replica only when the node's capacity covers the whole
remaining subtree load.
"""

from repro.algorithms.closest.ctda import ClosestTopDownAll
from repro.algorithms.closest.ctdlf import ClosestTopDownLargestFirst
from repro.algorithms.closest.cbu import ClosestBottomUp

__all__ = ["ClosestTopDownAll", "ClosestTopDownLargestFirst", "ClosestBottomUp"]
