"""Closest Bottom Up (CBU) -- paper Section 6.1, Algorithm 5.

The internal nodes are processed bottom-up (every child before its parent).
A node becomes a replica as soon as it can process all requests of its
subtree that are not yet captured by a lower replica.  Because the sweep is
bottom-up, replicas tend to be placed close to the clients; the heuristic
naturally respects the Closest semantics (no replica is ever placed below an
existing one, and every client remains served by its lowest replica
ancestor).
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["ClosestBottomUp"]


@register_heuristic
class ClosestBottomUp(PlacementHeuristic):
    """Bottom-up sweep placing a replica on every node able to cover its subtree."""

    name = "CBU"
    policy = Policy.CLOSEST

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)
        tree = problem.tree

        for node_id in tree.post_order_nodes():
            if state.can_cover(node_id):
                state.place(node_id)
                state.cover(node_id)

        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name)
