"""Optimal algorithm for the Multiple policy on homogeneous platforms.

This is the paper's main algorithmic contribution (Section 4.1, Theorem 1):
the *Replica Counting* problem with the Multiple strategy is polynomial, and
the following three-pass greedy builds an optimal replica set.

Pass 1 (Algorithm 1)
    Compute the request *flow* bottom-up; every time the flow reaching a
    node is at least the uniform capacity ``W``, place a replica there (it
    will be fully saturated) and subtract ``W`` from the flow continuing
    upwards.

Shortcut
    After Pass 1, if the residual flow at the root is zero the placement is
    complete; if it is at most ``W`` and the root is still free, a single
    extra replica at the root finishes the job.  Both cases are optimal.

Pass 2 (Algorithm 2)
    Otherwise extra, non-saturated replicas are needed.  While some flow
    still reaches the root, compute the *useful flow*
    ``uflow_j = min(flow_k : k on the path j -> root)`` of every node, place
    a replica on the free node with maximum useful flow, and subtract that
    amount from the flows of the node and all its ancestors.  If no free
    node has positive useful flow the instance is infeasible.

Pass 3 (Algorithm 3)
    Affect requests to the chosen replicas bottom-up.  We reuse the exact
    bottom-up saturating assignment of
    :func:`repro.core.feasibility.multiple_assignment`, which performs the
    same affectation as the paper's Pass 3 (serve requests as low as
    possible, splitting at most one client per server).

The optimality proof (paper Section 4.1.3) shows any optimal solution can be
transformed into the canonical solution this greedy produces.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.core.exceptions import InfeasibleError, TreeStructureError
from repro.core.feasibility import multiple_assignment
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.tree import NodeId

__all__ = ["MultipleHomogeneousOptimal", "optimal_multiple_homogeneous_placement"]

_TOL = 1e-9


def optimal_multiple_homogeneous_placement(problem: ReplicaPlacementProblem) -> set:
    """Return the optimal replica set for Multiple on a homogeneous tree.

    Raises
    ------
    TreeStructureError
        If the platform is heterogeneous.
    InfeasibleError
        If the instance has no solution (total capacity insufficient even
        when every node carries a replica).
    """
    tree = problem.tree
    if not tree.is_homogeneous():
        raise TreeStructureError(
            "the optimal three-pass algorithm only applies to homogeneous platforms"
        )
    capacity = tree.uniform_capacity()
    total_requests = tree.total_requests()
    if total_requests <= _TOL:
        return set()
    if capacity <= 0:
        raise InfeasibleError(
            "nodes have zero capacity; no request can be served", policy=Policy.MULTIPLE
        )

    # ------------------------------------------------------------------ #
    # Pass 1: saturated replicas, bottom-up flow computation.
    # ------------------------------------------------------------------ #
    flow: Dict[NodeId, float] = {}
    replicas: set = set()
    for client in tree.clients():
        flow[client.id] = float(client.requests)
    for node_id in tree.post_order_nodes():
        incoming = sum(flow[child] for child in tree.children(node_id))
        if incoming >= capacity - _TOL:
            replicas.add(node_id)
            incoming -= capacity
        flow[node_id] = incoming

    root = tree.root
    root_flow = flow[root]

    # Shortcut: Pass 2 is unnecessary when the root can absorb the residue.
    if root_flow <= _TOL:
        return replicas
    if root_flow <= capacity + _TOL and root not in replicas:
        replicas.add(root)
        return replicas

    # ------------------------------------------------------------------ #
    # Pass 2: extra (non saturated) replicas chosen by maximum useful flow.
    # ------------------------------------------------------------------ #
    while flow[root] > _TOL:
        free_nodes = [nid for nid in tree.node_ids if nid not in replicas]
        if not free_nodes:
            raise InfeasibleError(
                "all nodes already hold a replica but requests remain unserved",
                policy=Policy.MULTIPLE,
            )
        # Useful flow: top-down minimum of flows along the path to the root.
        uflow: Dict[NodeId, float] = {root: flow[root]}
        for node_id in tree.breadth_first_nodes():
            if node_id == root:
                continue
            parent = tree.parent(node_id)
            uflow[node_id] = min(flow[node_id], uflow[parent])

        best_node: Optional[NodeId] = None
        best_value = 0.0
        for node_id in free_nodes:
            value = uflow[node_id]
            if value <= _TOL:
                continue
            better = value > best_value + _TOL
            tie = (
                best_node is not None
                and abs(value - best_value) <= _TOL
                and repr(node_id) < repr(best_node)
            )
            if better or tie:
                best_node, best_value = node_id, value
        if best_node is None or best_value <= _TOL:
            raise InfeasibleError(
                "no free node can absorb the remaining requests "
                f"({flow[root]:g} still reach the root)",
                policy=Policy.MULTIPLE,
            )

        replicas.add(best_node)
        amount = min(best_value, capacity)
        for node_id in (best_node,) + tree.ancestors(best_node):
            flow[node_id] -= amount

    return replicas


@register_heuristic
class MultipleHomogeneousOptimal(PlacementHeuristic):
    """Paper Section 4.1: optimal Multiple placement on homogeneous trees.

    The heuristic interface is shared with the polynomial heuristics so the
    experiment harness can include the optimal algorithm as a baseline on
    homogeneous campaigns.
    """

    name = "MultipleOptimalHomogeneous"
    policy = Policy.MULTIPLE

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        replicas = optimal_multiple_homogeneous_placement(problem)
        solution = multiple_assignment(problem, replicas)
        return Solution(
            placement=solution.placement,
            assignment=solution.assignment,
            policy=Policy.MULTIPLE,
            algorithm=self.name,
            metadata={"passes": 3},
        )
