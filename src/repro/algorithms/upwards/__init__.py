"""Heuristics for the *Upwards* access policy (paper Section 6.2).

* :class:`UpwardsTopDown` (UTD) -- two passes: a depth-first pass placing a
  replica on every node exhausted by its subtree load and affecting whole
  clients to it (largest first), then a top-down pass adding non-exhausted
  replicas for the remaining requests;
* :class:`UpwardsBigClientFirst` (UBCF) -- clients are processed in
  non-increasing request order and each is affected, whole, to the ancestor
  with the smallest residual capacity that can host it.
"""

from repro.algorithms.upwards.utd import UpwardsTopDown
from repro.algorithms.upwards.ubcf import UpwardsBigClientFirst

__all__ = ["UpwardsTopDown", "UpwardsBigClientFirst"]
