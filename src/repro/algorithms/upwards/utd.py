"""Upwards Top Down (UTD) -- paper Section 6.2, Algorithms 6-8.

First pass (depth-first, top-down): every node whose pending subtree load
``inreq_s`` reaches its capacity is turned into a replica, and whole clients
of its subtree are affected to it in non-increasing request order until the
capacity is filled or no remaining client fits (Algorithm 6,
``deleteRequests``).

Second pass (top-down): if requests remain, replicas are added on the
highest free nodes that still see pending requests, and the pending clients
of their subtrees are affected to them.  Nodes that already hold a replica
are skipped and the search continues below them.

The heuristic fails on the instance when some requests remain unaffected at
the end (e.g. pending clients attached directly to a first-pass replica with
no free node on their path), exactly like the paper's success-rate
accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import RequestState, make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["UpwardsTopDown"]

_TOL = 1e-9


@register_heuristic
class UpwardsTopDown(PlacementHeuristic):
    """Two-pass top-down heuristic for the Upwards policy."""

    name = "UTD"
    policy = Policy.UPWARDS

    #: whether the last client affected to a server may be split
    #: (``False`` for Upwards, overridden by the Multiple variant MTD).
    split_last = False
    #: order in which clients are drained from a subtree.
    largest_first = True

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)
        tree = problem.tree

        self._first_pass(state, tree, tree.root)
        if not state.all_requests_affected():
            self._second_pass(state, tree, tree.root)

        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name)

    # ------------------------------------------------------------------ #
    def _first_pass(self, state: RequestState, tree, node_id) -> None:
        """Depth-first pass placing replicas on exhausted nodes (Algorithm 7)."""
        capacity = state.problem.capacity(node_id)
        if state.inreq[node_id] >= capacity - _TOL and state.inreq[node_id] > _TOL:
            state.place(node_id)
            state.drain(
                node_id,
                capacity,
                largest_first=self.largest_first,
                split_last=self.split_last,
            )
        for child in tree.child_nodes(node_id):
            self._first_pass(state, tree, child)

    def _second_pass(self, state: RequestState, tree, node_id) -> None:
        """Top-down pass adding non-exhausted replicas (Algorithm 8)."""
        if not state.is_replica(node_id) and state.inreq[node_id] > _TOL:
            state.place(node_id)
            state.drain(
                node_id,
                state.inreq[node_id],
                largest_first=self.largest_first,
                split_last=self.split_last,
            )
            return
        for child in tree.child_nodes(node_id):
            if state.inreq[child] > _TOL:
                self._second_pass(state, tree, child)
