"""Upwards Top Down (UTD) -- paper Section 6.2, Algorithms 6-8.

First pass (depth-first, top-down): every node whose pending subtree load
``inreq_s`` reaches its capacity is turned into a replica, and whole clients
of its subtree are affected to it in non-increasing request order until the
capacity is filled or no remaining client fits (Algorithm 6,
``deleteRequests``).

Second pass (top-down): if requests remain, replicas are added on the
highest free nodes that still see pending requests, and the pending clients
of their subtrees are affected to them.  Nodes that already hold a replica
are skipped and the search continues below them.

The heuristic fails on the instance when some requests remain unaffected at
the end (e.g. pending clients attached directly to a first-pass replica with
no free node on their path), exactly like the paper's success-rate
accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["UpwardsTopDown"]


@register_heuristic
class UpwardsTopDown(PlacementHeuristic):
    """Two-pass top-down heuristic for the Upwards policy.

    Both passes are engine methods (the paper's Algorithms 7 and 8 live in
    :meth:`RequestState.first_pass_sweep` / :meth:`second_pass_sweep`), so
    each engine supplies its own traversal -- the native engine runs them
    as single compiled kernel calls.
    """

    name = "UTD"
    policy = Policy.UPWARDS

    #: whether the last client affected to a server may be split
    #: (``False`` for Upwards, overridden by the Multiple variant MTD).
    split_last = False
    #: order in which clients are drained from a subtree.
    largest_first = True

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)

        state.first_pass_sweep(
            order="pre",
            largest_first=self.largest_first,
            split_last=self.split_last,
        )
        if not state.all_requests_affected():
            state.second_pass_sweep(
                largest_first=self.largest_first, split_last=self.split_last
            )

        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name)
