"""Upwards Big Client First (UBCF) -- paper Section 6.2, Algorithm 9.

Clients are processed in non-increasing order of their request count.  Each
client is affected, whole, to the ancestor with the *minimal residual
capacity* among those that can still host all its requests (a best-fit rule
along the client-to-root path); that ancestor becomes a replica if it was
not one already.  The heuristic fails as soon as a client has no valid
ancestor left.

This is the only heuristic of the paper that reasons client-by-client rather
than node-by-node; the paper observes it finds solutions more often than the
other single-server heuristics.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import PlacementHeuristic, register_heuristic
from repro.algorithms.common import make_state
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["UpwardsBigClientFirst"]


@register_heuristic
class UpwardsBigClientFirst(PlacementHeuristic):
    """Best-fit affectation of whole clients, largest clients first."""

    name = "UBCF"
    policy = Policy.UPWARDS

    def _solve(self, problem: ReplicaPlacementProblem) -> Optional[Solution]:
        state = make_state(problem)
        tree = problem.tree

        clients = sorted(
            (c for c in tree.clients() if c.requests > 0),
            key=lambda c: (-c.requests, repr(c.id)),
        )
        for client in clients:
            # Best fit along the client's eligible ancestor chain (the rule
            # lives on the state so the native engine can walk the chain in
            # C; see RequestState.best_fit_server for the tie-breaking).
            target = state.best_fit_server(client.id, client.requests)
            if target is None:
                return None
            state.place(target)
            state.assign(client.id, target, client.requests)

        return state.to_solution(self.policy, self.name)
