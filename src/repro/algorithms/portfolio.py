"""The per-policy heuristic portfolio behind every full solve.

One epoch solve picks the best answer from a small, fixed portfolio of the
paper's heuristics (plus the provably-optimal algorithm for Multiple on
homogeneous platforms).  The logic used to live inside
:func:`repro.api.solve`; it is a free-standing function so that both the
session layer (:class:`repro.session.PlacementSession`) and the incremental
re-solver (:class:`repro.algorithms.incremental.IncrementalResolver`) can
run it directly without routing through the public API shims -- results are
identical whichever entry point is used.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple, Union

from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution

__all__ = ["DEFAULT_PORTFOLIO", "portfolio_solve"]

#: Heuristics tried (in order) per policy when no explicit algorithm is given.
DEFAULT_PORTFOLIO: Dict[Policy, Tuple[str, ...]] = {
    Policy.CLOSEST: ("CTDA", "CTDLF", "CBU"),
    Policy.UPWARDS: ("UBCF", "UTD"),
    Policy.MULTIPLE: ("MTD", "MBU", "MG"),
}


def portfolio_solve(
    problem: ReplicaPlacementProblem,
    *,
    policy: Union[Policy, str] = Policy.MULTIPLE,
    algorithm: Optional[str] = None,
) -> Solution:
    """Solve one fully-specified instance under ``policy``.

    With an explicit ``algorithm``, that heuristic runs alone (and raises
    whatever it raises on failure).  Otherwise the policy's portfolio runs
    and the cheapest valid solution wins; for Multiple on homogeneous
    platforms the provably-optimal algorithm is tried first and, when it
    succeeds, returned without consulting the heuristics.

    Raises
    ------
    InfeasibleError
        When no algorithm produces a valid solution.
    """
    from repro.algorithms.base import get_heuristic

    policy = Policy.parse(policy)
    if algorithm is not None:
        return get_heuristic(algorithm).solve(problem)

    candidates = list(DEFAULT_PORTFOLIO[policy])
    if policy is Policy.MULTIPLE and problem.is_homogeneous:
        candidates = ["MultipleOptimalHomogeneous"] + candidates

    best: Optional[Solution] = None
    best_cost = math.inf
    for name in candidates:
        candidate = get_heuristic(name).try_solve(problem)
        if candidate is None:
            continue
        cost = candidate.cost(problem)
        if cost < best_cost:
            best, best_cost = candidate, cost
        if name == "MultipleOptimalHomogeneous":
            # Provably optimal: no need to try the heuristics.
            break
    if best is None:
        raise InfeasibleError(
            f"no valid solution found under the {policy.value} policy", policy=policy
        )
    return best
