"""Shared bookkeeping used by every placement heuristic.

All eight heuristics of paper Section 6 manipulate the same few quantities:

* ``inreq_j`` -- the number of requests issued in ``subtree(j)`` that are not
  yet affected to a server and therefore "reach" node ``j``;
* the remaining (unaffected) requests ``r'_i`` of every client;
* the replica set built so far;
* the explicit request affectation ``w_{s,i}`` (how many requests of client
  ``i`` the heuristic decided server ``s`` will process).

:class:`RequestState` centralises this mutable state together with the
paper's two *delete requests* procedures (Algorithms 6 and 10): draining
whole clients from a subtree in non-increasing or non-decreasing request
order, with or without splitting the last client.

Heuristics honour the problem's QoS constraint (when one is configured) by
only affecting a client to a server within its QoS bound; with the default
"no QoS" constraint set this filtering is inactive and the behaviour matches
the paper exactly.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Assignment, Placement, Solution
from repro.core.tree import NodeId

__all__ = [
    "RequestState",
    "make_state",
    "available_engines",
    "get_default_engine",
    "set_default_engine",
    "use_engine",
]

_TOL = 1e-9

#: The two interchangeable state engines: the paper-faithful dict
#: implementation below and the indexed array implementation of
#: :mod:`repro.algorithms.fast_state`.
_ENGINES = ("dict", "fast")

#: The selected engine lives in a :class:`~contextvars.ContextVar` so that
#: concurrent batch calls (threads, async tasks) switching engines never
#: clobber each other; forked worker processes inherit the parent's value.
#: Every new thread starts from the ``REPRO_ENGINE`` environment default.
_engine_var: contextvars.ContextVar = contextvars.ContextVar(
    "repro_engine", default=os.environ.get("REPRO_ENGINE", "fast")
)


def available_engines() -> Tuple[str, ...]:
    """Names of the available request-state engines."""
    return _ENGINES


def get_default_engine() -> str:
    """Engine used when :func:`make_state` is called without an override."""
    return _engine_var.get()


def set_default_engine(engine: str) -> str:
    """Select the default engine; returns the previous default.

    The initial default is the ``REPRO_ENGINE`` environment variable when
    set, and the indexed ``"fast"`` engine otherwise (the two engines are
    pinned to each other by the equivalence test suite).  The selection is
    context-local: it applies to the current thread / async context and to
    worker processes forked from it.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; available: {_ENGINES}")
    previous = _engine_var.get()
    _engine_var.set(engine)
    return previous


@contextlib.contextmanager
def use_engine(engine: str) -> Iterator[str]:
    """Context manager temporarily switching the default engine."""
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; available: {_ENGINES}")
    token = _engine_var.set(engine)
    try:
        yield engine
    finally:
        _engine_var.reset(token)


def make_state(problem: ReplicaPlacementProblem, engine: Optional[str] = None) -> "RequestState":
    """Build the request-affectation state every heuristic runs on.

    ``engine`` forces ``"dict"`` (the seed implementation below) or
    ``"fast"`` (the array-backed :class:`~repro.algorithms.fast_state.FastRequestState`);
    by default the engine selected by :func:`set_default_engine` /
    :func:`use_engine` is used.
    """
    engine = engine or _engine_var.get()
    if engine == "dict":
        return RequestState(problem)
    if engine == "fast":
        from repro.algorithms.fast_state import FastRequestState

        return FastRequestState(problem)
    raise ValueError(f"unknown engine {engine!r}; available: {_ENGINES}")


class RequestState:
    """Mutable request-affectation state shared by the heuristics."""

    def __init__(self, problem: ReplicaPlacementProblem):
        self.problem = problem
        self.tree = problem.tree
        #: remaining (not yet affected) requests of every client, ``r'_i``
        self.remaining: Dict[NodeId, float] = {
            client.id: float(client.requests) for client in self.tree.clients()
        }
        #: requests still reaching each internal node, ``inreq_j``
        self.inreq: Dict[NodeId, float] = {
            node_id: self.tree.subtree_requests(node_id) for node_id in self.tree.node_ids
        }
        #: replica set built so far
        self.replicas: set = set()
        #: residual capacity of each internal node
        self.residual: Dict[NodeId, float] = {
            node_id: problem.capacity(node_id) for node_id in self.tree.node_ids
        }
        #: explicit affectation ``(client, server) -> requests``
        self.amounts: Dict[Tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------ #
    # elementary operations
    # ------------------------------------------------------------------ #
    def place(self, node_id: NodeId) -> None:
        """Add ``node_id`` to the replica set (idempotent)."""
        self.replicas.add(node_id)

    def is_replica(self, node_id: NodeId) -> bool:
        """``True`` when ``node_id`` already carries a replica."""
        return node_id in self.replicas

    def assign(self, client_id: NodeId, server_id: NodeId, amount: float) -> None:
        """Affect ``amount`` requests of ``client_id`` to ``server_id``.

        Updates the client's remaining requests, the server's residual
        capacity and the ``inreq`` of every ancestor of the client (the
        affected requests no longer travel past their server, and by
        convention no longer count anywhere on the path: the paper's
        ``inreq`` bookkeeping subtracts them from *all* ancestors).
        """
        if amount <= _TOL:
            return
        self.remaining[client_id] -= amount
        self.residual[server_id] -= amount
        key = (client_id, server_id)
        self.amounts[key] = self.amounts.get(key, 0.0) + amount
        for ancestor in self.tree.ancestors(client_id):
            self.inreq[ancestor] -= amount

    # ------------------------------------------------------------------ #
    # client queries
    # ------------------------------------------------------------------ #
    def pending_clients(self, node_id: NodeId) -> List[NodeId]:
        """Clients of ``subtree(node_id)`` that still have unaffected requests."""
        return [
            cid
            for cid in self.tree.subtree_clients(node_id)
            if self.remaining[cid] > _TOL
        ]

    def eligible_pending_clients(self, server_id: NodeId) -> List[NodeId]:
        """Pending clients of ``subtree(server_id)`` the server may serve (QoS)."""
        return [
            cid
            for cid in self.pending_clients(server_id)
            if self.problem.qos_satisfied(cid, server_id)
        ]

    def eligible_inreq(self, server_id: NodeId) -> float:
        """Requests reaching ``server_id`` that it would be allowed to serve."""
        return sum(self.remaining[cid] for cid in self.eligible_pending_clients(server_id))

    def total_pending(self) -> float:
        """Total number of requests not yet affected to any server."""
        return sum(self.remaining.values())

    # ------------------------------------------------------------------ #
    # the paper's delete-requests procedures
    # ------------------------------------------------------------------ #
    def drain(
        self,
        server_id: NodeId,
        budget: float,
        *,
        largest_first: bool = True,
        split_last: bool = False,
    ) -> float:
        """Affect up to ``budget`` requests from ``subtree(server_id)`` to the server.

        Clients are considered whole, in non-increasing (``largest_first``)
        or non-decreasing request order, exactly like the paper's
        ``deleteRequests`` (Algorithm 6).  With ``split_last`` the last
        client may be affected partially to exhaust the budget, like
        ``deleteRequestsInMTD`` (Algorithm 10).

        Returns the number of requests actually affected.
        """
        if budget <= _TOL:
            return 0.0
        clients = self.eligible_pending_clients(server_id)
        clients.sort(key=lambda cid: (-self.remaining[cid], repr(cid)))
        if not largest_first:
            clients.sort(key=lambda cid: (self.remaining[cid], repr(cid)))

        drained = 0.0
        for client_id in clients:
            pending = self.remaining[client_id]
            if pending <= budget + _TOL:
                self.assign(client_id, server_id, pending)
                budget -= pending
                drained += pending
                if budget <= _TOL:
                    break
            elif split_last:
                self.assign(client_id, server_id, budget)
                drained += budget
                budget = 0.0
                break
            # Whole-client mode: a client larger than the remaining budget is
            # simply skipped (the paper tries the next, smaller, client).
        return drained

    def cover(self, server_id: NodeId) -> float:
        """Affect *all* eligible pending requests of ``subtree(server_id)`` to the server.

        Used by the Closest heuristics once ``W_s >= inreq_s`` guarantees the
        whole subtree fits.  Returns the amount affected.
        """
        covered = 0.0
        for client_id in self.eligible_pending_clients(server_id):
            pending = self.remaining[client_id]
            self.assign(client_id, server_id, pending)
            covered += pending
        return covered

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def to_solution(self, policy: Policy, algorithm: str, **metadata) -> Solution:
        """Freeze the current state into a :class:`~repro.core.solution.Solution`."""
        return Solution(
            placement=Placement(self.replicas),
            assignment=Assignment(self.amounts),
            policy=policy,
            algorithm=algorithm,
            metadata=metadata,
        )

    def all_requests_affected(self, tolerance: float = 1e-6) -> bool:
        """``True`` when every client request has been affected to a server."""
        return self.total_pending() <= tolerance

    def unserved_summary(self) -> str:
        """Human-readable list of clients that still have pending requests."""
        pending = {
            cid: round(value, 6)
            for cid, value in self.remaining.items()
            if value > 1e-6
        }
        return ", ".join(f"{cid!r}: {value:g}" for cid, value in sorted(pending.items(), key=lambda kv: repr(kv[0])))
