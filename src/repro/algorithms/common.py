"""Shared bookkeeping used by every placement heuristic.

All eight heuristics of paper Section 6 manipulate the same few quantities:

* ``inreq_j`` -- the number of requests issued in ``subtree(j)`` that are not
  yet affected to a server and therefore "reach" node ``j``;
* the remaining (unaffected) requests ``r'_i`` of every client;
* the replica set built so far;
* the explicit request affectation ``w_{s,i}`` (how many requests of client
  ``i`` the heuristic decided server ``s`` will process).

:class:`RequestState` centralises this mutable state together with the
paper's two *delete requests* procedures (Algorithms 6 and 10): draining
whole clients from a subtree in non-increasing or non-decreasing request
order, with or without splitting the last client.

Heuristics honour the problem's QoS constraint (when one is configured) by
only affecting a client to a server within its QoS bound; with the default
"no QoS" constraint set this filtering is inactive and the behaviour matches
the paper exactly.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Assignment, Placement, Solution
from repro.core.tree import NodeId

__all__ = [
    "RequestState",
    "make_state",
    "available_engines",
    "get_default_engine",
    "set_default_engine",
    "use_engine",
]

_TOL = 1e-9


def _make_dict_state(problem: "ReplicaPlacementProblem") -> "RequestState":
    return RequestState(problem)


def _make_fast_state(problem: "ReplicaPlacementProblem") -> "RequestState":
    from repro.algorithms.fast_state import FastRequestState

    return FastRequestState(problem)


def _make_native_state(problem: "ReplicaPlacementProblem") -> "RequestState":
    from repro.algorithms.native_state import create_native_state

    return create_native_state(problem)


#: The interchangeable state engines: the paper-faithful dict implementation
#: below, the indexed array implementation of
#: :mod:`repro.algorithms.fast_state`, and the compiled-kernel implementation
#: of :mod:`repro.algorithms.native_state` (which falls back to ``fast`` when
#: no C compiler is available, so every name here is always valid).
#: ``_ENGINES`` and every engine-listing error message derive from this
#: registry, so they cannot drift from the factory.
_ENGINE_FACTORIES = {
    "dict": _make_dict_state,
    "fast": _make_fast_state,
    "native": _make_native_state,
}

_ENGINES = tuple(_ENGINE_FACTORIES)


def _engine_names() -> str:
    return ", ".join(_ENGINES)

#: The selected engine lives in a :class:`~contextvars.ContextVar` so that
#: concurrent batch calls (threads, async tasks) switching engines never
#: clobber each other; forked worker processes inherit the parent's value.
#: Every new thread starts from the ``REPRO_ENGINE`` environment default.
_engine_var: contextvars.ContextVar = contextvars.ContextVar(
    "repro_engine", default=os.environ.get("REPRO_ENGINE", "fast")
)


def available_engines() -> Tuple[str, ...]:
    """Names of the available request-state engines."""
    return _ENGINES


def get_default_engine() -> str:
    """Engine used when :func:`make_state` is called without an override."""
    return _engine_var.get()


def set_default_engine(engine: str) -> str:
    """Select the default engine; returns the previous default.

    The initial default is the ``REPRO_ENGINE`` environment variable when
    set, and the indexed ``"fast"`` engine otherwise (the two engines are
    pinned to each other by the equivalence test suite).  The selection is
    context-local: it applies to the current thread / async context and to
    worker processes forked from it.
    """
    if engine not in _ENGINE_FACTORIES:
        raise ValueError(f"unknown engine {engine!r}; available: {_engine_names()}")
    previous = _engine_var.get()
    _engine_var.set(engine)
    return previous


@contextlib.contextmanager
def use_engine(engine: str) -> Iterator[str]:
    """Context manager temporarily switching the default engine."""
    if engine not in _ENGINE_FACTORIES:
        raise ValueError(f"unknown engine {engine!r}; available: {_engine_names()}")
    token = _engine_var.set(engine)
    try:
        yield engine
    finally:
        _engine_var.reset(token)


def make_state(problem: ReplicaPlacementProblem, engine: Optional[str] = None) -> "RequestState":
    """Build the request-affectation state every heuristic runs on.

    ``engine`` forces one of ``"dict"`` (the seed implementation below),
    ``"fast"`` (the array-backed
    :class:`~repro.algorithms.fast_state.FastRequestState`) or ``"native"``
    (the compiled-kernel
    :class:`~repro.algorithms.native_state.NativeRequestState`, which falls
    back to ``fast`` with a stderr note when the kernels cannot be built);
    by default the engine selected by :func:`set_default_engine` /
    :func:`use_engine` is used.
    """
    engine = engine or _engine_var.get()
    factory = _ENGINE_FACTORIES.get(engine)
    if factory is None:
        raise ValueError(f"unknown engine {engine!r}; available: {_engine_names()}")
    return factory(problem)


class RequestState:
    """Mutable request-affectation state shared by the heuristics."""

    def __init__(self, problem: ReplicaPlacementProblem):
        self.problem = problem
        self.tree = problem.tree
        #: remaining (not yet affected) requests of every client, ``r'_i``
        self.remaining: Dict[NodeId, float] = {
            client.id: float(client.requests) for client in self.tree.clients()
        }
        #: requests still reaching each internal node, ``inreq_j``
        self.inreq: Dict[NodeId, float] = {
            node_id: self.tree.subtree_requests(node_id) for node_id in self.tree.node_ids
        }
        #: replica set built so far
        self.replicas: set = set()
        #: residual capacity of each internal node
        self.residual: Dict[NodeId, float] = {
            node_id: problem.capacity(node_id) for node_id in self.tree.node_ids
        }
        #: explicit affectation ``(client, server) -> requests``
        self.amounts: Dict[Tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------ #
    # elementary operations
    # ------------------------------------------------------------------ #
    def place(self, node_id: NodeId) -> None:
        """Add ``node_id`` to the replica set (idempotent)."""
        self.replicas.add(node_id)

    def is_replica(self, node_id: NodeId) -> bool:
        """``True`` when ``node_id`` already carries a replica."""
        return node_id in self.replicas

    def assign(self, client_id: NodeId, server_id: NodeId, amount: float) -> None:
        """Affect ``amount`` requests of ``client_id`` to ``server_id``.

        Updates the client's remaining requests, the server's residual
        capacity and the ``inreq`` of every ancestor of the client (the
        affected requests no longer travel past their server, and by
        convention no longer count anywhere on the path: the paper's
        ``inreq`` bookkeeping subtracts them from *all* ancestors).
        """
        if amount <= _TOL:
            return
        self.remaining[client_id] -= amount
        self.residual[server_id] -= amount
        key = (client_id, server_id)
        self.amounts[key] = self.amounts.get(key, 0.0) + amount
        for ancestor in self.tree.ancestors(client_id):
            self.inreq[ancestor] -= amount

    # ------------------------------------------------------------------ #
    # client queries
    # ------------------------------------------------------------------ #
    def pending_clients(self, node_id: NodeId) -> List[NodeId]:
        """Clients of ``subtree(node_id)`` that still have unaffected requests."""
        return [
            cid
            for cid in self.tree.subtree_clients(node_id)
            if self.remaining[cid] > _TOL
        ]

    def eligible_pending_clients(self, server_id: NodeId) -> List[NodeId]:
        """Pending clients of ``subtree(server_id)`` the server may serve (QoS)."""
        return [
            cid
            for cid in self.pending_clients(server_id)
            if self.problem.qos_satisfied(cid, server_id)
        ]

    def eligible_inreq(self, server_id: NodeId) -> float:
        """Requests reaching ``server_id`` that it would be allowed to serve."""
        return sum(self.remaining[cid] for cid in self.eligible_pending_clients(server_id))

    def total_pending(self) -> float:
        """Total number of requests not yet affected to any server."""
        return sum(self.remaining.values())

    # ------------------------------------------------------------------ #
    # the paper's delete-requests procedures
    # ------------------------------------------------------------------ #
    def drain(
        self,
        server_id: NodeId,
        budget: float,
        *,
        largest_first: bool = True,
        split_last: bool = False,
    ) -> float:
        """Affect up to ``budget`` requests from ``subtree(server_id)`` to the server.

        Clients are considered whole, in non-increasing (``largest_first``)
        or non-decreasing request order, exactly like the paper's
        ``deleteRequests`` (Algorithm 6).  With ``split_last`` the last
        client may be affected partially to exhaust the budget, like
        ``deleteRequestsInMTD`` (Algorithm 10).

        Returns the number of requests actually affected.
        """
        if budget <= _TOL:
            return 0.0
        clients = self.eligible_pending_clients(server_id)
        clients.sort(key=lambda cid: (-self.remaining[cid], repr(cid)))
        if not largest_first:
            clients.sort(key=lambda cid: (self.remaining[cid], repr(cid)))

        drained = 0.0
        for client_id in clients:
            pending = self.remaining[client_id]
            if pending <= budget + _TOL:
                self.assign(client_id, server_id, pending)
                budget -= pending
                drained += pending
                if budget <= _TOL:
                    break
            elif split_last:
                self.assign(client_id, server_id, budget)
                drained += budget
                budget = 0.0
                break
            # Whole-client mode: a client larger than the remaining budget is
            # simply skipped (the paper tries the next, smaller, client).
        return drained

    def cover(self, server_id: NodeId) -> float:
        """Affect *all* eligible pending requests of ``subtree(server_id)`` to the server.

        Used by the Closest heuristics once ``W_s >= inreq_s`` guarantees the
        whole subtree fits.  Returns the amount affected.
        """
        covered = 0.0
        for client_id in self.eligible_pending_clients(server_id):
            pending = self.remaining[client_id]
            self.assign(client_id, server_id, pending)
            covered += pending
        return covered

    # ------------------------------------------------------------------ #
    # heuristic inner loops
    #
    # The traversal loops below used to live inside the individual
    # heuristics; hoisting them onto the state lets each engine supply its
    # own implementation (the native engine runs them as single C kernel
    # calls).  The bodies here are verbatim copies of the original
    # heuristic code, so the dict and fast engines behave exactly as
    # before.
    # ------------------------------------------------------------------ #
    def can_cover(self, node_id: NodeId) -> bool:
        """Can ``node_id`` capture the whole remaining load of its subtree?

        Under the Closest policy a replica automatically serves every
        pending client of its subtree, so the node must have enough capacity
        for all of them and (when QoS is enforced) be within the QoS bound
        of each (paper Algorithms 4-5 eligibility test).
        """
        pending = self.inreq[node_id]
        if pending <= _TOL:
            return False
        if self.problem.capacity(node_id) + _TOL < pending:
            return False
        if self.problem.constraints.has_qos:
            for client_id in self.pending_clients(node_id):
                if not self.problem.qos_satisfied(client_id, node_id):
                    return False
        return True

    def first_pass_sweep(
        self, *, order: str = "pre", largest_first: bool = True, split_last: bool = False
    ) -> None:
        """Place a replica on every *exhausted* node and fill it by draining.

        The saturation pass shared by UTD / MTD (``order="pre"``, paper
        Algorithm 7) and MBU (``order="post"``, Algorithm 11): every node
        whose pending subtree load reaches its capacity becomes a replica
        and is filled via :meth:`drain` with the given client order and
        splitting rule.
        """
        problem = self.problem
        tree = self.tree
        if order == "post":
            node_ids: Iterable[NodeId] = tree.post_order_nodes()
        else:
            node_ids = _pre_order_nodes(tree)
        for node_id in node_ids:
            capacity = problem.capacity(node_id)
            if self.inreq[node_id] >= capacity - _TOL and self.inreq[node_id] > _TOL:
                self.place(node_id)
                self.drain(
                    node_id,
                    capacity,
                    largest_first=largest_first,
                    split_last=split_last,
                )

    def second_pass_sweep(
        self, *, largest_first: bool = True, split_last: bool = False
    ) -> None:
        """Top-down completion pass adding non-exhausted replicas.

        Shared by UTD / MTD (paper Algorithm 8) and MBU (Algorithm 12): a
        replica is placed on the highest free node that still sees pending
        requests, everything it may serve is drained into it, and the
        traversal never descends below a fresh replica; subtrees with
        nothing pending are skipped.
        """
        self._second_pass_visit(self.tree.root, largest_first, split_last)

    def _second_pass_visit(
        self, node_id: NodeId, largest_first: bool, split_last: bool
    ) -> None:
        if not self.is_replica(node_id) and self.inreq[node_id] > _TOL:
            self.place(node_id)
            self.drain(
                node_id,
                self.inreq[node_id],
                largest_first=largest_first,
                split_last=split_last,
            )
            return
        for child in self.tree.child_nodes(node_id):
            if self.inreq[child] > _TOL:
                self._second_pass_visit(child, largest_first, split_last)

    def best_fit_server(self, client_id: NodeId, requests: float) -> Optional[NodeId]:
        """Best-fit ancestor able to host all ``requests`` of ``client_id``.

        The UBCF affectation rule (paper Algorithm 9): among the QoS-eligible
        ancestors with enough residual capacity, keep the one with *minimal*
        residual capacity; ancestors are enumerated bottom-up, so ties go to
        the deepest node, keeping scarcer high-level capacity available for
        clients with fewer options.  Returns ``None`` when no ancestor
        qualifies.
        """
        candidates = [
            ancestor
            for ancestor in self.problem.eligible_servers(client_id)
            if self.residual[ancestor] + _TOL >= requests
        ]
        if not candidates:
            return None
        target = candidates[0]
        for ancestor in candidates[1:]:
            if self.residual[ancestor] < self.residual[target] - _TOL:
                target = ancestor
        return target

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def to_solution(self, policy: Policy, algorithm: str, **metadata) -> Solution:
        """Freeze the current state into a :class:`~repro.core.solution.Solution`."""
        return Solution(
            placement=Placement(self.replicas),
            assignment=Assignment(self.amounts),
            policy=policy,
            algorithm=algorithm,
            metadata=metadata,
        )

    def all_requests_affected(self, tolerance: float = 1e-6) -> bool:
        """``True`` when every client request has been affected to a server."""
        return self.total_pending() <= tolerance

    def unserved_summary(self) -> str:
        """Human-readable list of clients that still have pending requests."""
        pending = {
            cid: round(value, 6)
            for cid, value in self.remaining.items()
            if value > 1e-6
        }
        return ", ".join(f"{cid!r}: {value:g}" for cid, value in sorted(pending.items(), key=lambda kv: repr(kv[0])))


def _pre_order_nodes(tree) -> Iterator[NodeId]:
    """Internal nodes in DFS pre-order, children in link insertion order.

    Exactly the visit order of the recursive first passes this generator
    replaced (and of ``TreeIndex.node_order``).
    """
    stack = [tree.root]
    while stack:
        node_id = stack.pop()
        yield node_id
        children = tree.child_nodes(node_id)
        if children:
            stack.extend(reversed(children))
