"""Incremental re-solving of dynamic-workload epoch sequences.

Re-solving every epoch of a dynamic workload from scratch wastes the work
of the previous epoch: most of the time only a handful of request rates
moved, and often nothing moved at all.  :class:`IncrementalResolver` keeps
the previous epoch's problem and :class:`~repro.core.solution.Solution` and
picks, per epoch, the cheapest strategy that is still correct:

``reused``
    The epoch is *identical* to the previous one (same topology, rates,
    capacities, constraints and cost mode).  The solvers are deterministic,
    so the previous solution -- including a previous infeasibility verdict --
    is returned without running anything.

``patched`` (only in ``mode="patch"``)
    Rates moved but topology, capacities and constraints did not.  The
    previous placement is kept frozen; the assignments of unchanged clients
    are kept verbatim, and only the changed clients are re-routed onto the
    existing replicas (respecting policy and QoS semantics, bottom-up,
    within residual capacities -- the invalidated subtree spans of the
    :class:`~repro.core.index.TreeIndex` are exactly the regions whose loads
    are recomputed).  Minimal migrations, but the placement may drift away
    from what a fresh heuristic would build; when the patch cannot absorb
    the new rates it falls back to a full re-solve.

``solved``
    Everything else -- topology or capacity changes, constraint changes, a
    failed patch, or rate changes in ``mode="exact"`` -- re-runs the full
    heuristic portfolio via :func:`repro.api.solve`
    (:meth:`IncrementalResolver.resolve_from_scratch`).  Epochs forked with
    :meth:`TreeNetwork.with_requests` make even this path cheaper: the
    solver state is built on a patched tree index instead of a fresh DFS.

``mode="exact"`` (the default) therefore guarantees **cost-identical**
solutions to a from-scratch loop over the same epochs -- the dynamic
cross-validation suite pins placements, assignments and costs of the two --
while skipping all repeated work.  ``mode="patch"`` trades cost optimality
for placement stability; the churn campaign of
:mod:`repro.experiments.harness` quantifies that trade-off.

Every resolve returns :class:`ResolveStats` with the strategy used and the
migration cost relative to the previous epoch (replicas added/dropped,
request volume re-routed), the operational currency of online replica
placement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Assignment, Placement, Solution
from repro.core.tree import NodeId

__all__ = [
    "ProblemDelta",
    "ResolveStats",
    "IncrementalResolver",
    "BoundStats",
    "IncrementalBounder",
    "diff_problems",
    "migration_stats",
]

#: Strategies an epoch can be resolved with.
STRATEGIES = ("reused", "patched", "solved")


# --------------------------------------------------------------------------- #
# epoch diffing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProblemDelta:
    """What changed between two consecutive epoch problems."""

    #: client/node ids or parent links differ (joins, leaves, rewires)
    topology_changed: bool
    #: internal node capacities or storage costs differ
    nodes_changed: bool
    #: link attributes (comm time, bandwidth) differ
    links_changed: bool
    #: constraint set or cost mode differ
    settings_changed: bool
    #: clients whose QoS bound changed (same topology)
    qos_changed: Tuple[NodeId, ...] = ()
    #: clients whose request rate changed (same topology)
    changed_clients: Tuple[NodeId, ...] = ()

    @property
    def unchanged(self) -> bool:
        """``True`` when the epochs are equivalent problems."""
        return not (
            self.topology_changed
            or self.nodes_changed
            or self.links_changed
            or self.settings_changed
            or self.qos_changed
            or self.changed_clients
        )

    @property
    def rates_only(self) -> bool:
        """``True`` when only request rates moved (the patchable case)."""
        return bool(self.changed_clients) and not (
            self.topology_changed
            or self.nodes_changed
            or self.links_changed
            or self.settings_changed
            or self.qos_changed
        )


def diff_problems(
    previous: ReplicaPlacementProblem, current: ReplicaPlacementProblem
) -> ProblemDelta:
    """Structural diff of two epochs (cheap: one pass over clients/nodes).

    Trees forked with :meth:`TreeNetwork.with_requests` share their
    structural dictionaries, so the topology comparison is usually a few
    identity checks.
    """
    prev_tree, tree = previous.tree, current.tree
    settings_changed = (
        previous.constraints != current.constraints or previous.kind is not current.kind
    )

    topology_changed = not (
        (prev_tree._parent is tree._parent or prev_tree._parent == tree._parent)
        and prev_tree._clients.keys() == tree._clients.keys()
        and prev_tree._nodes.keys() == tree._nodes.keys()
    )
    if topology_changed:
        return ProblemDelta(
            topology_changed=True,
            nodes_changed=True,
            links_changed=True,
            settings_changed=settings_changed,
        )

    nodes_changed = not (
        prev_tree._nodes is tree._nodes or prev_tree._nodes == tree._nodes
    )
    links_changed = not (
        prev_tree._links is tree._links or prev_tree._links == tree._links
    )

    qos_changed: List[NodeId] = []
    changed_clients: List[NodeId] = []
    if prev_tree._clients is not tree._clients:
        for cid, client in tree._clients.items():
            old = prev_tree._clients[cid]
            if old.qos != client.qos:
                qos_changed.append(cid)
            if old.requests != client.requests:
                changed_clients.append(cid)
    return ProblemDelta(
        topology_changed=False,
        nodes_changed=nodes_changed,
        links_changed=links_changed,
        settings_changed=settings_changed,
        qos_changed=tuple(qos_changed),
        changed_clients=tuple(changed_clients),
    )


# --------------------------------------------------------------------------- #
# migration accounting
# --------------------------------------------------------------------------- #
def migration_stats(
    previous: Optional[Solution], current: Optional[Solution]
) -> Tuple[int, int, float]:
    """``(replicas_added, replicas_dropped, requests_reassigned)``.

    ``requests_reassigned`` is the request volume newly routed onto a
    ``(client, server)`` pair, i.e. ``sum of max(0, new - old)`` over all
    pairs: the traffic an operator would have to cut over.  A missing
    solution (cold start or infeasible epoch) counts as empty.
    """
    prev_replicas = previous.placement.replicas if previous is not None else frozenset()
    new_replicas = current.placement.replicas if current is not None else frozenset()
    added = len(new_replicas - prev_replicas)
    dropped = len(prev_replicas - new_replicas)

    prev_amounts: Dict[Tuple[NodeId, NodeId], float] = (
        dict(previous.assignment.items()) if previous is not None else {}
    )
    reassigned = 0.0
    if current is not None:
        for pair, amount in current.assignment.items():
            delta = amount - prev_amounts.get(pair, 0.0)
            if delta > 0:
                reassigned += delta
    return added, dropped, reassigned


@dataclass
class ResolveStats:
    """Bookkeeping of one epoch resolve."""

    epoch: int
    strategy: str
    changed_clients: int
    cost: Optional[float]
    replicas_added: int
    replicas_dropped: int
    requests_reassigned: float
    runtime: float
    #: free-form details (fallback reasons, patch rejections, ...)
    notes: str = ""

    def describe(self) -> str:
        """One line for CLI / campaign reports."""
        cost = "infeasible" if self.cost is None else f"cost {self.cost:g}"
        return (
            f"epoch {self.epoch:>3}: {cost:>14} [{self.strategy}] "
            f"changed={self.changed_clients} +{self.replicas_added}/-{self.replicas_dropped} replicas, "
            f"{self.requests_reassigned:g} requests re-routed"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (part of the result protocol)."""
        from repro.core.results import encode_float

        return {
            "epoch": self.epoch,
            "strategy": self.strategy,
            "changed_clients": self.changed_clients,
            "cost": encode_float(self.cost),
            "replicas_added": self.replicas_added,
            "replicas_dropped": self.replicas_dropped,
            "requests_reassigned": self.requests_reassigned,
            "runtime": self.runtime,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload) -> "ResolveStats":
        """Rebuild stats from a :meth:`to_dict` payload."""
        from repro.core.results import decode_float

        return cls(
            epoch=int(payload["epoch"]),
            strategy=str(payload["strategy"]),
            changed_clients=int(payload["changed_clients"]),
            cost=decode_float(payload.get("cost")),
            replicas_added=int(payload["replicas_added"]),
            replicas_dropped=int(payload["replicas_dropped"]),
            requests_reassigned=float(payload["requests_reassigned"]),
            runtime=float(payload.get("runtime", 0.0)),
            notes=str(payload.get("notes", "")),
        )


# --------------------------------------------------------------------------- #
# the resolver
# --------------------------------------------------------------------------- #
class IncrementalResolver:
    """Stateful epoch-by-epoch solver for dynamic workloads.

    Parameters
    ----------
    policy, algorithm:
        Forwarded to :func:`repro.api.solve` whenever a full solve runs.
    mode:
        ``"exact"`` (default) -- only provably-equivalent shortcuts: reuse
        identical epochs, full re-solve otherwise.  Cost-identical to a
        from-scratch loop.
        ``"patch"`` -- additionally repair rate-only epochs in place on the
        frozen placement (stability first, see the module docstring).
        ``"scratch"`` -- no shortcuts at all; the baseline the other two are
        benchmarked and cross-validated against.
    """

    MODES = ("exact", "patch", "scratch")

    def __init__(
        self,
        *,
        policy: Union[Policy, str] = Policy.MULTIPLE,
        algorithm: Optional[str] = None,
        mode: str = "exact",
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        self.policy = Policy.parse(policy)
        self.algorithm = algorithm
        self.mode = mode
        self.epoch = -1
        self.previous_problem: Optional[ReplicaPlacementProblem] = None
        self.previous_solution: Optional[Solution] = None

    # ------------------------------------------------------------------ #
    def resolve_from_scratch(
        self, problem: ReplicaPlacementProblem
    ) -> Optional[Solution]:
        """Full solve of one epoch (no warm start); ``None`` when infeasible."""
        from repro.algorithms.portfolio import portfolio_solve

        try:
            return portfolio_solve(problem, policy=self.policy, algorithm=self.algorithm)
        except InfeasibleError:
            return None

    def resolve(
        self, problem: ReplicaPlacementProblem
    ) -> Tuple[Optional[Solution], ResolveStats]:
        """Solve the next epoch, warm-starting from the previous one."""
        start = time.perf_counter()
        self.epoch += 1
        strategy = "solved"
        notes = ""
        changed = 0

        if self.previous_problem is None or self.mode == "scratch":
            solution = self.resolve_from_scratch(problem)
        else:
            delta = diff_problems(self.previous_problem, problem)
            changed = len(delta.changed_clients)
            if delta.unchanged:
                solution = self.previous_solution
                strategy = "reused"
            elif self.mode == "patch" and delta.rates_only:
                solution = self._patch(problem, delta)
                if solution is not None:
                    strategy = "patched"
                else:
                    notes = "patch failed; re-solved from scratch"
                    solution = self.resolve_from_scratch(problem)
            else:
                solution = self.resolve_from_scratch(problem)

        added, dropped, reassigned = migration_stats(self.previous_solution, solution)
        stats = ResolveStats(
            epoch=self.epoch,
            strategy=strategy,
            changed_clients=changed,
            cost=solution.cost(problem) if solution is not None else None,
            replicas_added=added,
            replicas_dropped=dropped,
            requests_reassigned=reassigned,
            runtime=time.perf_counter() - start,
            notes=notes,
        )
        self.previous_problem = problem
        self.previous_solution = solution
        return solution, stats

    # ------------------------------------------------------------------ #
    # the patch path
    # ------------------------------------------------------------------ #
    def _patch(
        self, problem: ReplicaPlacementProblem, delta: ProblemDelta
    ) -> Optional[Solution]:
        """Re-route the changed clients on the frozen previous placement.

        Returns ``None`` when the previous placement cannot absorb the new
        rates under the policy/QoS/capacity (and, if enforced, bandwidth)
        constraints; the caller then falls back to a full re-solve.
        """
        previous = self.previous_solution
        if previous is None:
            return None
        tree = problem.tree
        replicas = previous.placement.replicas

        # Strip the changed clients' old routes; keep everything else.
        changed = set(delta.changed_clients)
        amounts: Dict[Tuple[NodeId, NodeId], float] = {}
        loads: Dict[NodeId, float] = {}
        for (client_id, server_id), amount in previous.assignment.items():
            if client_id in changed:
                continue
            amounts[(client_id, server_id)] = amount
            loads[server_id] = loads.get(server_id, 0.0) + amount

        # Re-route each changed client bottom-up over the frozen placement.
        # Sorted order keeps the repair deterministic whatever the diff order.
        for client_id in sorted(changed, key=repr):
            rate = tree.client(client_id).requests
            if rate <= 0:
                continue
            servers = [
                sid for sid in problem.eligible_servers(client_id) if sid in replicas
            ]
            if self.policy is Policy.CLOSEST:
                # Closest pins the client to its lowest replica ancestor,
                # QoS-eligible or not -- bail out when QoS filtered it away.
                lowest = next(
                    (sid for sid in tree.ancestors(client_id) if sid in replicas),
                    None,
                )
                if lowest is None or not servers or servers[0] != lowest:
                    return None
                servers = [lowest]
            if self.policy.single_server:
                target = next(
                    (
                        sid
                        for sid in servers
                        if problem.capacity(sid) - loads.get(sid, 0.0) >= rate
                    ),
                    None,
                )
                if target is None:
                    return None
                amounts[(client_id, target)] = rate
                loads[target] = loads.get(target, 0.0) + rate
            else:
                pending = rate
                for sid in servers:
                    free = problem.capacity(sid) - loads.get(sid, 0.0)
                    if free <= 0:
                        continue
                    take = min(free, pending)
                    amounts[(client_id, sid)] = amounts.get((client_id, sid), 0.0) + take
                    loads[sid] = loads.get(sid, 0.0) + take
                    pending -= take
                    if pending <= 0:
                        break
                if pending > 0:
                    return None

        solution = Solution(
            placement=Placement(replicas),
            assignment=Assignment(amounts),
            policy=self.policy,
            algorithm=f"{previous.algorithm}+patch",
            metadata={"patched_clients": len(changed)},
        )
        if problem.constraints.enforce_bandwidth:
            # Re-routing moves link flows in ways the local capacity checks
            # above cannot see; run the full validator before accepting.
            from repro.core.validation import validate_solution

            if not validate_solution(problem, solution, policy=self.policy).valid:
                return None
        return solution


# --------------------------------------------------------------------------- #
# incremental LP lower bounds
# --------------------------------------------------------------------------- #
@dataclass
class BoundStats:
    """Bookkeeping of one epoch lower-bound computation."""

    epoch: int
    #: ``"reused"`` (identical epoch, no solve), ``"patched"`` (program
    #: re-targeted via :meth:`LinearProgramData.with_requests`, solved) or
    #: ``"built"`` (program assembled from scratch, solved).
    strategy: str
    changed_clients: int
    value: float
    runtime: float

    def describe(self) -> str:
        """One line for CLI / campaign reports."""
        import math as _math

        value = "infeasible" if _math.isinf(self.value) else f"bound {self.value:g}"
        return (
            f"epoch {self.epoch:>3}: {value:>14} [{self.strategy}] "
            f"changed={self.changed_clients}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (part of the result protocol)."""
        from repro.core.results import encode_float

        return {
            "epoch": self.epoch,
            "strategy": self.strategy,
            "changed_clients": self.changed_clients,
            "value": encode_float(self.value),
            "runtime": self.runtime,
        }

    @classmethod
    def from_dict(cls, payload) -> "BoundStats":
        """Rebuild stats from a :meth:`to_dict` payload."""
        from repro.core.results import decode_float

        return cls(
            epoch=int(payload["epoch"]),
            strategy=str(payload["strategy"]),
            changed_clients=int(payload["changed_clients"]),
            value=decode_float(payload["value"]),
            runtime=float(payload.get("runtime", 0.0)),
        )


class IncrementalBounder:
    """Epoch-by-epoch LP lower bounds with structure-sharing program reuse.

    The LP layer's counterpart of :class:`IncrementalResolver`: it keeps the
    previous epoch's assembled bound program and picks, per epoch, the
    cheapest correct treatment --

    * identical epochs reuse the previous bound outright (the backends are
      deterministic);
    * rate-only epochs re-target the cached program with
      :meth:`~repro.lp.formulation.LinearProgramData.with_requests` (the
      constraint sparsity, split caches and labels are shared; only the RHS
      targets and variable uppers are re-gathered) and re-solve;
    * anything else -- topology, capacity, link or constraint changes, or a
      rate crossing zero -- re-assembles the program from scratch.

    Every path produces a program bit-identical to a fresh
    :func:`repro.lp.bounds.lp_lower_bound` build, so the per-epoch bounds
    are exactly the from-scratch bounds (cross-validated by the test
    suite).

    ``method="ipfp"`` swaps the LP program for the scaling-based
    :class:`~repro.lp.ipfp.IPFPProgram`; the reuse ladder is identical
    (same ``with_requests`` contract), and a re-targeted epoch reproduces
    the from-scratch IPFP value bit for bit.
    """

    MODES = ("incremental", "scratch")
    METHODS = ("mixed", "rational", "ipfp")

    def __init__(
        self,
        *,
        policy: Union[Policy, str] = Policy.MULTIPLE,
        method: str = "mixed",
        mode: str = "incremental",
        time_limit: Optional[float] = None,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        if method not in self.METHODS:
            raise ValueError(
                f"unknown lower-bound method {method!r}; expected one of {self.METHODS}"
            )
        self.policy = Policy.parse(policy)
        self.method = method
        self.mode = mode
        self.time_limit = time_limit
        self.epoch = -1
        self.previous_problem: Optional[ReplicaPlacementProblem] = None
        self._program = None
        self._previous = None

    def bound(self, problem: ReplicaPlacementProblem):
        """Lower-bound the next epoch; returns ``(LowerBoundResult, BoundStats)``."""
        from repro.lp.bounds import bound_for_program, bound_program

        start = time.perf_counter()
        self.epoch += 1
        strategy = "built"
        changed = 0
        result = None
        program = None

        if self.previous_problem is not None and self.mode == "incremental":
            delta = diff_problems(self.previous_problem, problem)
            changed = len(delta.changed_clients)
            if delta.unchanged and self._previous is not None:
                result = self._previous
                program = self._program
                strategy = "reused"
            elif delta.rates_only and self._program is not None:
                try:
                    program = self._program.with_requests(problem)
                    strategy = "patched"
                except ValueError:
                    program = None  # e.g. a rate crossed zero: rebuild

        if result is None:
            if program is None:
                program = bound_program(problem, policy=self.policy, method=self.method)
            result = bound_for_program(
                program, method=self.method, time_limit=self.time_limit
            )

        stats = BoundStats(
            epoch=self.epoch,
            strategy=strategy,
            changed_clients=changed,
            value=result.value,
            runtime=time.perf_counter() - start,
        )
        self.previous_problem = problem
        self._program = program
        self._previous = result
        return result, stats
