"""Command-line interface: ``python -m repro`` / ``repro-placement``.

Sub-commands
------------

``generate``
    Draw a random tree and write it to a JSON file.
``solve``
    Solve a tree (JSON file) under a chosen policy and print the placement.
``batch``
    Solve many tree JSON files in one go (optionally over worker
    processes) and print one result line per file.
``compare``
    Solve the same tree under all three policies and print a comparison.
``campaign``
    Run a (reduced) experimental campaign and print the success-rate and
    relative-cost tables of Figures 9-12; ``--workers N`` fans the
    instances out over a process pool.
``dynamic``
    Solve a dynamic-workload trajectory (rate churn, ramps, seasonal
    cycles, steps, client join/leave) over a tree with the incremental
    re-solver, printing per-epoch costs, strategies and migration stats;
    ``--simulate`` replays the solution sequence and reports transient
    saturation, ``--resolve on-saturation`` keeps placements frozen across
    epochs whose replay stays clean (SLA-aware re-solve), ``--campaign``
    sweeps churn intensity and prints the cost-vs-stability tables instead.
``serve``
    Run the multi-tenant serving endpoint (:mod:`repro.serving`): a
    fingerprint-keyed LRU pool of resident sessions behind the JSON
    request protocol, over stdio (newline-delimited JSON, the default) or
    HTTP (``--http HOST:PORT``); ``--snapshot-dir`` persists sessions
    across restarts and restores them warm on boot.
``doctor``
    Report the health of the request-state engines: which engines import,
    whether the native C kernels compile (and from which cache), and the
    process-wide default engine.
``table1``
    Print the computational evidence backing paper Table 1.

Machine-readable output
-----------------------

``solve``, ``compare``, ``batch`` and ``dynamic`` accept ``--json``:
instead of prose they emit the ``to_dict()`` payloads of the unified
result protocol (:mod:`repro.core.results`).  The ``solve``, ``compare``
and ``dynamic`` payloads are registered result types, round-trippable
through :func:`repro.core.results.result_from_dict`; ``batch`` emits a
``{"type": "batch"}`` aggregate whose per-file ``solution`` entries decode
with :func:`repro.core.serialization.solution_from_dict`.  ``solve``,
``batch``, ``dynamic`` and ``serve`` also accept ``--engine`` to pick the
request-state engine per invocation (previously only reachable via the
``REPRO_ENGINE`` environment variable); the choices come straight from
:func:`repro.algorithms.common.available_engines`, so new engines (such as
the compiled ``native`` one) appear here without CLI changes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.algorithms.common import available_engines
from repro.api import compare_policies, solve_many, solve_sequence
from repro.session import PlacementSession
from repro.core.exceptions import InfeasibleError, ReproError
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.serialization import load_tree, save_tree
from repro.experiments.harness import CampaignConfig, run_campaign
from repro.workloads.generator import GeneratorConfig, TreeGenerator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-placement",
        description="Replica placement strategies in tree networks "
        "(Closest / Upwards / Multiple).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a random tree and save it as JSON")
    gen.add_argument("output", help="output JSON file")
    gen.add_argument("--size", type=int, default=50, help="problem size |C|+|N|")
    gen.add_argument("--load", type=float, default=0.5, help="target load factor lambda")
    gen.add_argument("--heterogeneous", action="store_true", help="mix server classes")
    gen.add_argument("--seed", type=int, default=None, help="random seed")
    gen.add_argument(
        "--metrics",
        action="store_true",
        help="annotate every link with multi-metric QoS attributes "
        "(latency/jitter/loss/bandwidth; see repro.qos.metrics)",
    )
    gen.add_argument(
        "--bandwidth",
        type=float,
        default=None,
        metavar="BW",
        help="give every link this finite bandwidth (default: unbounded)",
    )

    slv = sub.add_parser("solve", help="solve a tree JSON file under one policy")
    slv.add_argument("tree", help="tree JSON file (see the generate sub-command)")
    slv.add_argument("--policy", default="multiple", help="closest | upwards | multiple")
    slv.add_argument("--algorithm", default=None, help="force a specific heuristic")
    slv.add_argument(
        "--counting",
        action="store_true",
        help="use the Replica Counting cost (homogeneous platforms)",
    )
    slv.add_argument(
        "--json",
        action="store_true",
        help="emit the result-protocol payload instead of prose",
    )
    slv.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="request-state engine (default: process-wide engine / REPRO_ENGINE)",
    )
    slv.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the tree into N subtree shards, solve each on its own "
        "sliced index and reconcile at the cut (default: whole-tree)",
    )
    slv.add_argument(
        "--bounds",
        action="store_true",
        help="also compute the lower bound (--bound-method) and the "
        "cost-vs-bound gap",
    )
    slv.add_argument(
        "--bound-method",
        choices=("mixed", "rational", "ipfp", "trivial"),
        default="mixed",
        help="lower-bound method used by --bounds (default: mixed)",
    )

    batch = sub.add_parser(
        "batch", help="solve many tree JSON files (optionally in parallel)"
    )
    batch.add_argument("trees", nargs="+", help="tree JSON files")
    batch.add_argument("--policy", default="multiple", help="closest | upwards | multiple")
    batch.add_argument("--algorithm", default=None, help="force a specific heuristic")
    batch.add_argument(
        "--counting",
        action="store_true",
        help="use the Replica Counting cost (homogeneous platforms)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="solve over N worker processes (default: sequential)",
    )
    batch.add_argument(
        "--on-error",
        choices=("none", "raise"),
        default="none",
        help="'none' prints 'no solution' for infeasible trees, 'raise' aborts",
    )
    batch.add_argument(
        "--json",
        action="store_true",
        help="emit one result-protocol payload per file instead of prose",
    )
    batch.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="request-state engine (default: process-wide engine / REPRO_ENGINE)",
    )

    cmp = sub.add_parser("compare", help="compare the three policies on a tree")
    cmp.add_argument("tree", help="tree JSON file")
    cmp.add_argument("--counting", action="store_true", help="Replica Counting cost")
    cmp.add_argument(
        "--bounds",
        action="store_true",
        help="also compute the LP lower bound and per-policy cost-vs-bound gaps",
    )
    cmp.add_argument(
        "--bound-method",
        choices=("mixed", "rational", "ipfp", "trivial"),
        default="mixed",
        help="lower-bound method used by --bounds (default: mixed)",
    )
    cmp.add_argument(
        "--json",
        action="store_true",
        help="emit the result-protocol payload instead of prose",
    )

    camp = sub.add_parser("campaign", help="run an experimental campaign (Figures 9-12)")
    camp.add_argument("--heterogeneous", action="store_true")
    camp.add_argument("--trees-per-lambda", type=int, default=5)
    camp.add_argument("--min-size", type=int, default=15)
    camp.add_argument("--max-size", type=int, default=60)
    camp.add_argument("--seed", type=int, default=2007)
    camp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="evaluate instances over N worker processes",
    )

    dyn = sub.add_parser(
        "dynamic", help="solve a dynamic-workload trajectory incrementally"
    )
    dyn.add_argument(
        "tree", nargs="?", default=None, help="tree JSON file (omit with --campaign)"
    )
    dyn.add_argument(
        "--trajectory",
        choices=("churn", "ramp", "seasonal", "step", "join-leave", "regional"),
        default="churn",
        help="request-rate trajectory family (default: churn)",
    )
    dyn.add_argument("--epochs", type=int, default=12, help="number of epochs")
    dyn.add_argument("--policy", default="multiple", help="closest | upwards | multiple")
    dyn.add_argument(
        "--mode",
        choices=("incremental", "patch", "scratch"),
        default="incremental",
        help="re-solve strategy (default: incremental, cost-identical to scratch)",
    )
    dyn.add_argument("--counting", action="store_true", help="Replica Counting cost")
    dyn.add_argument("--seed", type=int, default=None, help="trajectory random seed")
    dyn.add_argument("--churn", type=float, default=0.1, help="per-client churn probability")
    dyn.add_argument("--magnitude", type=float, default=0.5, help="churn drift magnitude")
    dyn.add_argument(
        "--quiet", type=float, default=0.25, help="probability an epoch has no change"
    )
    dyn.add_argument("--factor", type=float, default=1.5, help="step/ramp end factor")
    dyn.add_argument("--at", type=int, default=1, help="epoch of the step change")
    dyn.add_argument("--amplitude", type=float, default=0.3, help="seasonal amplitude")
    dyn.add_argument("--period", type=float, default=8.0, help="seasonal period (epochs)")
    dyn.add_argument("--join-rate", type=float, default=0.05, help="client join rate")
    dyn.add_argument("--leave-rate", type=float, default=0.05, help="client leave rate")
    dyn.add_argument(
        "--region-depth",
        type=int,
        default=1,
        help="regional: tree depth of the surging subtree roots",
    )
    dyn.add_argument(
        "--simulate",
        action="store_true",
        help="replay the solved sequence and report transient saturation",
    )
    dyn.add_argument(
        "--resolve",
        choices=("always", "on-saturation"),
        default="always",
        help="epoch re-solve discipline: 'always' (default) or the "
        "SLA-aware 'on-saturation' (keep the placement frozen while the "
        "replayed epoch stays violation- and saturation-free)",
    )
    dyn.add_argument(
        "--bounds",
        action="store_true",
        help="track the per-epoch LP lower bound (incremental program patching) "
        "and report cost-vs-bound gaps",
    )
    dyn.add_argument(
        "--bound-method",
        choices=("mixed", "rational", "ipfp"),
        default="mixed",
        help="per-epoch lower-bound method used by --bounds (default: mixed; "
        "ipfp re-targets at heuristic speed)",
    )
    dyn.add_argument(
        "--campaign",
        action="store_true",
        help="sweep churn intensity on generated trees (ignores the tree argument)",
    )
    dyn.add_argument(
        "--heterogeneous", action="store_true", help="campaign: mix server classes"
    )
    dyn.add_argument(
        "--trees-per-level", type=int, default=3, help="campaign: trees per churn level"
    )
    dyn.add_argument(
        "--workers",
        type=int,
        default=None,
        help="campaign: evaluate trajectories over N worker processes",
    )
    dyn.add_argument(
        "--json",
        action="store_true",
        help="emit the result-protocol payload instead of prose",
    )
    dyn.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="request-state engine (default: process-wide engine / REPRO_ENGINE)",
    )
    dyn.add_argument(
        "--shards",
        type=int,
        default=None,
        help="solve each epoch shard-by-shard; rate changes confined to one "
        "shard re-solve only that shard (default: whole-tree)",
    )
    dyn.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="replay a request-log trace (CSV/JSONL, gzip-transparent) "
        "instead of a synthetic trajectory: epoch boundaries are detected "
        "from the log (at most --epochs of them) and per-client rates "
        "estimated per epoch",
    )

    trc = sub.add_parser(
        "trace",
        help="inspect request-log traces (ingest, epoch detection, rates)",
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    tin = trc_sub.add_parser(
        "info",
        help="ingest a trace file, detect epochs and print the rate table",
    )
    tin.add_argument("file", help="trace file (CSV or JSONL, optionally .gz)")
    tin.add_argument(
        "--format",
        choices=("csv", "jsonl"),
        default=None,
        help="force the parser (default: inferred from the extension)",
    )
    tin.add_argument(
        "--sort",
        action="store_true",
        help="reorder a shuffled log instead of rejecting it",
    )
    tin.add_argument(
        "--epochs",
        type=int,
        default=None,
        metavar="N",
        help="use N equal-width epochs instead of detecting boundaries",
    )
    tin.add_argument(
        "--max-epochs",
        type=int,
        default=16,
        help="cap on detected epochs (default: 16)",
    )
    tin.add_argument(
        "--bins",
        type=int,
        default=None,
        help="detection histogram bins (default: events//32, clamped to "
        "[8, 256])",
    )
    tin.add_argument(
        "--threshold",
        type=float,
        default=4.0,
        help="mean-shift z-score a boundary must reach (default: 4.0)",
    )
    tin.add_argument(
        "--json",
        action="store_true",
        help="emit the trace_summary payload instead of prose",
    )

    srv = sub.add_parser(
        "serve",
        help="serve placement queries over resident sessions (stdio or HTTP)",
    )
    srv.add_argument(
        "--stdio",
        action="store_true",
        help="speak newline-delimited JSON on stdin/stdout (the default "
        "transport; replies are the only stdout output)",
    )
    srv.add_argument(
        "--http",
        metavar="HOST:PORT",
        default=None,
        help="serve HTTP instead: POST request envelopes to /, "
        "GET /stats and /metrics",
    )
    srv.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="serve newline-delimited JSON over TCP from a single-threaded "
        "selectors loop (never blocks on a slow client)",
    )
    srv.add_argument(
        "--loop",
        action="store_true",
        help="with --stdio: run the selectors event loop over stdin/stdout "
        "instead of the blocking reader (falls back when stdin is a "
        "regular file); implied by --tcp",
    )
    srv.add_argument(
        "--pool-capacity",
        type=int,
        default=8,
        help="maximum resident sessions before LRU eviction (default: 8)",
    )
    srv.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="optional byte budget over the resident sessions' estimated "
        "memory (LRU eviction until it fits)",
    )
    srv.add_argument(
        "--mode",
        choices=("incremental", "patch", "scratch"),
        default="incremental",
        help="re-solve mode of the pooled sessions (default: incremental)",
    )
    srv.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="request-state engine of the pooled sessions (default: "
        "process-wide engine / REPRO_ENGINE)",
    )
    srv.add_argument(
        "--snapshot-dir",
        default=None,
        help="persist resident sessions here (and restore them warm on boot)",
    )
    srv.add_argument(
        "--snapshot-retain",
        type=int,
        default=None,
        metavar="RESTARTS",
        help="age out snapshot files of tenants not seen for this many "
        "server restarts (default: keep forever)",
    )

    load = sub.add_parser(
        "loadtest",
        help="drive a serving endpoint with open-loop inhomogeneous-Poisson "
        "load and report req/s plus latency percentiles",
    )
    load.add_argument(
        "--target",
        default=None,
        help="endpoint URL (http://HOST:PORT or tcp://HOST:PORT); default "
        "is an in-process server (measures the engine, not a network)",
    )
    load.add_argument(
        "--tenants", type=int, default=4, help="synthetic tenants (default: 4)"
    )
    load.add_argument(
        "--size", type=int, default=30, help="tree size per tenant (default: 30)"
    )
    load.add_argument(
        "--horizon",
        type=float,
        default=2.0,
        help="scheduled span of the arrival process in seconds (default: 2)",
    )
    load.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="mean offered rate in requests/second (default: 50)",
    )
    load.add_argument(
        "--burst",
        type=float,
        default=0.5,
        help="relative amplitude of the sinusoidal intensity in [0, 1] "
        "(default: 0.5)",
    )
    load.add_argument(
        "--batch",
        type=int,
        default=1,
        help="max due arrivals coalesced into one batch envelope "
        "(default: 1 = unbatched)",
    )
    load.add_argument(
        "--ops",
        default="solve,bound",
        help="comma-separated op cycle per tenant from solve/bound/update "
        "(default: solve,bound)",
    )
    load.add_argument(
        "--op-mix",
        default=None,
        metavar="OP=W,...",
        help="weighted op mix sampled per arrival instead of the --ops "
        "cycle, e.g. 'solve=3,bound=1' (per-tenant jittered weights)",
    )
    load.add_argument("--seed", type=int, default=0, help="schedule seed")
    load.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="sample the arrival schedule from a request-log trace instead "
        "of the sinusoidal intensity: epochs are detected from the log and "
        "its piecewise-constant intensity is rescaled to --horizon seconds "
        "at --rate mean requests/second",
    )
    load.add_argument(
        "--json",
        action="store_true",
        help="emit the loadtest_report payload instead of prose",
    )

    bench = sub.add_parser(
        "bench",
        help="run the bench-marked perf suites (each run appends an entry to "
        "BENCH_engine.json)",
    )
    bench.add_argument(
        "-k",
        dest="keyword",
        default=None,
        help="pytest -k expression selecting a subset of the bench suites",
    )
    bench.add_argument(
        "--list",
        action="store_true",
        help="list the available bench suites without running them",
    )
    bench.add_argument(
        "--collect-only",
        action="store_true",
        help="collect the selected bench tests without running them",
    )

    doc = sub.add_parser(
        "doctor",
        help="report engine availability, native-kernel compile status and "
        "the active default engine",
    )
    doc.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of prose",
    )

    sub.add_parser("table1", help="print the computational evidence for paper Table 1")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except (ReproError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "generate":
        tree = TreeGenerator(args.seed).generate(
            GeneratorConfig(
                size=args.size,
                target_load=args.load,
                homogeneous=not args.heterogeneous,
                link_bandwidth=args.bandwidth,
                link_metrics=args.metrics,
            )
        )
        save_tree(tree, args.output)
        print(f"wrote {tree!r} to {args.output}")
        return 0

    if args.command == "solve":
        problem = _load_problem(args.tree, counting=args.counting)
        session = PlacementSession(
            problem,
            policy=args.policy,
            algorithm=args.algorithm,
            engine=args.engine,
            shards=args.shards,
        )
        try:
            result = session.solve()
        except InfeasibleError as error:
            if args.json:
                # The failed SolveResult is cached; re-query without raising.
                print(session.solve(on_error="none").to_json(indent=2))
            else:
                print(f"no solution: {error}")
            return 2
        bound = session.bound(method=args.bound_method) if args.bounds else None
        if args.json:
            payload = result.to_dict()
            if bound is not None:
                # An extra key on the solve payload: from_dict round-trips
                # ignore it, so the result protocol is unaffected.
                payload["bound"] = bound.result.to_dict()
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        solution = result.solution
        print(solution.summary(problem))
        for node_id in solution.placement.sorted():
            load = solution.assignment.server_load(node_id)
            print(f"  replica on {node_id}: load {load:g} / {problem.capacity(node_id):g}")
        if bound is not None:
            value = bound.result.value
            if bound.result.feasible and value > 0:
                gap = solution.cost(problem) / value - 1.0
                print(
                    f"lower bound ({args.bound_method}): {value:g} "
                    f"| gap {gap:.3f}"
                )
            else:
                print(
                    f"lower bound ({args.bound_method}): "
                    + ("infeasible" if not bound.result.feasible else f"{value:g}")
                )
        return 0

    if args.command == "batch":
        problems = [_load_problem(path, counting=args.counting) for path in args.trees]
        solutions = solve_many(
            problems,
            policy=args.policy,
            algorithm=args.algorithm,
            workers=args.workers,
            on_error=args.on_error,
            engine=args.engine,
        )
        failed = sum(solution is None for solution in solutions)
        if args.json:
            from repro.core.serialization import solution_to_dict

            entries = []
            for path, problem, solution in zip(args.trees, problems, solutions):
                entry = {"path": path, "feasible": solution is not None}
                if solution is not None:
                    entry["cost"] = solution.cost(problem)
                    entry["replicas"] = solution.replica_count()
                    entry["algorithm"] = solution.algorithm
                    entry["solution"] = solution_to_dict(solution)
                entries.append(entry)
            payload = {
                "type": "batch",
                "policy": str(args.policy),
                "solved": len(problems) - failed,
                "total": len(problems),
                "results": entries,
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0 if failed < len(problems) else 2
        for path, problem, solution in zip(args.trees, problems, solutions):
            if solution is None:
                print(f"{path}: no solution")
            else:
                print(
                    f"{path}: cost {solution.cost(problem):g} with "
                    f"{solution.replica_count()} replicas ({solution.algorithm})"
                )
        print(f"solved {len(problems) - failed}/{len(problems)} instances")
        return 0 if failed < len(problems) else 2

    if args.command == "compare":
        problem = _load_problem(args.tree, counting=args.counting)
        results = compare_policies(
            problem, bounds=args.bounds, bound_method=args.bound_method
        )
        if args.json:
            print(results.to_json(indent=2))
            return 0
        gaps = results.gaps()
        for policy in Policy.ordered():
            solution = results[policy]
            if solution is None:
                print(f"{policy.value:>9}: no solution")
            else:
                line = (
                    f"{policy.value:>9}: cost {solution.cost(problem):g} "
                    f"with {solution.replica_count()} replicas ({solution.algorithm})"
                )
                gap = gaps.get(policy)
                if gap is not None:
                    line += f" | gap {gap:.3f} vs LP bound"
                print(line)
        if args.bounds and results.bound is not None:
            value = results.bound.value
            print(
                f"{args.bound_method} lower bound (Multiple relaxation): "
                + ("infeasible" if not results.bound.feasible else f"{value:g}")
            )
        return 0

    if args.command == "campaign":
        config = CampaignConfig(
            homogeneous=not args.heterogeneous,
            trees_per_lambda=args.trees_per_lambda,
            size_range=(args.min_size, args.max_size),
            seed=args.seed,
        )
        result = run_campaign(config, workers=args.workers)
        print(result.describe())
        print()
        print("Percentage of success (Figures 9 / 11):")
        print(result.success_table())
        print()
        print("Relative cost against the LP lower bound (Figures 10 / 12):")
        print(result.relative_cost_table())
        return 0

    if args.command == "dynamic":
        return _dispatch_dynamic(args)

    if args.command == "serve":
        return _dispatch_serve(args)

    if args.command == "loadtest":
        return _dispatch_loadtest(args)

    if args.command == "trace":
        return _dispatch_trace(args)

    if args.command == "bench":
        return _dispatch_bench(args)

    if args.command == "doctor":
        return _dispatch_doctor(args)

    if args.command == "table1":
        from repro.experiments.tables import table1_table

        print(table1_table())
        return 0

    raise ValueError(f"unknown command {args.command!r}")  # pragma: no cover


def _dispatch_dynamic(args: argparse.Namespace) -> int:
    """The ``dynamic`` sub-command: trajectories and the churn campaign."""
    if args.campaign:
        from repro.experiments.harness import ChurnCampaignConfig, run_churn_campaign

        # The campaign fixes its own churn sweep, cost mode and trajectory
        # family; warn about every single-trajectory flag it drops.
        ignored = ["the tree file"] if args.tree is not None else []
        for flag, inactive in (
            ("--simulate", not args.simulate),
            ("--trajectory", args.trajectory == "churn"),
            ("--mode", args.mode == "incremental"),
            ("--resolve", args.resolve == "always"),
            ("--churn", args.churn == 0.1),
            ("--counting", not args.counting),
            ("--factor", args.factor == 1.5),
            ("--at", args.at == 1),
            ("--amplitude", args.amplitude == 0.3),
            ("--period", args.period == 8.0),
            ("--join-rate", args.join_rate == 0.05),
            ("--leave-rate", args.leave_rate == 0.05),
            ("--engine", args.engine is None),
            ("--shards", args.shards is None),
            ("--region-depth", args.region_depth == 1),
            ("--trace", args.trace is None),
            ("--bound-method", args.bound_method == "mixed"),
        ):
            if not inactive:
                ignored.append(flag)
        if ignored:
            print(
                f"warning: --campaign sweeps its own churn trajectories under "
                f"every mode; ignoring {', '.join(ignored)}",
                file=sys.stderr,
            )

        config = ChurnCampaignConfig(
            epochs=args.epochs,
            trees_per_level=args.trees_per_level,
            homogeneous=not args.heterogeneous,
            policy=args.policy,
            magnitude=args.magnitude,
            quiet_probability=args.quiet,
            seed=args.seed if args.seed is not None else 2026,
            track_bounds=args.bounds,
        )
        result = run_churn_campaign(config, workers=args.workers)
        if args.json:
            print(result.to_json(indent=2))
            return 0
        print(result.describe())
        print()
        print("Mean per-epoch cost by churn intensity:")
        print(result.cost_table())
        print()
        print("Requests re-routed per epoch (placement stability):")
        print(result.stability_table())
        print()
        print("Replicas moved per epoch:")
        print(result.replica_churn_table())
        if args.bounds:
            print()
            print("Cost relative to the per-epoch LP lower bound:")
            print(result.gap_table())
        return 0

    if args.tree is None:
        print("error: a tree JSON file is required unless --campaign is given", file=sys.stderr)
        return 1

    if args.workers is not None:
        print(
            "warning: --workers only parallelises --campaign runs; a single "
            "trajectory is solved sequentially (epochs are dependent)",
            file=sys.stderr,
        )

    from repro.workloads import dynamic as trajectories

    if args.trace is not None:
        from repro.workloads.traces import detect_epochs, load_trace

        # The trace dictates epoch boundaries and per-client rates; every
        # trajectory-family knob is dead weight and deserves a warning.
        ignored = [
            flag
            for flag, default in (
                ("--trajectory", args.trajectory == "churn"),
                ("--seed", args.seed is None),
                ("--churn", args.churn == 0.1),
                ("--magnitude", args.magnitude == 0.5),
                ("--quiet", args.quiet == 0.25),
                ("--factor", args.factor == 1.5),
                ("--at", args.at == 1),
                ("--amplitude", args.amplitude == 0.3),
                ("--period", args.period == 8.0),
                ("--join-rate", args.join_rate == 0.05),
                ("--leave-rate", args.leave_rate == 0.05),
                ("--region-depth", args.region_depth == 1),
            )
            if not default
        ]
        if ignored:
            print(
                f"warning: --trace derives the epoch sequence from the log; "
                f"ignoring {', '.join(ignored)}",
                file=sys.stderr,
            )
        problem = _load_problem(args.tree, counting=args.counting)
        trace = load_trace(args.trace)
        trace_model = detect_epochs(trace, max_epochs=args.epochs)
        epochs = trace_model.problems(problem)
        return _run_dynamic_sequence(args, epochs, trace_model=trace_model)

    # Warn about non-default flags the chosen trajectory family never reads,
    # mirroring the --campaign branch (silently dropping them reads as the
    # flags being honoured).
    flag_owners = {
        "--churn": ("churn",),
        "--magnitude": ("churn", "regional"),
        "--quiet": ("churn", "regional"),
        "--factor": ("ramp", "step"),
        "--at": ("step",),
        "--amplitude": ("seasonal",),
        "--period": ("seasonal",),
        "--join-rate": ("join-leave",),
        "--leave-rate": ("join-leave",),
        "--region-depth": ("regional",),
    }
    defaults = {
        "--churn": args.churn == 0.1,
        "--magnitude": args.magnitude == 0.5,
        "--quiet": args.quiet == 0.25,
        "--factor": args.factor == 1.5,
        "--at": args.at == 1,
        "--amplitude": args.amplitude == 0.3,
        "--period": args.period == 8.0,
        "--join-rate": args.join_rate == 0.05,
        "--leave-rate": args.leave_rate == 0.05,
        "--region-depth": args.region_depth == 1,
    }
    ignored = [
        flag
        for flag, owners in flag_owners.items()
        if args.trajectory not in owners and not defaults[flag]
    ]
    if ignored:
        print(
            f"warning: the {args.trajectory} trajectory ignores "
            f"{', '.join(ignored)}",
            file=sys.stderr,
        )

    problem = _load_problem(args.tree, counting=args.counting)
    if args.trajectory == "churn":
        epochs = trajectories.rate_churn(
            problem,
            args.epochs,
            churn=args.churn,
            magnitude=args.magnitude,
            quiet_probability=args.quiet,
            seed=args.seed,
        )
    elif args.trajectory == "ramp":
        epochs = trajectories.ramp(problem, args.epochs, end_factor=args.factor)
    elif args.trajectory == "seasonal":
        epochs = trajectories.seasonal(
            problem, args.epochs, amplitude=args.amplitude, period=args.period
        )
    elif args.trajectory == "step":
        epochs = trajectories.step_change(
            problem, args.epochs, at=args.at, factor=args.factor
        )
    elif args.trajectory == "regional":
        epochs = trajectories.regional_churn(
            problem,
            args.epochs,
            depth=args.region_depth,
            magnitude=args.magnitude,
            quiet_probability=args.quiet,
            seed=args.seed,
        )
    else:  # join-leave
        epochs = trajectories.client_join_leave(
            problem,
            args.epochs,
            join_rate=args.join_rate,
            leave_rate=args.leave_rate,
            seed=args.seed,
        )

    return _run_dynamic_sequence(args, epochs)


def _run_dynamic_sequence(
    args: argparse.Namespace, epochs, trace_model=None
) -> int:
    """Solve and report one epoch sequence (synthetic or trace-derived).

    ``trace_model`` is the :class:`~repro.workloads.traces.TraceEpochs`
    behind a ``--trace`` replay; it labels the run and supplies the real
    epoch time spans to the ``--simulate`` replay.
    """
    label = "trace" if trace_model is not None else args.trajectory
    spans = None
    if trace_model is not None:
        spans = list(
            zip(trace_model.boundaries[:-1], trace_model.boundaries[1:])
        )

    result = solve_sequence(
        epochs,
        policy=args.policy,
        mode=args.mode,
        resolve=args.resolve.replace("-", "_"),
        engine=args.engine,
        shards=args.shards,
    )
    bounds = None
    if args.bounds:
        from repro.api import bound_sequence

        bounds = bound_sequence(epochs, policy=args.policy, method=args.bound_method)
        gaps = bounds.gaps(result.costs)
    if args.json:
        payload = result.to_dict()
        payload["trajectory"] = label
        payload["tree"] = args.tree
        if trace_model is not None:
            payload["trace"] = {
                "file": args.trace,
                "events": trace_model.trace.events,
                "method": trace_model.method,
                "boundaries": [float(b) for b in trace_model.boundaries],
            }
        if bounds is not None:
            payload["bounds"] = bounds.to_dict()
            # gaps() yields finite floats or None, both JSON-safe as-is.
            payload["gaps"] = list(gaps)
        if args.simulate:
            from repro.simulation import simulate_sequence

            replay = simulate_sequence(epochs, result.solutions, spans=spans)
            payload["replay"] = {
                "summary": replay.summary(),
                "transient_saturations": [
                    {"epoch": epoch, "link": [link[0], link[1]]}
                    for epoch, link in replay.transient_saturations()
                ],
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.solved_epochs else 2
    if trace_model is not None:
        print(
            f"trace replay of {args.trace} over {args.tree} "
            f"({args.mode} mode, {args.policy} policy)"
        )
        print(trace_model.summary(path=args.trace).describe())
    else:
        print(
            f"{args.trajectory} trajectory over {args.tree} "
            f"({args.mode} mode, {args.policy} policy)"
        )
    print(result.describe())
    for epoch, entry in enumerate(result.stats):
        line = "  " + entry.describe()
        if bounds is not None:
            value = bounds.values[epoch]
            gap = gaps[epoch]
            line += f" | bound {value:g}"
            line += f" (gap {gap:.3f})" if gap is not None else " (no gap)"
        print(line)
    if bounds is not None:
        print("Bounds: " + bounds.describe())

    if args.simulate:
        from repro.simulation import simulate_sequence

        replay = simulate_sequence(epochs, result.solutions, spans=spans)
        print()
        print("Replay: " + replay.summary())
        for epoch, link in replay.transient_saturations():
            print(f"  epoch {epoch}: link {link[0]!r}->{link[1]!r} saturates")
    return 0 if result.solved_epochs else 2


def _dispatch_serve(args: argparse.Namespace) -> int:
    """The ``serve`` sub-command: stdio, HTTP or loop-TCP serving.

    Stdio keeps stdout strictly machine-readable -- one JSON reply line
    per request line, nothing else -- so supervisors can pipe it; all
    diagnostics go to stderr.
    """
    from repro.serving.pool import SessionPool
    from repro.serving.server import ReproServer, serve_http, serve_stdio

    chosen = [flag for flag in ("stdio", "http", "tcp") if getattr(args, flag)]
    if len(chosen) > 1:
        print(
            f"error: --{' and --'.join(chosen)} are mutually exclusive",
            file=sys.stderr,
        )
        return 1

    pool = SessionPool(
        args.pool_capacity,
        max_bytes=args.max_bytes,
        mode=args.mode,
        engine=args.engine,
    )
    server = ReproServer(
        pool,
        snapshot_dir=args.snapshot_dir,
        snapshot_retain=args.snapshot_retain,
    )
    if server.restored:
        print(
            f"restored {server.restored} warm session(s) from {args.snapshot_dir}",
            file=sys.stderr,
        )

    if args.http is not None:
        host, _, port = args.http.rpartition(":")
        if not host or not port.isdigit():
            print(
                f"error: --http expects HOST:PORT, got {args.http!r}",
                file=sys.stderr,
            )
            return 1
        return serve_http(server, host, int(port))

    if args.tcp is not None:
        from repro.serving.loopserver import LoopServer

        host, _, port = args.tcp.rpartition(":")
        if not host or not port.isdigit():
            print(
                f"error: --tcp expects HOST:PORT, got {args.tcp!r}",
                file=sys.stderr,
            )
            return 1
        loop = LoopServer(server)
        bound_host, bound_port = loop.listen(host, int(port))
        print(
            f"loop-serving on tcp://{bound_host}:{bound_port} "
            "(newline-delimited JSON envelopes)",
            file=sys.stderr,
        )
        return loop.serve()

    if args.loop:
        from repro.serving.loopserver import LoopServer

        loop = LoopServer(server)
        try:
            loop.add_stream(sys.stdin.fileno(), sys.stdout.fileno())
        except PermissionError:
            # epoll cannot multiplex regular files (e.g. `repro serve
            # --loop < requests.json`); the blocking reader handles those.
            print(
                "note: stdin is not selectable; using the blocking stdio "
                "transport",
                file=sys.stderr,
            )
            return serve_stdio(server)
        return loop.serve()
    return serve_stdio(server)


def _dispatch_trace(args: argparse.Namespace) -> int:
    """The ``trace`` sub-command: ingest a log, model its epochs, report."""
    from repro.workloads.traces import detect_epochs, fixed_epochs, load_trace

    # Only `info` today; the required subparser rejects anything else.
    trace = load_trace(args.file, format=args.format, sort=args.sort)
    if args.epochs is not None:
        model = fixed_epochs(trace, args.epochs)
    else:
        model = detect_epochs(
            trace,
            bins=args.bins,
            threshold=args.threshold,
            max_epochs=args.max_epochs,
        )
    summary = model.summary(path=args.file)
    if args.json:
        print(summary.to_json(indent=2))
        return 0
    print(summary.describe())
    print(summary.rate_table())
    return 0


def _dispatch_loadtest(args: argparse.Namespace) -> int:
    """The ``loadtest`` sub-command: one open-loop IPPP run + report."""
    import numpy as np

    from repro.serving.loadgen import LoadgenConfig, run_loadtest
    from repro.serving.pool import SessionPool
    from repro.serving.server import ReproServer

    ops = tuple(op.strip() for op in args.ops.split(",") if op.strip())
    op_mix = None
    if args.op_mix is not None:
        op_mix = {}
        for part in args.op_mix.split(","):
            part = part.strip()
            if not part:
                continue
            op, separator, weight = part.partition("=")
            try:
                if not separator:
                    raise ValueError
                op_mix[op.strip()] = float(weight)
            except ValueError:
                print(
                    f"error: malformed --op-mix entry {part!r}; "
                    "expected OP=WEIGHT pairs like 'solve=3,bound=1'",
                    file=sys.stderr,
                )
                return 1
    try:
        config = LoadgenConfig(
            tenants=args.tenants,
            size=args.size,
            horizon=args.horizon,
            rate=args.rate,
            burst=args.burst,
            batch=args.batch,
            ops=ops,
            op_mix=op_mix,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    arrivals = None
    if args.trace is not None:
        from repro.workloads.traces import detect_epochs, load_trace

        # The trace's detected intensity replaces the sinusoid, rescaled to
        # the configured horizon and mean rate so --horizon/--rate keep
        # meaning what they say.
        trace = load_trace(args.trace)
        model = detect_epochs(trace)
        arrivals = model.arrival_schedule(
            np.random.default_rng(config.seed),
            horizon=config.horizon,
            mean_rate=config.rate,
        )
        if args.burst != 0.5:
            print(
                "warning: --trace replaces the sinusoidal intensity; "
                "ignoring --burst",
                file=sys.stderr,
            )
    target = (
        ReproServer(SessionPool(max(args.tenants, 2)))
        if args.target is None
        else args.target
    )
    report = run_loadtest(target, config, arrivals=arrivals)
    if args.json:
        print(report.to_json())
    else:
        print(report.describe())
    return 0


def _dispatch_bench(args: argparse.Namespace) -> int:
    """The ``bench`` sub-command: run the bench-marked perf suites.

    A thin, reproducible front end over ``pytest -m bench benchmarks/`` so
    the performance trajectory (every bench run appends an entry to
    ``BENCH_engine.json``) no longer depends on ad-hoc pytest invocations.
    """
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    bench_dir = root / "benchmarks"
    if not bench_dir.is_dir():
        print(
            f"error: no benchmarks/ directory next to the package ({bench_dir}); "
            "the bench suites only ship with a source checkout",
            file=sys.stderr,
        )
        return 1

    suites = sorted(path.name for path in bench_dir.glob("test_*.py"))
    if args.list:
        print(f"bench suites in {bench_dir}:")
        for name in suites:
            print(f"  {name}")
        print("run them with: repro-placement bench [-k EXPR]")
        return 0

    import pytest

    # The bench modules import helpers as ``benchmarks.conftest``, which
    # resolves only with the repository root on sys.path (pytest normally
    # gets this for free by being launched from the checkout).
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))

    pytest_args = [str(bench_dir), "-m", "bench", "-q", "-p", "no:cacheprovider"]
    if args.keyword:
        pytest_args += ["-k", args.keyword]
    if args.collect_only:
        pytest_args.append("--collect-only")
    code = int(pytest.main(pytest_args))
    if not args.collect_only and code == 0:
        print(f"bench entries appended to {root / 'BENCH_engine.json'}")
    return code


def _dispatch_doctor(args: argparse.Namespace) -> int:
    """The ``doctor`` sub-command: engine and native-kernel health report.

    Builds a two-client probe tree and runs every registered engine on it,
    so the report reflects what :func:`repro.algorithms.common.make_state`
    would actually return (including the native engine's silent fallback to
    ``fast`` when no C compiler is around).
    """
    from repro.algorithms._native import kernel_cache_dir, kernel_status
    from repro.algorithms.common import get_default_engine, make_state
    from repro.core.builder import TreeBuilder

    tree = (
        TreeBuilder()
        .add_node("root", capacity=10)
        .add_client("c1", requests=3, parent="root")
        .add_client("c2", requests=2, parent="root")
        .build()
    )
    probe = ReplicaPlacementProblem(tree=tree)

    engines = {}
    for engine in available_engines():
        try:
            state = make_state(probe, engine=engine)
        except Exception as error:  # report, never crash the doctor
            engines[engine] = {"ok": False, "error": f"{type(error).__name__}: {error}"}
        else:
            engines[engine] = {"ok": True, "state": type(state).__name__}

    status = kernel_status()
    try:
        from repro.lp.ipfp import ipfp_bound, ipfp_defaults

        probe_bound = ipfp_bound(probe)
        ipfp = {
            "available": True,
            "probe_value": probe_bound.value,
            "defaults": ipfp_defaults(),
        }
    except Exception as error:  # report, never crash the doctor
        ipfp = {"available": False, "error": f"{type(error).__name__}: {error}"}
    report = {
        "type": "doctor",
        "default_engine": get_default_engine(),
        "env_engine": os.environ.get("REPRO_ENGINE"),
        "engines": engines,
        "native_kernels": status,
        "native_cache_dir": str(kernel_cache_dir()),
        "ipfp": ipfp,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0

    print(f"default engine: {report['default_engine']}"
          + (f" (REPRO_ENGINE={report['env_engine']})" if report["env_engine"] else ""))
    for engine, entry in engines.items():
        if entry["ok"]:
            print(f"engine {engine:>6}: ok ({entry['state']})")
        else:
            print(f"engine {engine:>6}: FAILED ({entry['error']})")
    if status.get("available"):
        print(f"native kernels: compiled ({status.get('so_path')})")
    else:
        print(f"native kernels: unavailable ({status.get('error')})")
    print(f"native cache dir: {report['native_cache_dir']}")
    if ipfp.get("available"):
        defaults = ipfp["defaults"]
        print(
            "ipfp bound: available ("
            + ", ".join(f"{key}={value}" for key, value in sorted(defaults.items()))
            + ")"
        )
    else:
        print(f"ipfp bound: unavailable ({ipfp.get('error')})")
    return 0


def _load_problem(path: str, *, counting: bool) -> ReplicaPlacementProblem:
    tree = load_tree(path)
    kind = ProblemKind.REPLICA_COUNTING if counting else ProblemKind.REPLICA_COST
    return ReplicaPlacementProblem(tree=tree, kind=kind)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
