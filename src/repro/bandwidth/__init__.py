"""Link-capacity extension: per-link flow accounting and bandwidth checks."""

from repro.bandwidth.link_capacity import (
    link_utilisation,
    saturated_links,
    bandwidth_feasibility_report,
    BandwidthReport,
)

__all__ = [
    "link_utilisation",
    "saturated_links",
    "bandwidth_feasibility_report",
    "BandwidthReport",
]
