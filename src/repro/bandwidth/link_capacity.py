"""Per-link flow accounting for the bandwidth-constrained problem variants.

Paper Section 2.2.1 bounds the total flow of requests traversing every tree
link by the link's bandwidth ``BW_l``.  The solvers honour the constraint
through :class:`~repro.core.constraints.ConstraintSet`; this module provides
the reporting side:

* :func:`link_utilisation` -- flow and utilisation of every link under a
  given solution;
* :func:`saturated_links` -- the links whose utilisation exceeds a
  threshold (bottleneck detection);
* :func:`bandwidth_feasibility_report` -- a cheap necessary-condition check:
  the subtree hanging below a link cannot emit more requests than the link's
  bandwidth plus the processing capacity available inside the subtree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.tree import NodeId, TreeNetwork

__all__ = [
    "link_utilisation",
    "saturated_links",
    "bandwidth_feasibility_report",
    "BandwidthReport",
]

LinkKey = Tuple[NodeId, NodeId]


def link_utilisation(
    tree: TreeNetwork, solution: Solution
) -> Dict[LinkKey, Dict[str, float]]:
    """Flow, bandwidth and utilisation ratio of every link used by ``solution``."""
    flows = solution.assignment.link_flows(tree)
    report: Dict[LinkKey, Dict[str, float]] = {}
    for link in tree.links():
        flow = flows.get(link.key, 0.0)
        utilisation = flow / link.bandwidth if math.isfinite(link.bandwidth) and link.bandwidth > 0 else 0.0
        report[link.key] = {
            "flow": flow,
            "bandwidth": link.bandwidth,
            "utilisation": utilisation,
        }
    return report


def saturated_links(
    tree: TreeNetwork, solution: Solution, *, threshold: float = 0.95
) -> List[LinkKey]:
    """Links whose utilisation reaches ``threshold`` (bottleneck candidates)."""
    result = []
    for key, stats in link_utilisation(tree, solution).items():
        if math.isfinite(stats["bandwidth"]) and stats["utilisation"] >= threshold:
            result.append(key)
    return result


@dataclass
class BandwidthReport:
    """Outcome of :func:`bandwidth_feasibility_report`."""

    feasible: bool
    overloaded_links: List[LinkKey]

    def __bool__(self) -> bool:
        return self.feasible


def bandwidth_feasibility_report(problem: ReplicaPlacementProblem) -> BandwidthReport:
    """Necessary-condition check for bandwidth feasibility.

    For every link ``child -> parent``, the requests issued inside
    ``subtree(child)`` either stay inside the subtree (bounded by the
    subtree's total processing capacity) or cross the link (bounded by its
    bandwidth).  A link violating
    ``subtree_requests <= subtree_capacity + bandwidth`` makes the instance
    infeasible for every policy, whatever the placement.
    """
    tree = problem.tree
    overloaded: List[LinkKey] = []
    if not problem.constraints.enforce_bandwidth:
        return BandwidthReport(feasible=True, overloaded_links=[])
    for link in tree.links():
        if not math.isfinite(link.bandwidth):
            continue
        if tree.is_client(link.child):
            subtree_requests = tree.client(link.child).requests
            subtree_capacity = 0.0
        else:
            subtree_requests = tree.subtree_requests(link.child)
            subtree_capacity = sum(
                tree.node(nid).capacity for nid in tree.subtree_nodes(link.child)
            )
        if subtree_requests > subtree_capacity + link.bandwidth + 1e-9:
            overloaded.append(link.key)
    return BandwidthReport(feasible=not overloaded, overloaded_links=overloaded)
