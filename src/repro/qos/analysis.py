"""QoS reachability analysis and per-solution QoS statistics.

The paper's QoS constraint bounds the distance (hop count) or latency
between a client and each of its servers.  These helpers answer the
questions that come up when adding QoS to an instance:

* which servers can serve a client at all (:func:`reachable_servers`);
* how tight a QoS bound the platform could sustain for a client
  (:func:`tightest_feasible_qos`);
* whether an instance is trivially QoS-infeasible before running any solver
  (:func:`qos_feasibility_report`);
* how far from their bounds the clients of a solved instance actually are
  (:func:`qos_statistics`), which the examples use to contrast the Closest
  and Upwards policies (Upwards serves farther away by design).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.constraints import ConstraintSet, QoSMode
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.tree import NodeId, TreeNetwork

__all__ = [
    "reachable_servers",
    "tightest_feasible_qos",
    "qos_feasibility_report",
    "qos_statistics",
    "QoSReport",
]


def reachable_servers(
    tree: TreeNetwork,
    client_id: NodeId,
    bound: Optional[float] = None,
    *,
    mode: QoSMode = QoSMode.DISTANCE,
) -> Tuple[NodeId, ...]:
    """Ancestors of ``client_id`` within the QoS bound, closest first.

    ``bound`` defaults to the client's own declared QoS bound.
    """
    constraints = ConstraintSet(qos_mode=mode)
    if bound is None:
        bound = tree.client(client_id).qos
    return tuple(
        ancestor
        for ancestor in tree.ancestors(client_id)
        if constraints.qos_metric(tree, client_id, ancestor) <= bound
    )


def tightest_feasible_qos(
    tree: TreeNetwork, client_id: NodeId, *, mode: QoSMode = QoSMode.DISTANCE
) -> float:
    """Smallest QoS bound for which ``client_id`` still has a possible server.

    This is simply the metric to the client's parent (its closest candidate
    server); requesting anything smaller makes the instance infeasible
    regardless of the placement.
    """
    constraints = ConstraintSet(qos_mode=mode)
    parent = tree.parent(client_id)
    if parent is None:  # pragma: no cover - clients always have parents
        return math.inf
    return constraints.qos_metric(tree, client_id, parent)


@dataclass
class QoSReport:
    """Outcome of :func:`qos_feasibility_report`."""

    feasible: bool
    unreachable_clients: List[NodeId]
    tight_clients: List[NodeId]

    def __bool__(self) -> bool:
        return self.feasible


def qos_feasibility_report(problem: ReplicaPlacementProblem) -> QoSReport:
    """Cheap pre-check of QoS feasibility.

    A client whose QoS bound excludes *every* ancestor can never be served,
    whatever the placement; a client whose bound only admits its parent is
    flagged as *tight* (it pins a replica to that exact node).
    """
    tree = problem.tree
    unreachable: List[NodeId] = []
    tight: List[NodeId] = []
    if not problem.constraints.has_qos:
        return QoSReport(feasible=True, unreachable_clients=[], tight_clients=[])
    for client in tree.clients():
        if client.requests <= 0:
            continue
        eligible = problem.eligible_servers(client.id)
        if not eligible:
            unreachable.append(client.id)
        elif len(eligible) == 1:
            tight.append(client.id)
    return QoSReport(
        feasible=not unreachable,
        unreachable_clients=unreachable,
        tight_clients=tight,
    )


def qos_statistics(
    problem: ReplicaPlacementProblem, solution: Solution
) -> Dict[str, float]:
    """Distance/latency statistics of a solved instance.

    Returns the mean and maximum QoS metric over every served request and
    the worst slack (bound minus metric; negative would mean a violation).
    Useful to quantify the price of the Upwards/Multiple policies: they may
    serve requests farther from the clients than Closest does.
    """
    tree = problem.tree
    constraints = problem.constraints
    mode = constraints.qos_mode if constraints.has_qos else QoSMode.DISTANCE
    metric_constraints = ConstraintSet(qos_mode=mode)

    total_weighted = 0.0
    total_requests = 0.0
    worst = 0.0
    worst_slack = math.inf
    for (client_id, server_id), amount in solution.assignment.items():
        metric = metric_constraints.qos_metric(tree, client_id, server_id)
        total_weighted += metric * amount
        total_requests += amount
        worst = max(worst, metric)
        bound = tree.client(client_id).qos
        if math.isfinite(bound):
            worst_slack = min(worst_slack, bound - metric)
    mean = total_weighted / total_requests if total_requests > 0 else 0.0
    return {
        "mean_metric": mean,
        "max_metric": worst,
        "worst_slack": worst_slack if math.isfinite(worst_slack) else math.inf,
        "served_requests": total_requests,
    }
