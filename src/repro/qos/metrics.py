"""Multi-metric QoS edge annotations and tenant service classes.

The paper's QoS model is a single per-client bound on hop count (or link
latency).  Real distribution platforms grade paths on several axes at
once -- latency, jitter, loss, residual bandwidth -- and serve *tenants*
of different priorities whose tolerance for each axis differs.  This
module provides that layer:

* :class:`QoSMetrics` -- a per-link annotation carried by
  :attr:`repro.core.tree.Link.metrics`.  Metrics compose along a path
  with :meth:`QoSMetrics.extend`: latency and jitter add, loss combines
  as ``1 - (1-a)(1-b)``, bandwidth is the path minimum.  Every component
  is therefore monotone non-decreasing (bandwidth: non-increasing)
  toward the root.
* :class:`MetricWeights` / :class:`MetricScales` -- a per-class linear
  normalisation of a path's metrics into one scalar **path score**:
  each metric is divided by its class scale (the magnitude the class
  considers "one unit of annoyance") and the weighted parts are summed.
  With non-negative weights the score inherits the metrics'
  monotonicity, which is what lets the classed constraint set ride the
  memoised threshold machinery of :class:`repro.core.index.TreeIndex`.
* :class:`ServiceClass` -- a tenant/priority class: a name, its weights
  and scales, a ``rate_multiplier`` (demand amplification applied when a
  class is carved out into its own sub-problem), a ``bandwidth_fraction``
  (the share of every link the class may use in its sub-problem) and a
  ``priority`` rank.  :data:`DEFAULT_CLASSES` ships a gold/silver/bronze
  trio.
* helpers -- :func:`annotate_tree` draws deterministic per-link metrics
  for an existing tree, :func:`path_metrics` / :func:`iter_ancestor_scores`
  evaluate paths, and :func:`split_by_class` carves a classed problem
  into per-class sub-problems with reserved bandwidth shares.

The constraint-set integration lives in
:class:`repro.core.constraints.ClassedConstraintSet`; this module stays
import-light (stdlib + :mod:`repro.core.tree`) so the core can reach it
lazily without a cycle.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.tree import Link, NodeId, TreeNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import ReplicaPlacementProblem

__all__ = [
    "QoSMetrics",
    "MetricWeights",
    "MetricScales",
    "ServiceClass",
    "DEFAULT_SCALES",
    "DEFAULT_CLASSES",
    "annotate_tree",
    "iter_ancestor_scores",
    "path_metrics",
    "split_by_class",
]


def _require_finite(name: str, value: float, *, allow_inf: bool = False) -> float:
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    if not allow_inf and math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value


@dataclass(frozen=True)
class QoSMetrics:
    """One link's (or one path's) QoS measurements.

    ``latency`` and ``jitter`` are in time units and **add** along a
    path; ``loss`` is a drop probability in ``[0, 1]`` and composes as
    independent losses (``1 - (1-a)(1-b)``); ``bandwidth`` is the
    residual capacity of the link and a path carries the **minimum**
    over its links (``math.inf`` = unconstrained).
    """

    latency: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth: float = math.inf

    def __post_init__(self) -> None:
        for name in ("latency", "jitter"):
            value = _require_finite(name, getattr(self, name))
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
            object.__setattr__(self, name, value)
        loss = _require_finite("loss", self.loss)
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss must lie in [0, 1], got {loss}")
        object.__setattr__(self, "loss", loss)
        bandwidth = _require_finite("bandwidth", self.bandwidth, allow_inf=True)
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        object.__setattr__(self, "bandwidth", bandwidth)

    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls) -> "QoSMetrics":
        """The neutral element of :meth:`extend` (an empty path)."""
        return cls()

    @classmethod
    def from_link(cls, link: Link) -> "QoSMetrics":
        """The link's annotation, or a fallback derived from its fields.

        Unannotated links behave like the pre-metric model: latency is
        the link's ``comm_time``, jitter and loss are zero, bandwidth is
        the link's ``bandwidth`` -- so a classed constraint set on an
        unannotated tree degrades to a weighted-latency bound.
        """
        if link.metrics is not None:
            return link.metrics
        return cls(latency=link.comm_time, bandwidth=link.bandwidth)

    def extend(self, other: "QoSMetrics") -> "QoSMetrics":
        """Compose ``self`` (a path) with ``other`` (one more link up)."""
        return QoSMetrics(
            latency=self.latency + other.latency,
            jitter=self.jitter + other.jitter,
            loss=1.0 - (1.0 - self.loss) * (1.0 - other.loss),
            bandwidth=min(self.bandwidth, other.bandwidth),
        )

    def to_dict(self) -> Dict[str, Optional[float]]:
        """JSON-compatible payload (``null`` encodes infinite bandwidth)."""
        return {
            "latency": self.latency,
            "jitter": self.jitter,
            "loss": self.loss,
            "bandwidth": None if math.isinf(self.bandwidth) else self.bandwidth,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QoSMetrics":
        bandwidth = payload.get("bandwidth", None)
        return cls(
            latency=float(payload.get("latency", 0.0)),
            jitter=float(payload.get("jitter", 0.0)),
            loss=float(payload.get("loss", 0.0)),
            bandwidth=math.inf if bandwidth is None else float(bandwidth),
        )


@dataclass(frozen=True)
class MetricWeights:
    """How much a class cares about each metric (all weights >= 0 keeps
    the path score monotone; negative weights are allowed but drop the
    instance to the per-pair fallback eligibility path)."""

    latency: float = 1.0
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth: float = 0.0

    def __post_init__(self) -> None:
        for name in ("latency", "jitter", "loss", "bandwidth"):
            object.__setattr__(
                self, name, _require_finite(name, getattr(self, name))
            )

    @property
    def monotone(self) -> bool:
        """True when every weight is non-negative (score monotone on paths)."""
        return (
            self.latency >= 0
            and self.jitter >= 0
            and self.loss >= 0
            and self.bandwidth >= 0
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "latency": self.latency,
            "jitter": self.jitter,
            "loss": self.loss,
            "bandwidth": self.bandwidth,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MetricWeights":
        return cls(**{k: float(v) for k, v in payload.items()})


@dataclass(frozen=True)
class MetricScales:
    """Per-class normalisation: the magnitude of each metric worth one
    score unit.  ``bandwidth`` is the floor the class wants along the
    path; paths offering less pay ``scale/offered - 1`` (scaled by the
    bandwidth weight), paths at or above the floor pay nothing."""

    latency: float = 1.0
    jitter: float = 1.0
    loss: float = 0.05
    bandwidth: float = 1.0

    def __post_init__(self) -> None:
        for name in ("latency", "jitter", "loss", "bandwidth"):
            value = _require_finite(name, getattr(self, name))
            if value <= 0:
                raise ValueError(f"{name} scale must be > 0, got {value}")
            object.__setattr__(self, name, value)

    def to_dict(self) -> Dict[str, float]:
        return {
            "latency": self.latency,
            "jitter": self.jitter,
            "loss": self.loss,
            "bandwidth": self.bandwidth,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MetricScales":
        return cls(**{k: float(v) for k, v in payload.items()})


DEFAULT_SCALES = MetricScales()


@dataclass(frozen=True)
class ServiceClass:
    """One tenant/priority class.

    ``rate_multiplier`` amplifies the class's demand when it is carved
    into its own sub-problem (headroom provisioning for high classes);
    ``bandwidth_fraction`` is the share of every link the class's
    sub-problem may use (:func:`split_by_class`); lower ``priority``
    ranks are more important.
    """

    name: str
    weights: MetricWeights = MetricWeights()
    scales: MetricScales = DEFAULT_SCALES
    rate_multiplier: float = 1.0
    bandwidth_fraction: float = 1.0
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service class name must be non-empty")
        multiplier = _require_finite("rate_multiplier", self.rate_multiplier)
        if multiplier <= 0:
            raise ValueError(f"rate_multiplier must be > 0, got {multiplier}")
        object.__setattr__(self, "rate_multiplier", multiplier)
        fraction = _require_finite("bandwidth_fraction", self.bandwidth_fraction)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"bandwidth_fraction must lie in (0, 1], got {fraction}"
            )
        object.__setattr__(self, "bandwidth_fraction", fraction)
        object.__setattr__(self, "priority", int(self.priority))

    # ------------------------------------------------------------------ #
    @property
    def monotone(self) -> bool:
        """True when this class's path score is monotone along root paths."""
        return self.weights.monotone

    def score(self, metrics: QoSMetrics) -> float:
        """The class's scalar path score of ``metrics`` (lower is better)."""
        w, s = self.weights, self.scales
        total = 0.0
        if w.latency:
            total += w.latency * (metrics.latency / s.latency)
        if w.jitter:
            total += w.jitter * (metrics.jitter / s.jitter)
        if w.loss:
            total += w.loss * (metrics.loss / s.loss)
        if w.bandwidth:
            if math.isinf(metrics.bandwidth):
                deficit = 0.0
            else:
                deficit = max(0.0, s.bandwidth / metrics.bandwidth - 1.0)
            total += w.bandwidth * deficit
        return total

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "weights": self.weights.to_dict(),
            "scales": self.scales.to_dict(),
            "rate_multiplier": self.rate_multiplier,
            "bandwidth_fraction": self.bandwidth_fraction,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ServiceClass":
        return cls(
            name=str(payload["name"]),
            weights=MetricWeights.from_dict(payload.get("weights", {})),
            scales=MetricScales.from_dict(payload.get("scales", {})),
            rate_multiplier=float(payload.get("rate_multiplier", 1.0)),
            bandwidth_fraction=float(payload.get("bandwidth_fraction", 1.0)),
            priority=int(payload.get("priority", 0)),
        )


#: A ready-made gold/silver/bronze tenant hierarchy: gold is latency- and
#: jitter-sensitive with provisioned headroom and half the bandwidth
#: reserve, bronze tolerates everything but heavy loss.
DEFAULT_CLASSES: Tuple[ServiceClass, ...] = (
    ServiceClass(
        name="gold",
        weights=MetricWeights(latency=1.0, jitter=0.5, loss=1.0, bandwidth=0.5),
        scales=MetricScales(latency=2.0, jitter=1.0, loss=0.01, bandwidth=4.0),
        rate_multiplier=1.25,
        bandwidth_fraction=0.5,
        priority=0,
    ),
    ServiceClass(
        name="silver",
        weights=MetricWeights(latency=1.0, jitter=0.25, loss=0.5),
        scales=MetricScales(latency=4.0, jitter=2.0, loss=0.05),
        rate_multiplier=1.0,
        bandwidth_fraction=0.3,
        priority=1,
    ),
    ServiceClass(
        name="bronze",
        weights=MetricWeights(latency=1.0, loss=0.25),
        scales=MetricScales(latency=8.0, loss=0.1),
        rate_multiplier=1.0,
        bandwidth_fraction=0.2,
        priority=2,
    ),
)


# --------------------------------------------------------------------------- #
# path evaluation
# --------------------------------------------------------------------------- #
def iter_ancestor_scores(
    tree: TreeNetwork, client_id: NodeId, service_class: ServiceClass
) -> Iterator[Tuple[NodeId, float]]:
    """Yield ``(ancestor, score)`` up the root path of ``client_id``.

    The single accumulation every consumer shares: the threshold walk of
    :meth:`repro.core.index.TreeIndex.qos_depth_thresholds`, the
    per-pair metric of
    :meth:`~repro.core.constraints.ClassedConstraintSet.qos_metric` and
    the generic ``allowed_servers`` fallback all iterate this exact
    float sequence, which is what keeps the three engines bit-identical
    on classed instances.
    """
    total = QoSMetrics.identity()
    below = client_id
    for ancestor in tree.ancestors(client_id):
        total = total.extend(QoSMetrics.from_link(tree.link(below)))
        yield ancestor, service_class.score(total)
        below = ancestor


def path_metrics(
    tree: TreeNetwork, client_id: NodeId, server_id: NodeId
) -> QoSMetrics:
    """Accumulated metrics of the path from ``client_id`` up to ``server_id``."""
    total = QoSMetrics.identity()
    below = client_id
    for ancestor in tree.ancestors(client_id):
        total = total.extend(QoSMetrics.from_link(tree.link(below)))
        if ancestor == server_id:
            return total
        below = ancestor
    from repro.core.exceptions import TreeStructureError

    raise TreeStructureError(
        f"{server_id!r} is not an ancestor of {client_id!r}"
    )


# --------------------------------------------------------------------------- #
# tree annotation and per-class carving
# --------------------------------------------------------------------------- #
def annotate_tree(
    tree: TreeNetwork,
    *,
    seed: int = 0,
    latency_jitter: float = 0.5,
    jitter_high: float = 0.3,
    loss_high: float = 0.01,
    bandwidth: Optional[float] = None,
) -> TreeNetwork:
    """Return a copy of ``tree`` whose links carry drawn :class:`QoSMetrics`.

    Deterministic in ``seed`` and the tree's link set: each link's
    latency is its ``comm_time`` perturbed by up to ``latency_jitter``
    (relative), jitter and loss are uniform draws below their highs, and
    bandwidth is the link's own bandwidth unless an explicit finite
    ``bandwidth`` override is given.  Already-annotated links are
    re-drawn like the rest.
    """
    rng = random.Random(seed)
    links = []
    for link in sorted(tree.links(), key=lambda item: repr(item.key)):
        metrics = QoSMetrics(
            latency=link.comm_time * (1.0 + latency_jitter * rng.random()),
            jitter=jitter_high * rng.random(),
            loss=loss_high * rng.random(),
            bandwidth=link.bandwidth if bandwidth is None else float(bandwidth),
        )
        links.append(replace(link, metrics=metrics))
    return TreeNetwork(list(tree.nodes()), list(tree.clients()), links)


def split_by_class(
    problem: "ReplicaPlacementProblem",
    assignments: Mapping[NodeId, str],
    classes: Sequence[ServiceClass] = DEFAULT_CLASSES,
) -> Dict[str, "ReplicaPlacementProblem"]:
    """Carve a problem into independent per-class sub-problems.

    Each class keeps only its own clients' demand (other clients drop to
    rate 0), amplified by its ``rate_multiplier``, and sees every finite
    link bandwidth scaled to its reserved ``bandwidth_fraction`` -- the
    SNIPPETS-style priority-group reservation.  Solving the sub-problems
    separately and summing costs over-provisions relative to the joint
    solve, which is exactly the per-class-isolation price the quickstart
    walkthrough demonstrates against the IPFP bound.
    """
    by_name = {cls.name: cls for cls in classes}
    unknown = sorted(set(assignments.values()) - set(by_name))
    if unknown:
        raise ValueError(f"assignments reference unknown classes {unknown}")
    tree = problem.tree
    results: Dict[str, "ReplicaPlacementProblem"] = {}
    for cls in classes:
        links = []
        for link in tree.links():
            if math.isinf(link.bandwidth):
                links.append(link)
            else:
                links.append(
                    replace(link, bandwidth=link.bandwidth * cls.bandwidth_fraction)
                )
        clients = [
            replace(
                client,
                requests=(
                    client.requests * cls.rate_multiplier
                    if assignments.get(client.id) == cls.name
                    else 0.0
                ),
            )
            for client in tree.clients()
        ]
        carved = TreeNetwork(list(tree.nodes()), clients, links)
        results[cls.name] = replace(problem, tree=carved)
    return results
