"""QoS extension: distance/latency bounds, multi-metric classes, analysis.

The core problem model (:mod:`repro.core.constraints`) already enforces QoS
when a :class:`~repro.core.constraints.ConstraintSet` requests it; this
package adds the richer layers on top:

* :mod:`repro.qos.metrics` -- multi-metric edge annotations
  (:class:`~repro.qos.metrics.QoSMetrics`: latency/jitter/loss/bandwidth),
  per-class score normalisation (:class:`~repro.qos.metrics.MetricWeights`
  / :class:`~repro.qos.metrics.MetricScales`) and tenant
  :class:`~repro.qos.metrics.ServiceClass` definitions with rate
  multipliers and reserved bandwidth fractions.  The constraint-set
  integration is :class:`repro.core.constraints.ClassedConstraintSet`.
* :mod:`repro.qos.analysis` -- per-client QoS reachability (which ancestors
  are in range, the tightest feasible bound), tree-level QoS feasibility
  pre-checks and solution-level QoS statistics.

Import note: this ``__init__`` may import :mod:`repro.qos.analysis` (which
imports :mod:`repro.core.constraints`) but the reverse edge is lazy --
``core.constraints`` only reaches :mod:`repro.qos.metrics` from inside
method bodies, never at module scope, so there is no import cycle.
"""

from repro.qos.analysis import (
    reachable_servers,
    tightest_feasible_qos,
    qos_feasibility_report,
    qos_statistics,
)
from repro.qos.metrics import (
    DEFAULT_CLASSES,
    DEFAULT_SCALES,
    MetricScales,
    MetricWeights,
    QoSMetrics,
    ServiceClass,
    annotate_tree,
    iter_ancestor_scores,
    path_metrics,
    split_by_class,
)

__all__ = [
    "reachable_servers",
    "tightest_feasible_qos",
    "qos_feasibility_report",
    "qos_statistics",
    "QoSMetrics",
    "MetricWeights",
    "MetricScales",
    "ServiceClass",
    "DEFAULT_SCALES",
    "DEFAULT_CLASSES",
    "annotate_tree",
    "iter_ancestor_scores",
    "path_metrics",
    "split_by_class",
]
