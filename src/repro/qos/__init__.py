"""QoS extension: distance- and latency-based service bounds.

The core problem model (:mod:`repro.core.constraints`) already enforces QoS
when a :class:`~repro.core.constraints.ConstraintSet` requests it; this
package adds the analysis helpers used by the QoS-aware experiments:

* :mod:`repro.qos.analysis` -- per-client QoS reachability (which ancestors
  are in range, the tightest feasible bound), tree-level QoS feasibility
  pre-checks and solution-level QoS statistics.
"""

from repro.qos.analysis import (
    reachable_servers,
    tightest_feasible_qos,
    qos_feasibility_report,
    qos_statistics,
)

__all__ = [
    "reachable_servers",
    "tightest_feasible_qos",
    "qos_feasibility_report",
    "qos_statistics",
]
