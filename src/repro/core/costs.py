"""Objective functions and combinatorial lower bounds.

The objective of the Replica Placement problem is the total storage cost of
the chosen replicas, ``min sum_{s in R} s_s`` (paper Section 2.2.2).  This
module provides:

* :func:`placement_cost` -- the objective value of a placement under a
  problem's cost mode;
* :func:`request_lower_bound` -- the obvious Replica Counting lower bound
  ``ceil(sum_i r_i / W)`` of paper Section 3.4 (homogeneous platforms);
* :func:`capacity_cost_lower_bound` -- its Replica Cost analogue: with
  ``s_j = W_j``, every valid replica set has total capacity at least the
  total number of requests, hence cost at least ``sum_i r_i``;
* :func:`greedy_cost_lower_bound` -- a slightly sharper bound for general
  storage costs, obtained by greedily covering the request volume with the
  best cost-per-capacity nodes (a fractional knapsack argument).

These bounds are *not* tight in general -- Section 3.4 of the paper exhibits
instances whose optimal cost is arbitrarily higher -- but they are cheap and
are used as sanity checks by the tests and as a fallback when the LP-based
lower bound of :mod:`repro.lp` is not available.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.exceptions import TreeStructureError
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.solution import Placement
from repro.core.tree import NodeId, TreeNetwork

__all__ = [
    "placement_cost",
    "request_lower_bound",
    "capacity_cost_lower_bound",
    "greedy_cost_lower_bound",
    "trivial_lower_bound",
]


def placement_cost(problem: ReplicaPlacementProblem, placement) -> float:
    """Total storage cost of ``placement`` under ``problem``'s cost mode.

    ``placement`` may be a :class:`~repro.core.solution.Placement` or any
    iterable of node identifiers.
    """
    if isinstance(placement, Placement):
        nodes: Iterable[NodeId] = placement.replicas
    else:
        nodes = placement
    return sum(problem.storage_cost(node_id) for node_id in nodes)


def request_lower_bound(tree: TreeNetwork) -> int:
    """The Replica Counting lower bound ``ceil(sum_i r_i / W)``.

    Only defined on homogeneous platforms (paper Section 3.4).  A zero-load
    tree needs no replica, so the bound is 0 in that case.
    """
    if not tree.is_homogeneous():
        raise TreeStructureError(
            "request_lower_bound is the Replica Counting bound and requires a "
            "homogeneous platform"
        )
    total = tree.total_requests()
    if total <= 0:
        return 0
    capacity = tree.uniform_capacity()
    if capacity <= 0:
        raise TreeStructureError("nodes with zero capacity cannot serve any request")
    return int(math.ceil(total / capacity - 1e-12))


def capacity_cost_lower_bound(tree: TreeNetwork) -> float:
    """Replica Cost lower bound: with ``s_j = W_j`` the cost is at least ``sum r_i``."""
    return tree.total_requests()


def greedy_cost_lower_bound(problem: ReplicaPlacementProblem) -> float:
    """Fractional-knapsack lower bound for arbitrary storage costs.

    Sort nodes by increasing cost-per-capacity and cover the total request
    volume fractionally; the resulting cost can never exceed the cost of any
    valid (integral) replica set, because a valid set must provide at least
    ``sum_i r_i`` units of capacity and pays at least the cheapest possible
    rate for each unit.
    """
    total = problem.tree.total_requests()
    if total <= 0:
        return 0.0
    rated = []
    for node in problem.tree.nodes():
        if node.capacity <= 0:
            continue
        cost = problem.storage_cost(node.id)
        rated.append((cost / node.capacity, node.capacity, cost))
    rated.sort()
    remaining = total
    bound = 0.0
    for rate, capacity, _cost in rated:
        take = min(capacity, remaining)
        bound += rate * take
        remaining -= take
        if remaining <= 1e-12:
            break
    if remaining > 1e-9:
        # Even using every node fractionally the requests cannot be covered:
        # the instance is infeasible and any "lower bound" is +inf.
        return math.inf
    return bound


def trivial_lower_bound(problem: ReplicaPlacementProblem) -> float:
    """Best combinatorial lower bound available without solving an LP.

    * Replica Counting: ``ceil(sum r_i / W)``;
    * Replica Cost: ``sum r_i``;
    * general costs: the fractional-knapsack bound.
    """
    if problem.kind is ProblemKind.REPLICA_COUNTING:
        return float(request_lower_bound(problem.tree))
    if problem.kind is ProblemKind.REPLICA_COST:
        return capacity_cost_lower_bound(problem.tree)
    return greedy_cost_lower_bound(problem)
