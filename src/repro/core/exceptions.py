"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses communicate
*why* an operation failed:

* :class:`TreeStructureError` -- the tree being built or queried is malformed
  (duplicate identifiers, missing parent, client with children, cycles, ...);
* :class:`InfeasibleError` -- a problem instance admits no valid solution
  under the requested access policy (or a solver could not find one);
* :class:`PolicyViolationError` -- an explicit assignment violates the access
  policy semantics (e.g. a *Closest* client served above a lower replica);
* :class:`CapacityExceededError` -- a server is assigned more requests than
  its processing capacity;
* :class:`QoSViolationError` -- a client is served farther away than its QoS
  bound allows;
* :class:`BandwidthExceededError` -- the flow routed through a link exceeds
  its bandwidth;
* :class:`SolverError` -- the LP/ILP backend failed unexpectedly;
* :class:`SerializationError` -- a persisted payload cannot be decoded
  (unknown result tag, malformed file, unserialisable constraint subclass);
* :class:`WorkloadError` -- a workload input (an arrival-process intensity,
  a trace-shaped timestamp array) is malformed: non-finite values, unsorted
  timestamps, invalid horizons;
* :class:`TraceFormatError` -- a request-log trace file cannot be parsed
  (bad CSV/JSONL rows, out-of-order timestamps, unknown client ids).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class TreeStructureError(ReproError):
    """The tree network is structurally invalid."""


class InfeasibleError(ReproError):
    """No valid solution exists (or none could be found) for the instance."""

    def __init__(self, message: str = "problem instance is infeasible", *, policy=None):
        super().__init__(message)
        #: The access policy under which infeasibility was detected (optional).
        self.policy = policy


class PolicyViolationError(ReproError):
    """An assignment does not respect the access-policy semantics."""


class CapacityExceededError(ReproError):
    """A server processes more requests than its capacity allows."""

    def __init__(self, node, load, capacity):
        super().__init__(
            f"server {node!r} is assigned {load} requests but has capacity {capacity}"
        )
        self.node = node
        self.load = load
        self.capacity = capacity


class QoSViolationError(ReproError):
    """A client is served by a replica beyond its QoS bound."""

    def __init__(self, client, server, distance, bound):
        super().__init__(
            f"client {client!r} served by {server!r} at distance {distance} "
            f"exceeds its QoS bound {bound}"
        )
        self.client = client
        self.server = server
        self.distance = distance
        self.bound = bound


class BandwidthExceededError(ReproError):
    """The traffic routed through a link exceeds its bandwidth."""

    def __init__(self, link, flow, bandwidth):
        super().__init__(
            f"link {link!r} carries {flow} requests but has bandwidth {bandwidth}"
        )
        self.link = link
        self.flow = flow
        self.bandwidth = bandwidth


class SolverError(ReproError):
    """The linear-programming backend reported an unexpected failure."""


class SerializationError(ReproError, ValueError):
    """A serialised payload cannot be encoded or decoded.

    Also a :class:`ValueError` so callers that predate the dedicated class
    (and the CLI's blanket error handling) keep working.
    """


class WorkloadError(ReproError, ValueError):
    """A workload input is malformed (non-finite, unsorted, bad horizon).

    Raised by the arrival-process samplers of
    :mod:`repro.workloads.distributions` and the trace subsystem of
    :mod:`repro.workloads.traces` instead of letting a numpy broadcasting
    traceback surface.  Also a :class:`ValueError` so callers that caught
    the samplers' original ``ValueError``s keep working.
    """


class TraceFormatError(WorkloadError):
    """A request-log trace cannot be parsed or does not fit its target tree.

    Carries an optional ``line`` attribute naming the offending line of the
    source file (1-based) when the failure is local to one record.
    """

    def __init__(self, message: str, *, line=None):
        super().__init__(message if line is None else f"line {line}: {message}")
        #: 1-based line number of the offending record (``None`` if global).
        self.line = line
