"""Access policies: *Closest*, *Upwards* and *Multiple* (paper Section 3).

Given a replica placement, an access policy restricts **which** replicas may
serve a client's requests:

``Closest``
    The classical policy of the literature: all requests of a client are
    served by the first replica encountered on the path from the client up
    to the root.  Requests may never traverse a replica to be served higher.

``Upwards``
    The general single-server policy introduced by the paper: all requests of
    a client are served by a *single* replica which can be located anywhere
    on the client-to-root path.

``Multiple``
    The multiple-server policy: the requests of a client may be split among
    several replicas on its client-to-root path.

Every Closest-compliant assignment is Upwards-compliant, and every
Upwards-compliant assignment is Multiple-compliant; this dominance order is
exposed by :meth:`Policy.is_at_least_as_permissive_as` and verified by the
property-based tests of the package.
"""

from __future__ import annotations

import enum
from typing import Tuple

__all__ = ["Policy"]


class Policy(enum.Enum):
    """The three access policies compared in the paper."""

    CLOSEST = "closest"
    UPWARDS = "upwards"
    MULTIPLE = "multiple"

    # ------------------------------------------------------------------ #
    @property
    def single_server(self) -> bool:
        """``True`` when each client is served by exactly one replica."""
        return self in (Policy.CLOSEST, Policy.UPWARDS)

    @property
    def permissiveness(self) -> int:
        """Total order of policy permissiveness (higher = more permissive)."""
        return _PERMISSIVENESS[self]

    def is_at_least_as_permissive_as(self, other: "Policy") -> bool:
        """``True`` when any assignment valid for ``other`` is valid for ``self``.

        The paper's dominance chain is ``Closest <= Upwards <= Multiple``:
        the cost of an optimal solution never increases when moving to a more
        permissive policy.
        """
        return self.permissiveness >= other.permissiveness

    @classmethod
    def ordered(cls) -> Tuple["Policy", ...]:
        """Policies from most restrictive to most permissive."""
        return (cls.CLOSEST, cls.UPWARDS, cls.MULTIPLE)

    @classmethod
    def parse(cls, value) -> "Policy":
        """Coerce a :class:`Policy`, name or value string into a :class:`Policy`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            for member in cls:
                if lowered in (member.value, member.name.lower()):
                    return member
        raise ValueError(
            f"cannot interpret {value!r} as an access policy; expected one of "
            f"{[m.value for m in cls]}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_PERMISSIVENESS = {
    Policy.CLOSEST: 0,
    Policy.UPWARDS: 1,
    Policy.MULTIPLE: 2,
}
