"""Deriving request assignments from a bare replica placement.

The heuristics of :mod:`repro.algorithms` build an explicit assignment while
they run, but several other parts of the package (the exhaustive optimum
search, the policy-comparison utilities, the analysis module) only
manipulate *placements* -- sets of replica nodes -- and need to answer the
question "does this placement admit a valid assignment under policy P, and
if so produce one?".

The answer has very different complexity per policy:

* **Closest** -- the assignment is forced (every client goes to its lowest
  replica ancestor); feasibility is a deterministic capacity check.
* **Multiple** -- feasibility is a transportation problem on a laminar
  family; *without QoS* a bottom-up saturating greedy decides it exactly
  (serving requests as low as possible can always be exchanged upwards),
  which is what :func:`multiple_assignment` implements.  With QoS the same
  greedy is used with an earliest-deadline-first tie-break (clients with the
  fewest remaining eligible ancestors are served first); it is exact when
  capacities are uniform along each path and a good heuristic otherwise.
* **Upwards** -- deciding feasibility of a placement is NP-hard (it embeds
  bin packing); :func:`upwards_assignment` offers a best-fit-decreasing
  heuristic and an optional exact backtracking search for small instances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Assignment, Placement, Solution
from repro.core.tree import NodeId
from repro.core.validation import closest_server_map

__all__ = [
    "closest_assignment",
    "multiple_assignment",
    "upwards_assignment",
    "assignment_for_placement",
    "placement_is_feasible",
]

_TOL = 1e-9


def closest_assignment(
    problem: ReplicaPlacementProblem, placement: Iterable[NodeId]
) -> Solution:
    """Forced assignment of the *Closest* policy for a given placement.

    Raises
    ------
    InfeasibleError
        If some client has no replica ancestor, a QoS bound is violated, a
        server capacity is exceeded, or a link bandwidth is exceeded.
    """
    tree = problem.tree
    placement = Placement(placement)
    servers = closest_server_map(tree, placement)

    amounts: Dict[Tuple[NodeId, NodeId], float] = {}
    loads: Dict[NodeId, float] = {}
    for client in tree.clients():
        if client.requests <= 0:
            continue
        server = servers.get(client.id)
        if server is None:
            raise InfeasibleError(
                f"client {client.id!r} has no replica ancestor", policy=Policy.CLOSEST
            )
        if not problem.qos_satisfied(client.id, server):
            raise InfeasibleError(
                f"Closest forces client {client.id!r} onto {server!r}, violating its QoS bound",
                policy=Policy.CLOSEST,
            )
        amounts[(client.id, server)] = client.requests
        loads[server] = loads.get(server, 0.0) + client.requests

    for server, load in loads.items():
        if load > problem.capacity(server) + _TOL:
            raise InfeasibleError(
                f"Closest overloads server {server!r} ({load:g} > {problem.capacity(server):g})",
                policy=Policy.CLOSEST,
            )

    assignment = Assignment(amounts)
    _check_bandwidth(problem, assignment)
    return Solution(
        placement=placement,
        assignment=assignment,
        policy=Policy.CLOSEST,
        algorithm="closest-forced-assignment",
    )


def multiple_assignment(
    problem: ReplicaPlacementProblem, placement: Iterable[NodeId]
) -> Solution:
    """Bottom-up saturating assignment for the *Multiple* policy.

    Internal nodes are processed in post-order (children before parents);
    each replica serves as many still-unserved requests from its subtree as
    its capacity allows, preferring clients whose QoS bound leaves the fewest
    eligible ancestors above the current node.  Without QoS this greedy is
    exact: a placement is Multiple-feasible if and only if it succeeds.

    Raises
    ------
    InfeasibleError
        If requests remain unserved after the root has been processed.
    """
    tree = problem.tree
    placement = Placement(placement)
    replicas = set(placement.replicas)

    unserved: Dict[NodeId, float] = {
        c.id: c.requests for c in tree.clients() if c.requests > 0
    }
    # Eligible ancestors (respecting QoS) of every client, bottom-up.
    eligible: Dict[NodeId, Tuple[NodeId, ...]] = {
        cid: problem.eligible_servers(cid) for cid in unserved
    }

    amounts: Dict[Tuple[NodeId, NodeId], float] = {}
    for node_id in tree.post_order_nodes():
        if node_id not in replicas:
            continue
        capacity = problem.capacity(node_id)
        if capacity <= 0:
            continue
        candidates: List[Tuple[int, NodeId]] = []
        for client_id in tree.subtree_clients(node_id):
            remaining = unserved.get(client_id, 0.0)
            if remaining <= _TOL:
                continue
            chain = eligible[client_id]
            if node_id not in chain:
                continue
            # Number of eligible replica ancestors strictly above this node:
            # the fewer there are, the more urgent it is to serve the client
            # here (earliest-deadline-first).
            position = chain.index(node_id)
            slack = sum(1 for anc in chain[position + 1:] if anc in replicas)
            candidates.append((slack, client_id))
        candidates.sort(key=lambda item: (item[0], repr(item[1])))

        available = capacity
        for _slack, client_id in candidates:
            if available <= _TOL:
                break
            take = min(available, unserved[client_id])
            if take <= _TOL:
                continue
            amounts[(client_id, node_id)] = amounts.get((client_id, node_id), 0.0) + take
            unserved[client_id] -= take
            available -= take

    leftover = {cid: rem for cid, rem in unserved.items() if rem > 1e-6}
    if leftover:
        raise InfeasibleError(
            "placement cannot absorb all requests under the Multiple policy; "
            f"unserved: {sorted((repr(c), round(v, 3)) for c, v in leftover.items())}",
            policy=Policy.MULTIPLE,
        )

    assignment = Assignment(amounts)
    _check_bandwidth(problem, assignment)
    return Solution(
        placement=placement,
        assignment=assignment,
        policy=Policy.MULTIPLE,
        algorithm="multiple-greedy-assignment",
    )


def upwards_assignment(
    problem: ReplicaPlacementProblem,
    placement: Iterable[NodeId],
    *,
    exact: bool = False,
    exact_limit: int = 12,
) -> Solution:
    """Single-server assignment of whole clients to replicas (*Upwards* policy).

    A best-fit-decreasing heuristic is used by default: clients are taken in
    non-increasing request order and assigned to the eligible replica
    ancestor with the smallest residual capacity that still fits them.  When
    ``exact`` is ``True`` and the instance has at most ``exact_limit``
    clients, an exhaustive backtracking search is run instead, so a failure
    proves the placement infeasible.

    Raises
    ------
    InfeasibleError
        When no assignment is found (which, in heuristic mode, does not
        prove infeasibility).
    """
    tree = problem.tree
    placement = Placement(placement)
    replicas = set(placement.replicas)

    clients = [c for c in tree.clients() if c.requests > 0]
    options: Dict[NodeId, Tuple[NodeId, ...]] = {}
    for client in clients:
        elig = tuple(a for a in problem.eligible_servers(client.id) if a in replicas)
        if not elig:
            raise InfeasibleError(
                f"client {client.id!r} has no eligible replica ancestor",
                policy=Policy.UPWARDS,
            )
        options[client.id] = elig

    if exact and len(clients) <= exact_limit:
        servers = _upwards_exact(problem, clients, options)
    else:
        servers = _upwards_best_fit(problem, clients, options)

    if servers is None:
        raise InfeasibleError(
            "no single-server assignment found for the given placement",
            policy=Policy.UPWARDS,
        )

    assignment = Assignment.single_server(servers, tree)
    _check_bandwidth(problem, assignment)
    return Solution(
        placement=placement,
        assignment=assignment,
        policy=Policy.UPWARDS,
        algorithm="upwards-best-fit" if not exact else "upwards-exact",
    )


def _upwards_best_fit(problem, clients, options) -> Optional[Dict[NodeId, NodeId]]:
    residual = {nid: problem.capacity(nid) for nid in problem.tree.node_ids}
    servers: Dict[NodeId, NodeId] = {}
    for client in sorted(clients, key=lambda c: (-c.requests, repr(c.id))):
        best = None
        best_slack = None
        for candidate in options[client.id]:
            slack = residual[candidate] - client.requests
            if slack < -_TOL:
                continue
            if best_slack is None or slack < best_slack:
                best, best_slack = candidate, slack
        if best is None:
            return None
        residual[best] -= client.requests
        servers[client.id] = best
    return servers


def _upwards_exact(problem, clients, options) -> Optional[Dict[NodeId, NodeId]]:
    """Backtracking search over single-server assignments (small instances)."""
    ordered = sorted(clients, key=lambda c: (-c.requests, repr(c.id)))
    residual = {nid: problem.capacity(nid) for nid in problem.tree.node_ids}
    servers: Dict[NodeId, NodeId] = {}

    def backtrack(index: int) -> bool:
        if index == len(ordered):
            return True
        client = ordered[index]
        # Try candidates in increasing residual order to fail fast.
        candidates = sorted(options[client.id], key=lambda nid: residual[nid])
        for candidate in candidates:
            if residual[candidate] + _TOL < client.requests:
                continue
            residual[candidate] -= client.requests
            servers[client.id] = candidate
            if backtrack(index + 1):
                return True
            residual[candidate] += client.requests
            del servers[client.id]
        return False

    return servers if backtrack(0) else None


def assignment_for_placement(
    problem: ReplicaPlacementProblem,
    placement: Iterable[NodeId],
    policy: Policy,
    **kwargs,
) -> Solution:
    """Dispatch to the per-policy assignment builder."""
    policy = Policy.parse(policy)
    if policy is Policy.CLOSEST:
        return closest_assignment(problem, placement)
    if policy is Policy.UPWARDS:
        return upwards_assignment(problem, placement, **kwargs)
    return multiple_assignment(problem, placement)


def placement_is_feasible(
    problem: ReplicaPlacementProblem,
    placement: Iterable[NodeId],
    policy: Policy,
    **kwargs,
) -> bool:
    """``True`` when an assignment could be derived for the placement.

    For the Upwards policy in heuristic mode a ``False`` answer is
    conservative (the placement might still be feasible).
    """
    try:
        assignment_for_placement(problem, placement, policy, **kwargs)
    except InfeasibleError:
        return False
    return True


def _check_bandwidth(problem: ReplicaPlacementProblem, assignment: Assignment) -> None:
    """Raise when the assignment exceeds an enforced link bandwidth."""
    if not problem.constraints.enforce_bandwidth:
        return
    tree = problem.tree
    for (child, _parent), flow in assignment.link_flows(tree).items():
        bandwidth = tree.link(child).bandwidth
        if flow > bandwidth + 1e-6:
            raise InfeasibleError(
                f"link {child!r} upwards carries {flow:g} requests, bandwidth {bandwidth:g}"
            )
