"""Core data model: tree networks, policies, problems, solutions, validation.

The sub-modules in :mod:`repro.core` form the substrate every algorithm in
this package operates on:

* :mod:`repro.core.tree` -- the distribution-tree data structure (internal
  nodes with capacities and storage costs, leaf clients with request rates
  and QoS bounds, links with latencies and bandwidths);
* :mod:`repro.core.builder` -- a fluent builder to assemble trees by hand;
* :mod:`repro.core.policies` -- the *Closest*, *Upwards*, *Multiple* access
  policies;
* :mod:`repro.core.problem` -- problem instances (general Replica Placement,
  Replica Cost, Replica Counting);
* :mod:`repro.core.solution` -- placements and request assignments;
* :mod:`repro.core.validation` -- full constraint checking;
* :mod:`repro.core.costs` -- objective functions and combinatorial lower
  bounds;
* :mod:`repro.core.constraints` -- QoS and link-capacity constraint records;
* :mod:`repro.core.index` -- the interned flat-tree index (dense integer
  ids, contiguous subtree spans, ancestor chains) backing the fast solver
  engine and the batch API;
* :mod:`repro.core.serialization` -- JSON round-tripping of trees and
  solutions.
"""

from repro.core.exceptions import (
    ReproError,
    TreeStructureError,
    InfeasibleError,
    PolicyViolationError,
    CapacityExceededError,
    QoSViolationError,
    BandwidthExceededError,
)
from repro.core.tree import TreeNetwork, InternalNode, Client, Link
from repro.core.index import TreeIndex
from repro.core.builder import TreeBuilder
from repro.core.policies import Policy
from repro.core.problem import (
    ProblemKind,
    ReplicaPlacementProblem,
    replica_cost_problem,
    replica_counting_problem,
)
from repro.core.solution import Assignment, Placement, Solution
from repro.core.validation import validate_solution, ValidationReport
from repro.core.costs import placement_cost, request_lower_bound

__all__ = [
    "ReproError",
    "TreeStructureError",
    "InfeasibleError",
    "PolicyViolationError",
    "CapacityExceededError",
    "QoSViolationError",
    "BandwidthExceededError",
    "TreeNetwork",
    "InternalNode",
    "Client",
    "Link",
    "TreeIndex",
    "TreeBuilder",
    "Policy",
    "ProblemKind",
    "ReplicaPlacementProblem",
    "replica_cost_problem",
    "replica_counting_problem",
    "Assignment",
    "Placement",
    "Solution",
    "validate_solution",
    "ValidationReport",
    "placement_cost",
    "request_lower_bound",
]
