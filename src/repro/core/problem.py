"""Problem instances of the Replica Placement optimisation problem.

Paper Section 2.2 defines the general **Replica Placement** problem (server
capacities, QoS and link-capacity constraints, storage-cost objective) and
two simplifications used throughout the complexity study and the
experiments:

* **Replica Cost** -- only server capacities are enforced and the storage
  cost of every node equals its capacity (``s_j = W_j``);
* **Replica Counting** -- the homogeneous special case of Replica Cost in
  which the cost of every node is 1, i.e. the objective is the number of
  replicas.

:class:`ReplicaPlacementProblem` bundles a :class:`~repro.core.tree.TreeNetwork`
with a :class:`~repro.core.constraints.ConstraintSet` and a cost mode; it is
what every solver and heuristic in this package consumes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.constraints import ConstraintSet, QoSMode
from repro.core.exceptions import TreeStructureError
from repro.core.tree import NodeId, TreeNetwork

__all__ = [
    "ProblemKind",
    "ReplicaPlacementProblem",
    "replica_cost_problem",
    "replica_counting_problem",
]


class ProblemKind(enum.Enum):
    """How the storage cost of a node is determined."""

    #: Use each node's declared ``storage_cost`` attribute.
    GENERAL = "general"
    #: The *Replica Cost* problem: ``s_j = W_j``.
    REPLICA_COST = "replica_cost"
    #: The *Replica Counting* problem: ``s_j = 1`` (homogeneous platforms).
    REPLICA_COUNTING = "replica_counting"


@dataclass(frozen=True)
class ReplicaPlacementProblem:
    """A fully-specified instance of the Replica Placement problem.

    Parameters
    ----------
    tree:
        The distribution tree (clients, internal nodes, links).
    constraints:
        Which optional constraints (QoS, bandwidth) are enforced.
    kind:
        The cost mode (:class:`ProblemKind`).
    name:
        Optional label used in experiment reports.
    """

    tree: TreeNetwork
    constraints: ConstraintSet = field(default_factory=ConstraintSet.none)
    kind: ProblemKind = ProblemKind.REPLICA_COST
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is ProblemKind.REPLICA_COUNTING and not self.tree.is_homogeneous():
            raise TreeStructureError(
                "the Replica Counting problem is only defined for homogeneous "
                "platforms (identical node capacities)"
            )

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def storage_cost(self, node_id: NodeId) -> float:
        """Storage cost ``s_j`` of placing a replica on ``node_id``."""
        node = self.tree.node(node_id)
        if self.kind is ProblemKind.REPLICA_COUNTING:
            return 1.0
        if self.kind is ProblemKind.REPLICA_COST:
            return float(node.capacity)
        return float(node.storage_cost)

    def storage_costs(self) -> Dict[NodeId, float]:
        """Mapping of every internal node to its storage cost."""
        return {nid: self.storage_cost(nid) for nid in self.tree.node_ids}

    def capacity(self, node_id: NodeId) -> float:
        """Processing capacity ``W_j`` of ``node_id``."""
        return float(self.tree.node(node_id).capacity)

    def requests(self, client_id: NodeId) -> float:
        """Request rate ``r_i`` of ``client_id``."""
        return float(self.tree.client(client_id).requests)

    # ------------------------------------------------------------------ #
    # constraint helpers
    # ------------------------------------------------------------------ #
    def eligible_servers(self, client_id: NodeId):
        """Ancestors of ``client_id`` allowed to serve it under the QoS constraint.

        Ordered bottom-up (closest ancestor first).  Without QoS this is the
        full ancestor chain.  Results are memoised per client: tree and
        constraints are both immutable, and the heuristics query the same
        chains over and over on large instances.
        """
        if not self.constraints.has_qos:
            return self.tree.ancestors(client_id)
        cache = self.__dict__.get("_eligible_servers_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_eligible_servers_cache", cache)
        servers = cache.get(client_id)
        if servers is None:
            servers = cache[client_id] = self._eligible_servers_uncached(client_id)
        return servers

    def _eligible_servers_uncached(self, client_id: NodeId):
        """Compute a client's eligible chain via the indexed QoS thresholds.

        Both built-in QoS metrics are monotone along the client-to-root
        path, so the eligible ancestors are the bottom-up prefix whose depth
        stays above the client's precomputed threshold (one shared pass per
        tree, see :meth:`TreeIndex.qos_depth_thresholds`).  Non-standard
        constraint subclasses keep the seed's per-pair filtering.
        """
        from repro.core.index import TreeIndex, supports_qos_thresholds

        if not supports_qos_thresholds(self.constraints):
            return self.constraints.allowed_servers(self.tree, client_id)
        tree = self.tree
        index = TreeIndex.for_tree(tree)
        threshold = index.qos_depth_thresholds(self)[index.client_index(client_id)]
        depth_map = tree._depth
        servers = []
        for ancestor in tree.ancestors(client_id):
            if depth_map[ancestor] >= threshold:
                servers.append(ancestor)
            else:
                break  # depths only decrease towards the root
        return tuple(servers)

    def qos_satisfied(self, client_id: NodeId, server_id: NodeId) -> bool:
        """``True`` when serving ``client_id`` from ``server_id`` respects QoS."""
        if not self.constraints.has_qos:
            return True
        bound = self.tree.client(client_id).qos
        return self.constraints.qos_metric(self.tree, client_id, server_id) <= bound

    def link_bandwidth(self, child: NodeId) -> float:
        """Bandwidth of the uplink of ``child`` (``inf`` when unenforced)."""
        if not self.constraints.enforce_bandwidth:
            return math.inf
        return self.tree.link(child).bandwidth

    # ------------------------------------------------------------------ #
    # descriptive helpers
    # ------------------------------------------------------------------ #
    @property
    def is_homogeneous(self) -> bool:
        """``True`` when the platform has identical node capacities."""
        return self.tree.is_homogeneous()

    @property
    def size(self) -> int:
        """Problem size ``s = |C| + |N|``."""
        return self.tree.size

    def describe(self) -> str:
        """One-line description used by the experiment reporting."""
        label = self.name or "instance"
        return (
            f"{label}: kind={self.kind.value}, s={self.size}, "
            f"lambda={self.tree.load_factor():.3f}, "
            f"{'homogeneous' if self.is_homogeneous else 'heterogeneous'}, "
            f"{self.constraints.describe()}"
        )

    # ------------------------------------------------------------------ #
    def with_constraints(self, constraints: ConstraintSet) -> "ReplicaPlacementProblem":
        """Return a copy of this problem with a different constraint set."""
        return ReplicaPlacementProblem(
            tree=self.tree, constraints=constraints, kind=self.kind, name=self.name
        )

    def with_kind(self, kind: ProblemKind) -> "ReplicaPlacementProblem":
        """Return a copy of this problem with a different cost mode."""
        return ReplicaPlacementProblem(
            tree=self.tree, constraints=self.constraints, kind=kind, name=self.name
        )


def replica_cost_problem(
    tree: TreeNetwork,
    *,
    constraints: Optional[ConstraintSet] = None,
    name: Optional[str] = None,
) -> ReplicaPlacementProblem:
    """Build a *Replica Cost* instance (``s_j = W_j``, default: capacities only)."""
    return ReplicaPlacementProblem(
        tree=tree,
        constraints=constraints or ConstraintSet.none(),
        kind=ProblemKind.REPLICA_COST,
        name=name,
    )


def replica_counting_problem(
    tree: TreeNetwork,
    *,
    constraints: Optional[ConstraintSet] = None,
    name: Optional[str] = None,
) -> ReplicaPlacementProblem:
    """Build a *Replica Counting* instance (homogeneous platform, ``s_j = 1``)."""
    return ReplicaPlacementProblem(
        tree=tree,
        constraints=constraints or ConstraintSet.none(),
        kind=ProblemKind.REPLICA_COUNTING,
        name=name,
    )
