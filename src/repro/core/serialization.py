"""JSON serialization of trees, placements and solutions.

Experiment campaigns need to persist generated trees (so a run can be
reproduced exactly) and solver outputs (so relative-cost tables can be
recomputed without re-solving).  The format is deliberately plain JSON:

.. code-block:: json

    {
      "nodes":   [{"id": "root", "capacity": 10, "storage_cost": 10}, ...],
      "clients": [{"id": "c1", "requests": 7, "qos": null}, ...],
      "links":   [{"child": "c1", "parent": "root",
                   "comm_time": 1.0, "bandwidth": null}, ...]
    }

``null`` encodes the absence of a bound (``math.inf`` in memory).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.constraints import ConstraintSet, QoSMode
from repro.core.exceptions import SerializationError
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.solution import Assignment, Placement, Solution
from repro.core.tree import Client, InternalNode, Link, TreeNetwork

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "save_tree",
    "load_tree",
    "constraints_to_dict",
    "constraints_from_dict",
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "save_result",
    "load_result",
]


def _encode_bound(value: float) -> Optional[float]:
    return None if math.isinf(value) else value


def _decode_bound(value: Optional[float]) -> float:
    return math.inf if value is None else float(value)


def tree_to_dict(tree: TreeNetwork) -> Dict[str, Any]:
    """Serialise a tree network to a JSON-compatible dictionary."""
    return {
        "nodes": [
            {
                "id": node.id,
                "capacity": node.capacity,
                "storage_cost": node.storage_cost,
            }
            for node in tree.nodes()
        ],
        "clients": [
            {
                "id": client.id,
                "requests": client.requests,
                "qos": _encode_bound(client.qos),
            }
            for client in tree.clients()
        ],
        "links": [_link_to_dict(link) for link in tree.links()],
    }


def _link_to_dict(link: Link) -> Dict[str, Any]:
    entry = {
        "child": link.child,
        "parent": link.parent,
        "comm_time": link.comm_time,
        "bandwidth": _encode_bound(link.bandwidth),
    }
    # Omitted (rather than null) when absent so pre-metric tree files and
    # their digests stay byte-identical.
    if link.metrics is not None:
        entry["metrics"] = link.metrics.to_dict()
    return entry


def tree_from_dict(payload: Dict[str, Any]) -> TreeNetwork:
    """Rebuild a tree network from :func:`tree_to_dict` output."""
    nodes = [
        InternalNode(
            id=entry["id"],
            capacity=float(entry["capacity"]),
            storage_cost=(
                None if entry.get("storage_cost") is None else float(entry["storage_cost"])
            ),
        )
        for entry in payload["nodes"]
    ]
    clients = [
        Client(
            id=entry["id"],
            requests=float(entry["requests"]),
            qos=_decode_bound(entry.get("qos")),
        )
        for entry in payload["clients"]
    ]
    links = [_link_from_dict(entry) for entry in payload["links"]]
    return TreeNetwork(nodes, clients, links)


def _link_from_dict(entry: Dict[str, Any]) -> Link:
    metrics = entry.get("metrics")
    if metrics is not None:
        from repro.qos.metrics import QoSMetrics

        metrics = QoSMetrics.from_dict(metrics)
    return Link(
        child=entry["child"],
        parent=entry["parent"],
        comm_time=float(entry.get("comm_time", 1.0)),
        bandwidth=_decode_bound(entry.get("bandwidth")),
        metrics=metrics,
    )


def save_tree(tree: TreeNetwork, path: Union[str, Path]) -> Path:
    """Write a tree network to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(tree_to_dict(tree), indent=2, sort_keys=True))
    return path


def load_tree(path: Union[str, Path]) -> TreeNetwork:
    """Read a tree network previously written by :func:`save_tree`."""
    payload = json.loads(Path(path).read_text())
    return tree_from_dict(payload)


def constraints_to_dict(constraints: ConstraintSet) -> Dict[str, Any]:
    """Serialise a constraint set to a JSON-compatible dictionary.

    Plain :class:`ConstraintSet` instances and the built-in
    :class:`~repro.core.constraints.ClassedConstraintSet` (whose behaviour
    is fully determined by its data: classes, assignments, default) both
    round-trip.  Any other subclass carries behaviour (custom metrics,
    non-monotone filters) that no JSON payload can reproduce, so
    serialising one raises
    :class:`~repro.core.exceptions.SerializationError` instead of silently
    downgrading it to the base semantics.
    """
    from repro.core.constraints import ClassedConstraintSet

    if type(constraints) is ClassedConstraintSet:
        return {
            "type": "classed",
            "qos_mode": constraints.qos_mode.value,
            "enforce_bandwidth": constraints.enforce_bandwidth,
            "classes": [entry.to_dict() for entry in constraints.classes],
            "assignments": [
                [client, name] for client, name in constraints.assignments
            ],
            "default_class": constraints.default_class,
        }
    if type(constraints) is not ConstraintSet:
        raise SerializationError(
            f"cannot serialise constraint set of type "
            f"{type(constraints).__qualname__}; only plain ConstraintSet "
            "instances round-trip through JSON"
        )
    return {
        "qos_mode": constraints.qos_mode.value,
        "enforce_bandwidth": constraints.enforce_bandwidth,
    }


def constraints_from_dict(payload: Dict[str, Any]) -> ConstraintSet:
    """Rebuild a constraint set from :func:`constraints_to_dict` output."""
    tag = payload.get("type", "base")
    if tag == "classed":
        from repro.core.constraints import ClassedConstraintSet
        from repro.qos.metrics import ServiceClass

        return ClassedConstraintSet(
            qos_mode=QoSMode.parse(payload.get("qos_mode", "score")),
            enforce_bandwidth=bool(payload.get("enforce_bandwidth", False)),
            classes=tuple(
                ServiceClass.from_dict(entry) for entry in payload.get("classes", ())
            ),
            assignments=tuple(
                (entry[0], entry[1]) for entry in payload.get("assignments", ())
            ),
            default_class=str(payload.get("default_class", "")),
        )
    if tag != "base":
        raise SerializationError(f"unknown constraint-set payload type {tag!r}")
    return ConstraintSet(
        qos_mode=QoSMode.parse(payload.get("qos_mode", "none")),
        enforce_bandwidth=bool(payload.get("enforce_bandwidth", False)),
    )


def problem_to_dict(problem: ReplicaPlacementProblem) -> Dict[str, Any]:
    """Serialise a fully-specified problem (tree + constraints + cost mode).

    This is the on-the-wire instance format of the serving protocol
    (:mod:`repro.serving`) and of session snapshots: everything a server
    needs to rebuild an equivalent
    :class:`~repro.core.problem.ReplicaPlacementProblem` in another process.
    """
    return {
        "tree": tree_to_dict(problem.tree),
        "constraints": constraints_to_dict(problem.constraints),
        "kind": problem.kind.value,
        "name": problem.name,
    }


def problem_from_dict(payload: Dict[str, Any]) -> ReplicaPlacementProblem:
    """Rebuild a problem from :func:`problem_to_dict` output."""
    try:
        tree = tree_from_dict(payload["tree"])
    except KeyError:
        raise SerializationError(
            'problem payloads need a "tree" entry (see problem_to_dict)'
        ) from None
    constraints = payload.get("constraints")
    name = payload.get("name")
    return ReplicaPlacementProblem(
        tree=tree,
        constraints=(
            constraints_from_dict(constraints)
            if constraints is not None
            else ConstraintSet.none()
        ),
        kind=ProblemKind(payload.get("kind", ProblemKind.REPLICA_COST.value)),
        name=None if name is None else str(name),
    )


def solution_to_dict(solution: Solution) -> Dict[str, Any]:
    """Serialise a solution (placement + assignment) to a dictionary."""
    return {
        "algorithm": solution.algorithm,
        "policy": solution.policy.value,
        "replicas": list(solution.placement.sorted()),
        "assignment": [
            {"client": client, "server": server, "requests": amount}
            for (client, server), amount in sorted(
                solution.assignment.items(), key=lambda kv: (repr(kv[0][0]), repr(kv[0][1]))
            )
        ],
    }


def save_result(result, path: Union[str, Path]) -> Path:
    """Write any unified-protocol result to ``path`` as JSON.

    ``result`` is any object implementing the
    :class:`repro.core.results.ResultBase` protocol (sequence, bound,
    compare and campaign results all qualify); the payload is the tagged
    :meth:`to_dict` output, so :func:`load_result` can rebuild the original
    object without knowing its type in advance.
    """
    path = Path(path)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return path


def load_result(path: Union[str, Path]):
    """Rebuild a result previously written by :func:`save_result`.

    Raises
    ------
    SerializationError
        When the file is not valid JSON or its payload cannot be decoded;
        the message names the offending file, so a failure inside a batch
        of result files points at the culprit.
    """
    from repro.core.results import result_from_dict

    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except ValueError as error:
        raise SerializationError(f"{path}: not a JSON result file ({error})") from None
    try:
        return result_from_dict(payload)
    except SerializationError as error:
        raise SerializationError(f"{path}: {error}") from None


def solution_from_dict(payload: Dict[str, Any]) -> Solution:
    """Rebuild a solution from :func:`solution_to_dict` output."""
    amounts = {
        (entry["client"], entry["server"]): float(entry["requests"])
        for entry in payload.get("assignment", [])
    }
    return Solution(
        placement=Placement(payload.get("replicas", [])),
        assignment=Assignment(amounts),
        policy=Policy.parse(payload.get("policy", "multiple")),
        algorithm=payload.get("algorithm", "unknown"),
    )
